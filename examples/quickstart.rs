//! Quickstart: track one car across a synthetic city with three update
//! protocols and compare how many messages each needs.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example quickstart
//! ```

use mbdr_sim::protocols::ProtocolContext;
use mbdr_sim::runner::{run_protocol, RunConfig};
use mbdr_sim::ProtocolKind;
use mbdr_trace::{Scenario, ScenarioKind, TraceStats};

fn main() {
    // 1. Build a scenario: a synthetic city map, an errand route across it, a
    //    kinematic drive along the route and a 1 Hz DGPS-grade sensor trace.
    //    (scale 0.2 keeps the quickstart under a couple of seconds; use 1.0
    //    for the paper-length trace.)
    let data = Scenario { kind: ScenarioKind::City, scale: 0.2, seed: 42 }.build();
    println!("scenario : {}", data.scenario.kind.name());
    println!("trace    : {}", TraceStats::of(&data.trace));
    println!(
        "map      : {} intersections, {} links",
        data.network.node_count(),
        data.network.link_count()
    );
    println!();

    // 2. Run the three protocols of the paper at a requested accuracy of
    //    100 m and compare the update traffic they need.
    let ctx = ProtocolContext::for_scenario(&data);
    println!(
        "{:<28} {:>9} {:>12} {:>14} {:>14}",
        "protocol", "updates", "updates/h", "mean dev [m]", "max dev [m]"
    );
    for kind in ProtocolKind::PAPER_SET {
        let outcome = run_protocol(&data.trace, kind.build(&ctx, 100.0), RunConfig::default());
        let m = outcome.metrics;
        println!(
            "{:<28} {:>9} {:>12.1} {:>14.1} {:>14.1}",
            m.protocol, m.updates, m.updates_per_hour, m.deviation.mean, m.deviation.max
        );
    }
    println!();
    println!("The dead-reckoning protocols honour the same 100 m accuracy bound as the");
    println!("distance-based baseline while sending a fraction of its updates; the map-based");
    println!("protocol additionally follows the road geometry, so it wins wherever the route");
    println!("curves or turns.");
}
