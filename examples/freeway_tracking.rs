//! Freeway tracking: the paper's headline scenario (Fig. 7).
//!
//! Tracks a car along a synthetic freeway and sweeps the requested accuracy
//! from 20 m to 500 m, printing updates per hour for distance-based reporting,
//! linear-prediction dead reckoning and map-based dead reckoning — the data
//! behind Figure 7.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example freeway_tracking
//! ```

use mbdr_sim::runner::RunConfig;
use mbdr_sim::{render_table, sweep_scenario, ProtocolKind};
use mbdr_trace::{Scenario, ScenarioKind, TraceStats};

fn main() {
    // A quarter-length freeway drive keeps the example fast; raise the scale
    // (up to 1.0) for the full 163 km trace of Table 1.
    let data = Scenario { kind: ScenarioKind::Freeway, scale: 0.25, seed: 7 }.build();
    println!("freeway trace: {}", TraceStats::of(&data.trace));
    println!();

    let accuracies = data.scenario.kind.accuracy_sweep();
    let result = sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
    print!("{}", render_table(&result, &ProtocolKind::PAPER_SET));
    println!();

    if let Some(linear) =
        result.max_reduction_pct(ProtocolKind::Linear, ProtocolKind::DistanceBased)
    {
        println!("linear DR saves up to     {linear:.0}% of the baseline's updates");
    }
    if let Some(map) = result.max_reduction_pct(ProtocolKind::MapBased, ProtocolKind::Linear) {
        println!("map-based DR saves up to  {map:.0}% on top of linear DR");
    }
    if let Some(total) =
        result.max_reduction_pct(ProtocolKind::MapBased, ProtocolKind::DistanceBased)
    {
        println!("map-based DR saves up to  {total:.0}% overall");
    }
    println!();
    println!("(the paper reports up to 83%, 60% and 91% respectively for its freeway trace)");
}
