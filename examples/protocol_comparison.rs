//! Compare every protocol variant in the family on one inter-urban drive.
//!
//! Beyond the three protocols of the paper's figures, this runs the
//! higher-order predictor, the probability-enhanced and main-road map
//! variants, the known-route baseline and the Wolfson-style adaptive policies,
//! and prints where each sent its updates — a textual version of the Fig. 3 /
//! Fig. 6 screenshots.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example protocol_comparison
//! ```

use mbdr_sim::protocols::ProtocolContext;
use mbdr_sim::runner::{run_protocol, RunConfig};
use mbdr_sim::ProtocolKind;
use mbdr_trace::{Scenario, ScenarioKind, TraceStats};

fn main() {
    let data = Scenario { kind: ScenarioKind::Interurban, scale: 0.2, seed: 99 }.build();
    println!("inter-urban trace: {}", TraceStats::of(&data.trace));
    println!();

    let ctx = ProtocolContext::for_scenario(&data);
    let all = [
        ProtocolKind::DistanceBased,
        ProtocolKind::Linear,
        ProtocolKind::HigherOrder,
        ProtocolKind::MapBased,
        ProtocolKind::MapProbability,
        ProtocolKind::MapMainRoad,
        ProtocolKind::KnownRoute,
        ProtocolKind::Adaptive,
        ProtocolKind::DisconnectionDetection,
    ];

    println!(
        "{:<26} {:>9} {:>12} {:>12} {:>13}",
        "protocol", "updates", "updates/h", "bytes", "max dev [m]"
    );
    let mut update_positions = Vec::new();
    for kind in all {
        let outcome = run_protocol(&data.trace, kind.build(&ctx, 100.0), RunConfig::default());
        let m = &outcome.metrics;
        println!(
            "{:<26} {:>9} {:>12.1} {:>12} {:>13.1}",
            kind.label(),
            m.updates,
            m.updates_per_hour,
            m.payload_bytes,
            m.deviation.max
        );
        if kind == ProtocolKind::Linear || kind == ProtocolKind::MapBased {
            update_positions.push((kind.label(), outcome.updates));
        }
    }
    println!();

    // Fig. 3 vs Fig. 6, textually: where along the drive did linear and
    // map-based dead reckoning have to send updates?
    for (label, updates) in update_positions {
        println!("{label}: {} updates at", updates.len());
        for chunk in updates.chunks(4) {
            let line: Vec<String> = chunk
                .iter()
                .map(|u| format!("({:>7.0}, {:>7.0})", u.state.position.x, u.state.position.y))
                .collect();
            println!("    {}", line.join("  "));
        }
    }
}
