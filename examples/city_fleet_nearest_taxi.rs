//! A taxi fleet in the city, tracked through the location service.
//!
//! This is the paper's motivating application: every taxi updates its location
//! with the map-based dead-reckoning protocol; a dispatcher then asks the
//! location service for the taxis nearest to a customer and for all taxis
//! currently inside the station district — without contacting any vehicle.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example city_fleet_nearest_taxi
//! ```

use mbdr_core::{ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig, ZoneWatcher};
use mbdr_sim::fleet::{run_fleet, FleetConfig};
use mbdr_sim::ProtocolKind;
use std::sync::Arc;

fn main() {
    // 1. Simulate a small taxi fleet driving errands across one shared city
    //    map, every taxi running map-based dead reckoning at u_s = 100 m.
    let config = FleetConfig {
        objects: 12,
        trip_length_m: 6_000.0,
        requested_accuracy: 100.0,
        protocol: ProtocolKind::MapBased,
        seed: 4711,
    };
    let fleet = run_fleet(&config);
    println!(
        "fleet of {} taxis: {} updates in total, {:.1} updates/h per taxi on average",
        config.objects, fleet.total_updates, fleet.mean_updates_per_hour
    );

    // 2. Feed each taxi's final reported position into the location service.
    //    (In a live system the service would consume the update stream; here
    //    we register the last known state of each taxi for the dispatch
    //    queries below.) The service is sharded: each taxi's updates go to
    //    one lock stripe, and the dispatch queries below are answered from
    //    the per-shard spatial indexes instead of scanning the whole fleet.
    let service = LocationService::with_config(ServiceConfig::with_shards(8));
    let mut sequence = 0u64;
    for (i, trace) in fleet.traces.iter().enumerate() {
        let id = ObjectId(i as u64);
        service.register(id, Arc::new(mbdr_core::StaticPredictor));
        if let (Some(fix), Some(truth)) = (trace.fixes.last(), trace.ground_truth.last()) {
            let update = Update {
                sequence,
                state: ObjectState::basic(fix.position, truth.speed, truth.heading, fix.t),
                kind: UpdateKind::DeviationBound,
            };
            sequence += 1;
            service.apply_update(id, &update);
        }
    }
    println!(
        "location service now tracks {} taxis across {} shards",
        service.object_count(),
        service.shard_count()
    );
    println!();

    // 3. Dispatch queries.
    let now = fleet.traces.iter().filter_map(|t| t.fixes.last()).map(|f| f.t).fold(0.0, f64::max);
    let customer = Point::new(1_800.0, 1_800.0);
    println!(
        "customer waiting at ({:.0} m, {:.0} m); three nearest taxis:",
        customer.x, customer.y
    );
    for report in service.nearest_objects(&customer, now, 3) {
        println!(
            "  taxi #{:<2} at ({:>7.0} m, {:>7.0} m), {:.0} m away, info {:.0} s old",
            report.object.0,
            report.position.x,
            report.position.y,
            customer.distance(&report.position),
            report.information_age
        );
    }
    println!();

    let station_district = Aabb::new(Point::new(0.0, 0.0), Point::new(1_500.0, 1_500.0));
    let inside = service.objects_in_rect(&station_district, now);
    println!("taxis currently inside the station district: {}", inside.len());

    // 4. Zone subscription: get notified when taxis enter the airport zone.
    let mut watcher = ZoneWatcher::new();
    watcher
        .add_zone("airport", Aabb::new(Point::new(2_500.0, 2_500.0), Point::new(3_800.0, 3_800.0)));
    let events = watcher.evaluate(&service, now);
    println!("zone events at the airport: {}", events.len());
    for event in events {
        println!("  taxi #{} {:?} zone `{}`", event.object.0, event.kind, event.zone);
    }

    // 5. A taxi goes off shift: deregistering removes it from the store and
    //    the spatial index; purging tells the zone watcher immediately.
    service.deregister(ObjectId(0));
    let left = watcher.purge_object(ObjectId(0));
    println!();
    println!(
        "taxi #0 went off shift: {} taxis remain, {} zone-left event(s) emitted",
        service.object_count(),
        left.len()
    );
}
