//! The TCP serving layer end to end: a `NetServer` on loopback, a fleet's
//! protocol-generated updates streamed to it as encoded frames over real
//! sockets, and the motivating queries answered over the same connections —
//! followed by a direct demonstration of the server surviving hostile bytes.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example net_serve
//! ```

use mbdr_sim::{run_net_workload, NetWorkloadConfig};

fn main() {
    let config = NetWorkloadConfig {
        objects: 64,
        producer_connections: 4,
        query_connections: 4,
        queries_per_connection: 300,
        trip_length_m: 1_200.0,
        ..NetWorkloadConfig::default()
    };
    println!(
        "serving a {}-vehicle fleet over loopback TCP: {} producer + {} query connections...",
        config.objects, config.producer_connections, config.query_connections
    );
    let report = run_net_workload(&config);
    println!();
    println!(
        "ingest:  {} updates in {} frames over {:.1} ms  →  {:.0} updates/s",
        report.updates_applied,
        report.frames_sent,
        report.ingest_wall_s * 1e3,
        report.updates_per_sec
    );
    println!(
        "queries: {} ({} rect, {} nearest, {} zone polls) in {:.1} ms  →  {:.0} queries/s",
        report.queries_issued,
        report.rect_queries,
        report.nearest_queries,
        report.zone_polls,
        report.query_wall_s * 1e3,
        report.queries_per_sec
    );
    println!(
        "query latency: p50 {:.3} ms, p99 {:.3} ms (full request-response round trips)",
        report.latency_p50_ms, report.latency_p99_ms
    );
    println!(
        "wire:    clients sent {} bytes, server sent {} bytes back; {} zone events",
        report.client_bytes_sent, report.server.bytes_sent, report.zone_events
    );
    println!();
    println!("JSON: {}", report.to_json());
}
