//! Tracking a walking person on a campus footpath network (Fig. 10).
//!
//! Pedestrian movement is the paper's hardest case for dead reckoning: speeds
//! are low relative to the GPS error and the path network twists constantly,
//! so the advantage of the map-based protocol shrinks — and at the tightest
//! accuracy the linear protocol can even win. This example reproduces that
//! comparison.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example walking_campus
//! ```

use mbdr_sim::runner::RunConfig;
use mbdr_sim::{render_table, sweep_scenario, ProtocolKind};
use mbdr_trace::{Scenario, ScenarioKind, TraceStats};

fn main() {
    let data = Scenario { kind: ScenarioKind::Walking, scale: 0.5, seed: 13 }.build();
    println!("walking trace: {}", TraceStats::of(&data.trace));
    println!(
        "campus map   : {} junctions, {} footpaths, interpolation window {} fixes, u_m = {} m",
        data.network.node_count(),
        data.network.link_count(),
        data.interpolation_window,
        data.matching_tolerance
    );
    println!();

    // The paper sweeps 20–250 m for the walking person.
    let accuracies = data.scenario.kind.accuracy_sweep();
    let result = sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
    print!("{}", render_table(&result, &ProtocolKind::PAPER_SET));
    println!();

    let tight = accuracies[0];
    if let (Some(linear), Some(map)) =
        (result.point(ProtocolKind::Linear, tight), result.point(ProtocolKind::MapBased, tight))
    {
        println!(
            "at the tightest bound (u_s = {tight} m): linear {:.0}/h vs map-based {:.0}/h — the",
            linear.metrics.updates_per_hour, map.metrics.updates_per_hour
        );
        println!(
            "map hardly helps a walker at GPS-noise-scale accuracies, exactly as Fig. 10 shows."
        );
    }
}
