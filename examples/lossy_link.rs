//! Lossy link: what happens to the accuracy guarantee when the GSM/GPRS
//! uplink actually loses, duplicates, jitters and reorders frames.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example lossy_link
//! ```
//!
//! Every update the map-based protocol sends is *encoded* into a wire frame,
//! shipped through a degraded channel, and *decoded* at the server before it
//! is applied — the full wire loop. The sweep shows accuracy degrading and
//! the cost per applied update growing monotonically with the loss rate.

use mbdr_sim::{run_loss_sweep, LinkConfig, LossSweepConfig, ProtocolKind};
use mbdr_trace::ScenarioKind;

fn main() {
    let config = LossSweepConfig {
        scenario: ScenarioKind::City,
        scale: 0.2,
        seed: 42,
        protocol: ProtocolKind::MapBased,
        requested_accuracy: 100.0,
        loss_rates: vec![0.0, 0.05, 0.1, 0.2, 0.35, 0.5],
        link: LinkConfig::gprs(42),
    };
    let result = run_loss_sweep(&config);

    println!(
        "scenario : {} — {} at u_s = {:.0} m, {} updates sent",
        result.scenario, result.protocol, result.requested_accuracy, result.updates_sent
    );
    println!(
        "link     : {:.1} s latency, {:.1} s jitter, {:.0}% duplicates, {:.0}% reordered",
        config.link.latency_s,
        config.link.jitter_s,
        config.link.duplicate * 100.0,
        config.link.reorder * 100.0
    );
    println!();
    println!(
        "{:>6} {:>10} {:>9} {:>12} {:>12} {:>12} {:>11}",
        "loss", "delivered", "applied", "mean dev[m]", "p95 dev[m]", "max dev[m]", "bytes/appl"
    );
    for p in &result.points {
        println!(
            "{:>5.0}% {:>9.1}% {:>9} {:>12.1} {:>12.1} {:>12.1} {:>11.0}",
            p.loss_rate * 100.0,
            p.delivered_ratio * 100.0,
            p.updates_applied,
            p.deviation.mean,
            p.deviation.p95,
            p.deviation.max,
            p.bytes_per_applied_update,
        );
    }
    println!();
    println!("Loss fates are nested under one seed (a frame lost at 5% is also lost at 50%),");
    println!("so the degradation is monotone in the loss rate by construction, not by luck:");
    println!("the server predicts from ever-staler anchors while the radio keeps paying for");
    println!("every transmitted frame — delivered or not.");
}
