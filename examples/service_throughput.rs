//! The concurrent fleet workload: one shared, sharded location service,
//! producer threads ingesting every vehicle's update stream while query
//! threads ask the paper's motivating questions against it.
//!
//! ```text
//! cargo run --release -p mbdr-examples --example service_throughput
//! ```

use mbdr_sim::{run_service_workload, QueryMix, WorkloadConfig};

fn main() {
    let config = WorkloadConfig {
        objects: 96,
        shards: 16,
        producers: 4,
        query_threads: 4,
        queries_per_thread: 400,
        query_mix: QueryMix::BALANCED,
        trip_length_m: 1_200.0,
        ..WorkloadConfig::default()
    };
    println!(
        "replaying {} vehicles over {} producers against a {}-shard service, \
         {} query threads x {} queries...",
        config.objects,
        config.producers,
        config.shards,
        config.query_threads,
        config.queries_per_thread
    );
    let report = run_service_workload(&config);
    println!();
    println!(
        "ingest:  {} updates in {:.1} ms  →  {:.0} updates/s",
        report.updates_applied,
        report.ingest_wall_s * 1e3,
        report.updates_per_sec
    );
    println!(
        "queries: {} ({} rect, {} nearest, {} zone) in {:.1} ms  →  {:.0} queries/s",
        report.queries_issued,
        report.rect_queries,
        report.nearest_queries,
        report.zone_queries,
        report.query_wall_s * 1e3,
        report.queries_per_sec
    );
    println!(
        "query-observed accuracy: mean {:.1} m, max {:.1} m over {} samples \
         ({} within the {:.0} m skew bound)",
        report.accuracy.mean_m,
        report.accuracy.max_m,
        report.accuracy.samples,
        report.accuracy.within_bound,
        report.accuracy.bound_m
    );
    println!();
    println!("JSON: {}", report.to_json());
}
