//! Incremental construction of road networks with validation.

use crate::ids::{LinkId, NodeId};
use crate::link::{Link, RoadClass};
use crate::network::RoadNetwork;
use crate::node::Node;
use mbdr_geo::{Point, Polyline};
use std::fmt;

/// Error returned when a built network violates structural invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildError {
    /// Human-readable list of problems found by validation.
    pub problems: Vec<String>,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid road network: {}", self.problems.join("; "))
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`RoadNetwork`]s.
///
/// Hands out dense [`NodeId`]s/[`LinkId`]s in insertion order and validates
/// the finished graph in [`NetworkBuilder::build`]. The synthetic map
/// generators in [`crate::gen`] are all written against this builder.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links added so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Adds an intersection at `position` and returns its id.
    pub fn add_node(&mut self, position: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, position));
        id
    }

    /// Adds a named intersection at `position` and returns its id.
    pub fn add_named_node(&mut self, position: Point, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::named(id, position, name));
        id
    }

    /// Position of a previously added node.
    pub fn node_position(&self, id: NodeId) -> Point {
        self.nodes[id.index()].position
    }

    /// Adds a link whose geometry is the straight line between the two nodes.
    pub fn add_straight_link(&mut self, from: NodeId, to: NodeId, class: RoadClass) -> LinkId {
        let geometry = Polyline::straight(self.node_position(from), self.node_position(to));
        self.add_link_with_geometry(from, to, geometry, class)
    }

    /// Adds a link with explicit shape points between the endpoints.
    ///
    /// The supplied `shape_points` are the *interior* vertices; the endpoint
    /// positions are prepended/appended automatically.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        shape_points: Vec<Point>,
        class: RoadClass,
    ) -> LinkId {
        let mut vertices = Vec::with_capacity(shape_points.len() + 2);
        vertices.push(self.node_position(from));
        vertices.extend(shape_points);
        vertices.push(self.node_position(to));
        self.add_link_with_geometry(from, to, Polyline::new(vertices), class)
    }

    /// Adds a link with a fully specified geometry (must start and end at the
    /// endpoint node positions; checked in [`NetworkBuilder::build`]).
    pub fn add_link_with_geometry(
        &mut self,
        from: NodeId,
        to: NodeId,
        geometry: Polyline,
        class: RoadClass,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, geometry, class));
        id
    }

    /// Overrides the speed limit of an already-added link.
    pub fn set_speed_limit(&mut self, link: LinkId, kmh: f64) {
        self.links[link.index()].speed_limit_kmh = kmh;
    }

    /// Finishes the network, validating structural invariants.
    pub fn build(self) -> Result<RoadNetwork, BuildError> {
        let network = RoadNetwork::from_parts(self.nodes, self.links);
        let problems = network.validate();
        if problems.is_empty() {
            Ok(network)
        } else {
            Err(BuildError { problems })
        }
    }

    /// Finishes the network without validation (used by generators whose
    /// output is validated in their own tests; avoids double work on large
    /// maps).
    pub fn build_unchecked(self) -> RoadNetwork {
        RoadNetwork::from_parts(self.nodes, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_in_insertion_order() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_named_node(Point::new(10.0, 0.0), "corner");
        assert_eq!(n0, NodeId(0));
        assert_eq!(n1, NodeId(1));
        let l0 = b.add_straight_link(n0, n1, RoadClass::Residential);
        assert_eq!(l0, LinkId(0));
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.link_count(), 1);
        let net = b.build().unwrap();
        assert_eq!(net.node(n1).name.as_deref(), Some("corner"));
    }

    #[test]
    fn add_link_inserts_shape_points_between_endpoints() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(20.0, 0.0));
        let l = b.add_link(a, c, vec![Point::new(10.0, 5.0)], RoadClass::Arterial);
        let net = b.build().unwrap();
        let link = net.link(l);
        assert_eq!(link.shape_point_count(), 1);
        assert_eq!(link.geometry.first(), Point::new(0.0, 0.0));
        assert_eq!(link.geometry.last(), Point::new(20.0, 0.0));
    }

    #[test]
    fn build_rejects_geometry_that_misses_its_endpoints() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(20.0, 0.0));
        // Geometry that starts 10 m away from node `a`.
        b.add_link_with_geometry(
            a,
            c,
            Polyline::straight(Point::new(10.0, 10.0), Point::new(20.0, 0.0)),
            RoadClass::Residential,
        );
        let err = b.build().unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("does not start")));
        assert!(err.to_string().contains("invalid road network"));
    }

    #[test]
    fn speed_limit_override() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let l = b.add_straight_link(a, c, RoadClass::Arterial);
        b.set_speed_limit(l, 70.0);
        let net = b.build().unwrap();
        assert_eq!(net.link(l).speed_limit_kmh, 70.0);
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(20.0, 0.0));
        b.add_link_with_geometry(
            a,
            c,
            Polyline::straight(Point::new(10.0, 10.0), Point::new(20.0, 0.0)),
            RoadClass::Residential,
        );
        // Does not panic or error even though the geometry is inconsistent.
        let net = b.build_unchecked();
        assert_eq!(net.link_count(), 1);
        assert!(!net.validate().is_empty());
    }
}
