//! Intersections (nodes) of the road network.

use crate::ids::NodeId;
use mbdr_geo::Point;
use serde::{Deserialize, Serialize};

/// An intersection: a uniquely identified point where links meet.
///
/// In the paper's map model an intersection is "described by a unique
/// identifier and their exact geographical location". Dead-end road endpoints
/// are also modelled as nodes (with a single incident link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Unique identifier of the intersection.
    pub id: NodeId,
    /// Position in the local metric frame.
    pub position: Point,
    /// Optional human-readable name (useful in examples and debugging output).
    pub name: Option<String>,
}

impl Node {
    /// Creates an unnamed node.
    pub fn new(id: NodeId, position: Point) -> Self {
        Node { id, position, name: None }
    }

    /// Creates a named node.
    pub fn named(id: NodeId, position: Point, name: impl Into<String>) -> Self {
        Node { id, position, name: Some(name.into()) }
    }

    /// Distance from this intersection to `p`, metres.
    #[inline]
    pub fn distance_to(&self, p: &Point) -> f64 {
        self.position.distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_distance() {
        let n = Node::new(NodeId(3), Point::new(3.0, 4.0));
        assert_eq!(n.id, NodeId(3));
        assert!(n.name.is_none());
        assert!((n.distance_to(&Point::ORIGIN) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn named_node_keeps_name() {
        let n = Node::named(NodeId(1), Point::ORIGIN, "Schlossplatz");
        assert_eq!(n.name.as_deref(), Some("Schlossplatz"));
    }
}
