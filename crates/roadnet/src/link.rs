//! Links: road segments between two intersections, with shape points.

use crate::ids::{LinkId, NodeId};
use mbdr_geo::{kmh_to_ms, Aabb, Point, Polyline, Vec2};
use serde::{Deserialize, Serialize};

/// Functional classification of a road, carrying a default speed limit.
///
/// The paper notes that "further information, like information about main
/// roads or the speed limit on a road, can be extracted from this road map, to
/// further improve the performance of the map-based protocol", and the
/// future-work section proposes speed-limit-aware prediction. The generators
/// tag every link with a class so those extensions can be exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Autobahn / freeway carriageway.
    Freeway,
    /// Freeway on/off ramp or interchange connector.
    Ramp,
    /// Inter-urban main road ("Bundesstraße").
    Trunk,
    /// Urban main road.
    Arterial,
    /// Urban side street.
    Residential,
    /// Footpath / campus walkway (not drivable).
    Footpath,
}

impl RoadClass {
    /// Default speed limit for the class, km/h.
    pub fn default_speed_limit_kmh(self) -> f64 {
        match self {
            RoadClass::Freeway => 130.0,
            RoadClass::Ramp => 60.0,
            RoadClass::Trunk => 100.0,
            RoadClass::Arterial => 50.0,
            RoadClass::Residential => 30.0,
            RoadClass::Footpath => 6.0,
        }
    }

    /// Returns `true` if cars may use a link of this class.
    pub fn is_drivable(self) -> bool {
        !matches!(self, RoadClass::Footpath)
    }

    /// A relative importance used when a predictor prefers "main roads"
    /// (higher = more important).
    pub fn priority(self) -> u8 {
        match self {
            RoadClass::Freeway => 5,
            RoadClass::Trunk => 4,
            RoadClass::Ramp => 3,
            RoadClass::Arterial => 2,
            RoadClass::Residential => 1,
            RoadClass::Footpath => 0,
        }
    }
}

/// A link of the road network: an undirected road segment between two
/// intersections, geometrically described by a polyline whose interior
/// vertices are the link's *shape points*.
///
/// Links are traversable in both directions (the paper's model has no one-way
/// information); direction of travel is expressed by entering the link from
/// either its `from` or its `to` node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Unique identifier of the link.
    pub id: LinkId,
    /// Intersection at the geometric start of the polyline.
    pub from: NodeId,
    /// Intersection at the geometric end of the polyline.
    pub to: NodeId,
    /// Geometry: first vertex = `from` position, last vertex = `to` position,
    /// interior vertices are shape points.
    pub geometry: Polyline,
    /// Road classification.
    pub class: RoadClass,
    /// Speed limit in km/h (defaults to the class's value).
    pub speed_limit_kmh: f64,
}

impl Link {
    /// Creates a link with the class's default speed limit.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, geometry: Polyline, class: RoadClass) -> Self {
        Link { id, from, to, geometry, class, speed_limit_kmh: class.default_speed_limit_kmh() }
    }

    /// Sets an explicit speed limit (km/h), returning the modified link.
    pub fn with_speed_limit(mut self, kmh: f64) -> Self {
        self.speed_limit_kmh = kmh;
        self
    }

    /// Length of the link along its geometry, metres.
    #[inline]
    pub fn length(&self) -> f64 {
        self.geometry.length()
    }

    /// Speed limit in m/s.
    #[inline]
    pub fn speed_limit_ms(&self) -> f64 {
        kmh_to_ms(self.speed_limit_kmh)
    }

    /// Number of shape points (interior vertices).
    #[inline]
    pub fn shape_point_count(&self) -> usize {
        self.geometry.vertices().len().saturating_sub(2)
    }

    /// Bounding box of the link geometry.
    #[inline]
    pub fn bounding_box(&self) -> Aabb {
        self.geometry.bounding_box()
    }

    /// The node at the other end of the link, seen from `node`; `None` if
    /// `node` is not an endpoint of this link.
    pub fn other_end(&self, node: NodeId) -> Option<NodeId> {
        if node == self.from {
            Some(self.to)
        } else if node == self.to {
            Some(self.from)
        } else {
            None
        }
    }

    /// Returns `true` if `node` is one of the link's endpoints.
    #[inline]
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.from || node == self.to
    }

    /// The direction (unit vector) of travel along the link when *leaving*
    /// the given endpoint, taken from the geometry immediately adjacent to
    /// that endpoint. Returns `None` if `node` is not an endpoint.
    ///
    /// This is the vector the map-based predictor compares against the
    /// previous direction of travel to pick the "smallest angle" outgoing link
    /// at an intersection.
    pub fn departure_direction(&self, node: NodeId) -> Option<Vec2> {
        if node == self.from {
            Some(self.geometry.direction_at_arc_length(0.0))
        } else if node == self.to {
            // Leaving from the `to` end means travelling the geometry backwards.
            Some(-self.geometry.direction_at_arc_length(self.geometry.length()))
        } else {
            None
        }
    }

    /// Arc-length position of the given endpoint on the link geometry
    /// (0 for `from`, `length()` for `to`); `None` if not an endpoint.
    pub fn arc_length_of_endpoint(&self, node: NodeId) -> Option<f64> {
        if node == self.from {
            Some(0.0)
        } else if node == self.to {
            Some(self.length())
        } else {
            None
        }
    }

    /// Position at a given arc length measured *from the given endpoint*
    /// towards the other end (clamped to the link).
    pub fn point_from_endpoint(&self, node: NodeId, distance: f64) -> Option<Point> {
        if node == self.from {
            Some(self.geometry.point_at_arc_length(distance))
        } else if node == self.to {
            Some(self.geometry.point_at_arc_length(self.length() - distance))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ell_link() -> Link {
        // 10 m east then 10 m north, with one shape point at the corner.
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            Polyline::new(vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
            ]),
            RoadClass::Residential,
        )
    }

    #[test]
    fn length_and_shape_points() {
        let l = ell_link();
        assert!((l.length() - 20.0).abs() < 1e-9);
        assert_eq!(l.shape_point_count(), 1);
        assert_eq!(l.speed_limit_kmh, 30.0);
        assert!((l.speed_limit_ms() - 30.0 / 3.6).abs() < 1e-9);
    }

    #[test]
    fn with_speed_limit_overrides_class_default() {
        let l = ell_link().with_speed_limit(50.0);
        assert_eq!(l.speed_limit_kmh, 50.0);
    }

    #[test]
    fn other_end_and_touches() {
        let l = ell_link();
        assert_eq!(l.other_end(NodeId(0)), Some(NodeId(1)));
        assert_eq!(l.other_end(NodeId(1)), Some(NodeId(0)));
        assert_eq!(l.other_end(NodeId(9)), None);
        assert!(l.touches(NodeId(0)) && l.touches(NodeId(1)) && !l.touches(NodeId(2)));
    }

    #[test]
    fn departure_directions_point_away_from_each_endpoint() {
        let l = ell_link();
        let from_dir = l.departure_direction(NodeId(0)).unwrap();
        assert!((from_dir.x - 1.0).abs() < 1e-9, "leaves eastwards from the start");
        let to_dir = l.departure_direction(NodeId(1)).unwrap();
        assert!((to_dir.y + 1.0).abs() < 1e-9, "leaves southwards from the end");
        assert!(l.departure_direction(NodeId(5)).is_none());
    }

    #[test]
    fn point_from_endpoint_walks_in_the_right_direction() {
        let l = ell_link();
        assert_eq!(l.point_from_endpoint(NodeId(0), 5.0), Some(Point::new(5.0, 0.0)));
        assert_eq!(l.point_from_endpoint(NodeId(1), 5.0), Some(Point::new(10.0, 5.0)));
        assert_eq!(l.point_from_endpoint(NodeId(7), 5.0), None);
    }

    #[test]
    fn arc_length_of_endpoints() {
        let l = ell_link();
        assert_eq!(l.arc_length_of_endpoint(NodeId(0)), Some(0.0));
        assert!((l.arc_length_of_endpoint(NodeId(1)).unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(l.arc_length_of_endpoint(NodeId(2)), None);
    }

    #[test]
    fn road_class_properties() {
        assert!(
            RoadClass::Freeway.default_speed_limit_kmh()
                > RoadClass::Residential.default_speed_limit_kmh()
        );
        assert!(RoadClass::Freeway.is_drivable());
        assert!(!RoadClass::Footpath.is_drivable());
        assert!(RoadClass::Freeway.priority() > RoadClass::Arterial.priority());
    }

    #[test]
    fn bounding_box_covers_geometry() {
        let bb = ell_link().bounding_box();
        assert!(bb.contains(&Point::new(10.0, 10.0)));
        assert!(bb.contains(&Point::new(0.0, 0.0)));
    }
}
