//! Typed identifiers for intersections and links.
//!
//! The paper requires both intersections and links to carry "a unique
//! identifier"; update messages of the map-based protocol transmit the current
//! link's identifier. Newtypes keep node and link ids from being confused and
//! keep the update message representation compact (a `u32` each).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an intersection (node) in a [`crate::RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a link (road segment between two intersections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(LinkId(3) < LinkId(10));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(LinkId(7).to_string(), "l7");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(NodeId::from(9).index(), 9);
        assert_eq!(LinkId::from(4).index(), 4);
    }
}
