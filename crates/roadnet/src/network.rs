//! The road network graph.

use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::node::Node;
use mbdr_geo::Aabb;
use serde::{Deserialize, Serialize};

/// A complete road map: intersections, links and their adjacency.
///
/// Nodes and links are stored in dense `Vec`s indexed by their ids (the
/// [`crate::NetworkBuilder`] guarantees contiguous ids), so every lookup on
/// the map-matching and prediction hot paths is an array access.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// For each node (by index), the ids of all incident links.
    adjacency: Vec<Vec<LinkId>>,
}

impl RoadNetwork {
    /// Creates an empty network. Use [`crate::NetworkBuilder`] for
    /// construction with validation.
    pub fn empty() -> Self {
        RoadNetwork::default()
    }

    pub(crate) fn from_parts(nodes: Vec<Node>, links: Vec<Link>) -> Self {
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for link in &links {
            adjacency[link.from.index()].push(link.id);
            adjacency[link.to.index()].push(link.id);
        }
        RoadNetwork { nodes, links, adjacency }
    }

    /// Number of intersections.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the network has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range (ids handed out by this crate are
    /// always valid).
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The node with the given id, or `None` if out of range.
    pub fn get_node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// The link with the given id, or `None` if out of range.
    pub fn get_link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.index())
    }

    /// All nodes in id order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links in id order.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Ids of all links incident to `node` (in insertion order).
    #[inline]
    pub fn incident_links(&self, node: NodeId) -> &[LinkId] {
        &self.adjacency[node.index()]
    }

    /// Ids of the links incident to `node` except `arriving`, i.e. the
    /// candidate outgoing links the paper's forward-tracking and prediction
    /// consider when the object reaches an intersection.
    pub fn outgoing_links(&self, node: NodeId, arriving: Option<LinkId>) -> Vec<LinkId> {
        self.outgoing_links_iter(node, arriving).collect()
    }

    /// Iterator form of [`RoadNetwork::outgoing_links`]: the same candidate
    /// set without allocating a `Vec` — the per-intersection step of the
    /// map-based prediction walk, which must stay allocation-free however
    /// many link hops a prediction crosses. The underlying adjacency slice
    /// is cheap to re-iterate, so multi-pass policies (main-road priority,
    /// membership checks) call this repeatedly instead of collecting.
    pub fn outgoing_links_iter(
        &self,
        node: NodeId,
        arriving: Option<LinkId>,
    ) -> impl Iterator<Item = LinkId> + Clone + '_ {
        self.adjacency[node.index()].iter().copied().filter(move |&l| Some(l) != arriving)
    }

    /// Degree (number of incident links) of a node.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Ids of nodes adjacent to `node` (one hop over any incident link).
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adjacency[node.index()].iter().filter_map(|&l| self.link(l).other_end(node)).collect()
    }

    /// Bounding box of the whole network, or `None` if it has no nodes.
    pub fn bounding_box(&self) -> Option<Aabb> {
        let mut bb = Aabb::from_points(self.nodes.iter().map(|n| n.position))?;
        for link in &self.links {
            bb = bb.union(&link.bounding_box());
        }
        Some(bb)
    }

    /// Total length of all links, metres.
    pub fn total_length(&self) -> f64 {
        self.links.iter().map(|l| l.length()).sum()
    }

    /// Checks structural invariants; returns a list of human-readable
    /// problems (empty = valid).
    ///
    /// Checked invariants:
    /// * link endpoints reference existing nodes,
    /// * link ids and node ids match their storage index,
    /// * link geometry starts/ends at its endpoints' positions,
    /// * no zero-length links.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id.index() != i {
                problems.push(format!("node at index {i} has id {}", node.id));
            }
        }
        for (i, link) in self.links.iter().enumerate() {
            if link.id.index() != i {
                problems.push(format!("link at index {i} has id {}", link.id));
            }
            if link.from.index() >= self.nodes.len() || link.to.index() >= self.nodes.len() {
                problems.push(format!("link {} references a missing node", link.id));
                continue;
            }
            let from_pos = self.node(link.from).position;
            let to_pos = self.node(link.to).position;
            if link.geometry.first().distance(&from_pos) > 0.5 {
                problems.push(format!(
                    "link {} geometry does not start at node {}",
                    link.id, link.from
                ));
            }
            if link.geometry.last().distance(&to_pos) > 0.5 {
                problems
                    .push(format!("link {} geometry does not end at node {}", link.id, link.to));
            }
            if link.length() < 1e-6 {
                problems.push(format!("link {} has zero length", link.id));
            }
        }
        problems
    }

    /// Returns `true` if every node can reach every other node over the links
    /// (the trace generator requires a connected map to plan routes).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(n) = stack.pop() {
            for neigh in self.neighbors(n) {
                if !seen[neigh.index()] {
                    seen[neigh.index()] = true;
                    count += 1;
                    stack.push(neigh);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::link::RoadClass;
    use mbdr_geo::Point;

    /// A triangle network with three nodes and three links.
    fn triangle() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(50.0, 80.0));
        b.add_straight_link(a, c, RoadClass::Residential);
        b.add_straight_link(c, d, RoadClass::Residential);
        b.add_straight_link(d, a, RoadClass::Residential);
        b.build().expect("valid network")
    }

    #[test]
    fn counts_and_lookup() {
        let net = triangle();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 3);
        assert!(!net.is_empty());
        assert_eq!(net.node(NodeId(1)).position, Point::new(100.0, 0.0));
        assert!(net.get_node(NodeId(99)).is_none());
        assert!(net.get_link(LinkId(99)).is_none());
    }

    #[test]
    fn adjacency_and_outgoing_links() {
        let net = triangle();
        assert_eq!(net.degree(NodeId(0)), 2);
        let incident = net.incident_links(NodeId(0));
        assert_eq!(incident.len(), 2);
        // Excluding the arriving link leaves exactly one "outgoing" candidate.
        let out = net.outgoing_links(NodeId(0), Some(incident[0]));
        assert_eq!(out.len(), 1);
        assert_ne!(out[0], incident[0]);
        // Without an arriving link, all incident links are candidates.
        assert_eq!(net.outgoing_links(NodeId(0), None).len(), 2);
    }

    #[test]
    fn neighbors_of_triangle_node() {
        let net = triangle();
        let mut n = net.neighbors(NodeId(0));
        n.sort();
        assert_eq!(n, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn validation_passes_for_builder_output() {
        let net = triangle();
        assert!(net.validate().is_empty());
        assert!(net.is_connected());
    }

    #[test]
    fn bounding_box_and_total_length() {
        let net = triangle();
        let bb = net.bounding_box().unwrap();
        assert!(bb.contains(&Point::new(50.0, 40.0)));
        let expected = 100.0 + 2.0 * (50.0f64.powi(2) + 80.0f64.powi(2)).sqrt();
        assert!((net.total_length() - expected).abs() < 1e-6);
    }

    #[test]
    fn empty_network() {
        let net = RoadNetwork::empty();
        assert!(net.is_empty());
        assert!(net.bounding_box().is_none());
        assert!(net.is_connected());
        assert!(net.validate().is_empty());
    }

    #[test]
    fn disconnected_network_is_detected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        let d = b.add_node(Point::new(1000.0, 0.0));
        let e = b.add_node(Point::new(1010.0, 0.0));
        b.add_straight_link(a, c, RoadClass::Residential);
        b.add_straight_link(d, e, RoadClass::Residential);
        let net = b.build().expect("structurally valid");
        assert!(!net.is_connected());
    }
}
