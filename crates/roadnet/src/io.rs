//! Plain-text persistence for road networks.
//!
//! The workspace deliberately avoids pulling in a serialisation format crate;
//! maps are written in a small line-oriented text format instead:
//!
//! ```text
//! # mbdr road map v1
//! node <id> <x> <y> [name…]
//! link <id> <from> <to> <class> <speed_kmh> <n_vertices> <x0> <y0> <x1> <y1> …
//! ```
//!
//! The format is stable, human-diffable, and loss-free for everything the
//! protocols need. Both directions are covered by round-trip tests.

use crate::builder::NetworkBuilder;
use crate::ids::NodeId;
use crate::link::RoadClass;
use crate::network::RoadNetwork;
use mbdr_geo::{Point, Polyline};
use std::fmt::Write as _;
use std::path::Path;

/// Error produced when parsing a serialized road map.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number where the problem was found (0 = file level).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn class_to_str(c: RoadClass) -> &'static str {
    match c {
        RoadClass::Freeway => "freeway",
        RoadClass::Ramp => "ramp",
        RoadClass::Trunk => "trunk",
        RoadClass::Arterial => "arterial",
        RoadClass::Residential => "residential",
        RoadClass::Footpath => "footpath",
    }
}

fn class_from_str(s: &str) -> Option<RoadClass> {
    Some(match s {
        "freeway" => RoadClass::Freeway,
        "ramp" => RoadClass::Ramp,
        "trunk" => RoadClass::Trunk,
        "arterial" => RoadClass::Arterial,
        "residential" => RoadClass::Residential,
        "footpath" => RoadClass::Footpath,
        _ => return None,
    })
}

/// Serialises a network into the text format.
pub fn to_text(network: &RoadNetwork) -> String {
    let mut out = String::new();
    out.push_str("# mbdr road map v1\n");
    for node in network.nodes() {
        match &node.name {
            Some(name) => {
                let _ = writeln!(
                    out,
                    "node {} {} {} {}",
                    node.id.0, node.position.x, node.position.y, name
                );
            }
            None => {
                let _ = writeln!(out, "node {} {} {}", node.id.0, node.position.x, node.position.y);
            }
        }
    }
    for link in network.links() {
        let _ = write!(
            out,
            "link {} {} {} {} {} {}",
            link.id.0,
            link.from.0,
            link.to.0,
            class_to_str(link.class),
            link.speed_limit_kmh,
            link.geometry.vertices().len()
        );
        for v in link.geometry.vertices() {
            let _ = write!(out, " {} {}", v.x, v.y);
        }
        out.push('\n');
    }
    out
}

/// Parses a network from the text format.
pub fn from_text(text: &str) -> Result<RoadNetwork, ParseError> {
    let mut builder = NetworkBuilder::new();
    let mut pending_links: Vec<(usize, NodeId, NodeId, RoadClass, f64, Polyline)> = Vec::new();

    let err = |line: usize, message: &str| ParseError { line, message: message.to_string() };

    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("node") => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "node: missing or invalid id"))?;
                let x: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "node: missing or invalid x"))?;
                let y: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "node: missing or invalid y"))?;
                let name: Vec<&str> = parts.collect();
                let assigned = if name.is_empty() {
                    builder.add_node(Point::new(x, y))
                } else {
                    builder.add_named_node(Point::new(x, y), name.join(" "))
                };
                if assigned.0 != id {
                    return Err(err(line_no, "node ids must be dense and in ascending order"));
                }
            }
            Some("link") => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "link: missing or invalid id"))?;
                let from: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "link: missing or invalid from-node"))?;
                let to: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "link: missing or invalid to-node"))?;
                let class = parts
                    .next()
                    .and_then(class_from_str)
                    .ok_or_else(|| err(line_no, "link: unknown road class"))?;
                let speed: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "link: missing or invalid speed limit"))?;
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "link: missing or invalid vertex count"))?;
                if n < 2 {
                    return Err(err(line_no, "link: needs at least two vertices"));
                }
                let mut vertices = Vec::with_capacity(n);
                for _ in 0..n {
                    let x: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(line_no, "link: missing vertex coordinate"))?;
                    let y: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(line_no, "link: missing vertex coordinate"))?;
                    vertices.push(Point::new(x, y));
                }
                pending_links.push((
                    id as usize,
                    NodeId(from),
                    NodeId(to),
                    class,
                    speed,
                    Polyline::new(vertices),
                ));
            }
            Some(other) => {
                return Err(err(line_no, &format!("unknown record type `{other}`")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }

    // Links must be added in id order for the dense-id invariant to hold.
    pending_links.sort_by_key(|(id, ..)| *id);
    for (expected, (id, from, to, class, speed, geometry)) in pending_links.into_iter().enumerate()
    {
        if id != expected {
            return Err(err(0, "link ids must be dense (0..n)"));
        }
        let lid = builder.add_link_with_geometry(from, to, geometry, class);
        builder.set_speed_limit(lid, speed);
    }

    builder.build().map_err(|e| err(0, &format!("structural validation failed: {e}")))
}

/// Writes a network to a file in the text format.
pub fn save(network: &RoadNetwork, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(network))
}

/// Loads a network from a file in the text format.
pub fn load(path: &Path) -> std::io::Result<Result<RoadNetwork, ParseError>> {
    Ok(from_text(&std::fs::read_to_string(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn sample() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let a = b.add_named_node(Point::new(0.0, 0.0), "Hauptbahnhof");
        let c = b.add_node(Point::new(500.0, 0.0));
        let d = b.add_node(Point::new(500.0, 400.0));
        let l = b.add_link(a, c, vec![Point::new(250.0, 30.0)], RoadClass::Arterial);
        b.set_speed_limit(l, 60.0);
        b.add_straight_link(c, d, RoadClass::Residential);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let net = sample();
        let text = to_text(&net);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.node_count(), net.node_count());
        assert_eq!(parsed.link_count(), net.link_count());
        assert_eq!(parsed.node(NodeId(0)).name.as_deref(), Some("Hauptbahnhof"));
        let l0 = parsed.link(crate::LinkId(0));
        assert_eq!(l0.speed_limit_kmh, 60.0);
        assert_eq!(l0.class, RoadClass::Arterial);
        assert_eq!(l0.shape_point_count(), 1);
        assert!((parsed.total_length() - net.total_length()).abs() < 1e-6);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let net = sample();
        let mut text = String::from("# a comment\n\n");
        text.push_str(&to_text(&net));
        assert!(from_text(&text).is_ok());
    }

    #[test]
    fn unknown_record_type_is_an_error() {
        let e = from_text("intersection 0 1 2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown record"));
    }

    #[test]
    fn malformed_node_line_is_an_error() {
        let e = from_text("node 0 not-a-number 2\n").unwrap_err();
        assert!(e.message.contains("invalid x"));
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn non_dense_node_ids_are_rejected() {
        let e = from_text("node 5 0 0\n").unwrap_err();
        assert!(e.message.contains("dense"));
    }

    #[test]
    fn link_with_too_few_vertices_is_rejected() {
        let text = "node 0 0 0\nnode 1 100 0\nlink 0 0 1 residential 30 1 0 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("two vertices"));
    }

    #[test]
    fn unknown_road_class_is_rejected() {
        let text = "node 0 0 0\nnode 1 100 0\nlink 0 0 1 boulevard 30 2 0 0 100 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("road class"));
    }

    #[test]
    fn save_and_load_via_files() {
        let net = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mbdr_io_test_{}.map", std::process::id()));
        save(&net, &path).unwrap();
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.link_count(), net.link_count());
        std::fs::remove_file(&path).ok();
    }
}
