//! Spatial lookup of links near a position.
//!
//! The paper's map matcher initialises itself by "querying a spatial index for
//! the map information with the mobile object's current position" and keeps
//! re-querying while the object is off the map. [`LinkLocator`] wraps an
//! [`mbdr_spatial`] index over per-segment bounding boxes of every link and
//! returns candidate links together with their exact (polyline-projected)
//! distance, corrected position and arc length.

use crate::ids::LinkId;
use crate::network::RoadNetwork;
use mbdr_geo::{Aabb, Point};
use mbdr_spatial::{RTree, SpatialIndex};

/// A candidate link produced by a locator query, with the exact projection of
/// the query position onto the link geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMatch {
    /// The matched link.
    pub link: LinkId,
    /// Exact distance from the query point to the link geometry, metres.
    pub distance: f64,
    /// The corrected position `p_c`: the query point projected perpendicularly
    /// onto the link (Fig. 5 of the paper).
    pub position_on_link: Point,
    /// Arc length of the corrected position from the link's `from` node.
    pub arc_length: f64,
}

/// Spatial index over the links of a [`RoadNetwork`].
///
/// Each link is indexed once per geometry segment so that long curved links do
/// not produce huge, useless bounding boxes. Queries dedup by link id and
/// return the best projection per link.
#[derive(Debug, Clone)]
pub struct LinkLocator {
    /// Entries are (segment bbox, (link id, segment index)).
    index: RTree<(LinkId, u32)>,
}

impl LinkLocator {
    /// Builds a locator for the given network.
    pub fn build(network: &RoadNetwork) -> Self {
        let mut items: Vec<(Aabb, (LinkId, u32))> = Vec::new();
        for link in network.links() {
            for (si, seg) in link.geometry.segments().enumerate() {
                let bbox = Aabb::from_points([seg.a, seg.b]).expect("segment has two points");
                items.push((bbox, (link.id, si as u32)));
            }
        }
        LinkLocator { index: RTree::bulk_load(items) }
    }

    /// Number of indexed segments (diagnostic).
    pub fn indexed_segments(&self) -> usize {
        self.index.len()
    }

    /// All links whose geometry comes within `max_distance` metres of `p`,
    /// sorted by ascending exact distance. `max_distance` is the paper's
    /// matching tolerance `u_m`.
    pub fn links_within(
        &self,
        network: &RoadNetwork,
        p: &Point,
        max_distance: f64,
    ) -> Vec<LinkMatch> {
        let mut seen: Vec<LinkId> = Vec::new();
        let mut out: Vec<LinkMatch> = Vec::new();
        for entry in self.index.query_within(p, max_distance) {
            let (link_id, _) = entry.item;
            if seen.contains(&link_id) {
                continue;
            }
            seen.push(link_id);
            let link = network.link(link_id);
            let proj = link.geometry.project(p);
            if proj.distance <= max_distance {
                out.push(LinkMatch {
                    link: link_id,
                    distance: proj.distance,
                    position_on_link: proj.point,
                    arc_length: proj.arc_length,
                });
            }
        }
        out.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite distances"));
        out
    }

    /// The single nearest link to `p` within `max_distance`, if any.
    ///
    /// This is the initialisation step of the paper's map matching: "the link
    /// with the shortest distance is then selected, if it is not farther away
    /// than `u_m`".
    pub fn nearest_link(
        &self,
        network: &RoadNetwork,
        p: &Point,
        max_distance: f64,
    ) -> Option<LinkMatch> {
        // First try the cheap bounded query; if it finds nothing the point is
        // farther than `max_distance` from every link.
        self.links_within(network, p, max_distance).into_iter().next()
    }

    /// The nearest link regardless of distance (used by diagnostics and by the
    /// off-road re-acquisition logic, which wants to know how far away the
    /// road network is).
    pub fn nearest_link_unbounded(&self, network: &RoadNetwork, p: &Point) -> Option<LinkMatch> {
        // Ask the R-tree for a generous number of nearest segment boxes and
        // refine with exact projections.
        let mut best: Option<LinkMatch> = None;
        for n in self.index.nearest(p, 16) {
            let (link_id, _) = n.entry.item;
            let link = network.link(link_id);
            let proj = link.geometry.project(p);
            let candidate = LinkMatch {
                link: link_id,
                distance: proj.distance,
                position_on_link: proj.point,
                arc_length: proj.arc_length,
            };
            if best.as_ref().map(|b| candidate.distance < b.distance).unwrap_or(true) {
                best = Some(candidate);
            }
        }
        best
    }

    /// Projects `p` onto a specific link (convenience wrapper used by the
    /// matcher when it already has a current-link hypothesis).
    pub fn project_onto(&self, network: &RoadNetwork, link: LinkId, p: &Point) -> LinkMatch {
        let proj = network.link(link).geometry.project(p);
        LinkMatch {
            link,
            distance: proj.distance,
            position_on_link: proj.point,
            arc_length: proj.arc_length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::link::RoadClass;

    /// Two parallel east-west streets 100 m apart, connected by a north-south
    /// street at x = 0.
    fn h_network() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(-200.0, 0.0));
        let c = b.add_node(Point::new(200.0, 0.0));
        let d = b.add_node(Point::new(-200.0, 100.0));
        let e = b.add_node(Point::new(200.0, 100.0));
        let f = b.add_node(Point::new(0.0, 0.0));
        let g = b.add_node(Point::new(0.0, 100.0));
        b.add_straight_link(a, f, RoadClass::Residential); // 0: south-west
        b.add_straight_link(f, c, RoadClass::Residential); // 1: south-east
        b.add_straight_link(d, g, RoadClass::Residential); // 2: north-west
        b.add_straight_link(g, e, RoadClass::Residential); // 3: north-east
        b.add_straight_link(f, g, RoadClass::Residential); // 4: connector
        b.build().unwrap()
    }

    #[test]
    fn nearest_link_picks_closest_street() {
        let net = h_network();
        let loc = LinkLocator::build(&net);
        // 10 m north of the southern street, east of the connector.
        let m = loc.nearest_link(&net, &Point::new(50.0, 10.0), 50.0).unwrap();
        assert_eq!(m.link, LinkId(1));
        assert!((m.distance - 10.0).abs() < 1e-6);
        assert!((m.position_on_link.y - 0.0).abs() < 1e-6);
        assert!((m.position_on_link.x - 50.0).abs() < 1e-6);
    }

    #[test]
    fn matching_respects_the_tolerance_um() {
        let net = h_network();
        let loc = LinkLocator::build(&net);
        let p = Point::new(50.0, 40.0); // 40 m from the southern street
        assert!(loc.nearest_link(&net, &p, 30.0).is_none());
        assert!(loc.nearest_link(&net, &p, 45.0).is_some());
    }

    #[test]
    fn links_within_returns_all_candidates_sorted() {
        let net = h_network();
        let loc = LinkLocator::build(&net);
        // Exactly between the two horizontal streets, near the connector.
        let matches = loc.links_within(&net, &Point::new(10.0, 50.0), 60.0);
        assert!(matches.len() >= 3, "connector + both streets, got {}", matches.len());
        assert!(matches.windows(2).all(|w| w[0].distance <= w[1].distance));
        // The connector (10 m away) must be first.
        assert_eq!(matches[0].link, LinkId(4));
        assert!((matches[0].distance - 10.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_nearest_always_finds_something() {
        let net = h_network();
        let loc = LinkLocator::build(&net);
        let m = loc.nearest_link_unbounded(&net, &Point::new(5_000.0, 5_000.0)).unwrap();
        assert!(m.distance > 1_000.0);
    }

    #[test]
    fn project_onto_specific_link() {
        let net = h_network();
        let loc = LinkLocator::build(&net);
        let m = loc.project_onto(&net, LinkId(4), &Point::new(30.0, 50.0));
        assert_eq!(m.link, LinkId(4));
        assert!((m.distance - 30.0).abs() < 1e-6);
        assert!((m.arc_length - 50.0).abs() < 1e-6);
    }

    #[test]
    fn indexed_segment_count_matches_geometry() {
        let net = h_network();
        let loc = LinkLocator::build(&net);
        // Five straight links → five segments.
        assert_eq!(loc.indexed_segments(), 5);
    }
}
