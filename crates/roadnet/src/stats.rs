//! Descriptive statistics of a road network.
//!
//! Used by the benchmark harness to document the synthetic maps that replace
//! the paper's commercial navigation map (number of intersections, link
//! lengths, intersection degrees — the quantities that drive how often the
//! map-based predictor has to guess at an intersection).

use crate::network::RoadNetwork;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a [`RoadNetwork`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of intersections.
    pub nodes: usize,
    /// Number of links.
    pub links: usize,
    /// Total length of all links, metres.
    pub total_length_m: f64,
    /// Mean link length, metres (0 for an empty network).
    pub mean_link_length_m: f64,
    /// Length of the shortest link, metres.
    pub min_link_length_m: f64,
    /// Length of the longest link, metres.
    pub max_link_length_m: f64,
    /// Mean node degree.
    pub mean_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Number of true intersections (degree ≥ 3), where the predictor must
    /// choose an outgoing link.
    pub decision_nodes: usize,
    /// Total number of shape points across all links.
    pub shape_points: usize,
}

impl NetworkStats {
    /// Computes the statistics of `network`.
    pub fn of(network: &RoadNetwork) -> Self {
        let links = network.links();
        let nodes = network.nodes();
        let total_length_m = network.total_length();
        let (mut min_l, mut max_l) = (f64::INFINITY, 0.0f64);
        let mut shape_points = 0usize;
        for l in links {
            min_l = min_l.min(l.length());
            max_l = max_l.max(l.length());
            shape_points += l.shape_point_count();
        }
        if links.is_empty() {
            min_l = 0.0;
        }
        let mut degree_sum = 0usize;
        let mut max_degree = 0usize;
        let mut decision_nodes = 0usize;
        for n in nodes {
            let d = network.degree(n.id);
            degree_sum += d;
            max_degree = max_degree.max(d);
            if d >= 3 {
                decision_nodes += 1;
            }
        }
        NetworkStats {
            nodes: nodes.len(),
            links: links.len(),
            total_length_m,
            mean_link_length_m: if links.is_empty() {
                0.0
            } else {
                total_length_m / links.len() as f64
            },
            min_link_length_m: min_l,
            max_link_length_m: max_l,
            mean_degree: if nodes.is_empty() {
                0.0
            } else {
                degree_sum as f64 / nodes.len() as f64
            },
            max_degree,
            decision_nodes,
            shape_points,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes:            {}", self.nodes)?;
        writeln!(f, "links:            {}", self.links)?;
        writeln!(f, "total length:     {:.1} km", self.total_length_m / 1000.0)?;
        writeln!(f, "mean link length: {:.1} m", self.mean_link_length_m)?;
        writeln!(
            f,
            "link length span: {:.1} – {:.1} m",
            self.min_link_length_m, self.max_link_length_m
        )?;
        writeln!(f, "mean degree:      {:.2}", self.mean_degree)?;
        writeln!(f, "max degree:       {}", self.max_degree)?;
        writeln!(f, "decision nodes:   {}", self.decision_nodes)?;
        write!(f, "shape points:     {}", self.shape_points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::link::RoadClass;
    use mbdr_geo::Point;

    #[test]
    fn stats_of_empty_network_are_zero() {
        let s = NetworkStats::of(&RoadNetwork::empty());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.links, 0);
        assert_eq!(s.total_length_m, 0.0);
        assert_eq!(s.mean_link_length_m, 0.0);
        assert_eq!(s.min_link_length_m, 0.0);
    }

    #[test]
    fn stats_of_a_star_network() {
        // A hub with three 100 m spokes.
        let mut b = NetworkBuilder::new();
        let hub = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 100.0));
        let n3 = b.add_node(Point::new(-100.0, 0.0));
        b.add_straight_link(hub, n1, RoadClass::Residential);
        b.add_straight_link(hub, n2, RoadClass::Residential);
        b.add_link(hub, n3, vec![Point::new(-50.0, 10.0)], RoadClass::Residential);
        let net = b.build().unwrap();
        let s = NetworkStats::of(&net);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.links, 3);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.decision_nodes, 1);
        assert_eq!(s.shape_points, 1);
        assert!(s.min_link_length_m <= s.mean_link_length_m);
        assert!(s.mean_link_length_m <= s.max_link_length_m);
        assert!((s.mean_degree - 6.0 / 4.0).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("decision nodes"));
    }
}
