//! Link-transition statistics for the probability-enhanced protocol variant.
//!
//! The paper's "map-based with probability information" variant enhances the
//! map with probabilities that "describe what percentage of all users follows
//! a certain link (user-independent) or how many times a certain object
//! follows this link when moving over the intersection (user-specific)"; the
//! predictor then "assumes that the object is following the link with the
//! highest probability". [`TransitionTable`] collects those counts — either
//! globally or per object — and answers the most-likely-next-link query.

use crate::ids::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Key of a transition observation: arriving over `from_link` at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransitionKey {
    /// Intersection being crossed.
    pub node: NodeId,
    /// Link over which the intersection was entered.
    pub from_link: LinkId,
}

/// Counts of which outgoing link was taken for each (node, arriving link)
/// pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransitionTable {
    counts: HashMap<TransitionKey, HashMap<LinkId, u64>>,
    total_observations: u64,
}

impl TransitionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TransitionTable::default()
    }

    /// Records one observation: the object arrived at `node` over `from_link`
    /// and left over `to_link`.
    pub fn record(&mut self, node: NodeId, from_link: LinkId, to_link: LinkId) {
        let key = TransitionKey { node, from_link };
        *self.counts.entry(key).or_default().entry(to_link).or_insert(0) += 1;
        self.total_observations += 1;
    }

    /// Total number of recorded observations.
    pub fn observations(&self) -> u64 {
        self.total_observations
    }

    /// Number of distinct (node, arriving-link) situations observed.
    pub fn situations(&self) -> usize {
        self.counts.len()
    }

    /// The most frequently taken outgoing link for the given situation, if the
    /// situation has been observed at all. Ties are broken towards the smaller
    /// link id so the choice is deterministic on both source and server.
    pub fn most_likely(&self, node: NodeId, from_link: LinkId) -> Option<LinkId> {
        let key = TransitionKey { node, from_link };
        let dist = self.counts.get(&key)?;
        dist.iter().max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then(lb.cmp(la))).map(|(&l, _)| l)
    }

    /// Probability (relative frequency) that `to_link` is taken in the given
    /// situation; `None` if the situation has never been observed.
    pub fn probability(&self, node: NodeId, from_link: LinkId, to_link: LinkId) -> Option<f64> {
        let key = TransitionKey { node, from_link };
        let dist = self.counts.get(&key)?;
        let total: u64 = dist.values().sum();
        if total == 0 {
            return None;
        }
        Some(*dist.get(&to_link).unwrap_or(&0) as f64 / total as f64)
    }

    /// Merges another table into this one (used to aggregate per-object,
    /// user-specific tables into a user-independent one).
    pub fn merge(&mut self, other: &TransitionTable) {
        for (key, dist) in &other.counts {
            let entry = self.counts.entry(*key).or_default();
            for (&link, &count) in dist {
                *entry.entry(link).or_insert(0) += count;
            }
        }
        self.total_observations += other.total_observations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_knows_nothing() {
        let t = TransitionTable::new();
        assert_eq!(t.observations(), 0);
        assert_eq!(t.situations(), 0);
        assert!(t.most_likely(NodeId(0), LinkId(0)).is_none());
        assert!(t.probability(NodeId(0), LinkId(0), LinkId(1)).is_none());
    }

    #[test]
    fn most_likely_follows_the_majority() {
        let mut t = TransitionTable::new();
        for _ in 0..3 {
            t.record(NodeId(5), LinkId(1), LinkId(2));
        }
        t.record(NodeId(5), LinkId(1), LinkId(3));
        assert_eq!(t.most_likely(NodeId(5), LinkId(1)), Some(LinkId(2)));
        assert_eq!(t.observations(), 4);
        assert_eq!(t.situations(), 1);
        assert!((t.probability(NodeId(5), LinkId(1), LinkId(2)).unwrap() - 0.75).abs() < 1e-9);
        assert!((t.probability(NodeId(5), LinkId(1), LinkId(9)).unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn ties_break_deterministically_towards_smaller_id() {
        let mut t = TransitionTable::new();
        t.record(NodeId(1), LinkId(0), LinkId(7));
        t.record(NodeId(1), LinkId(0), LinkId(3));
        assert_eq!(t.most_likely(NodeId(1), LinkId(0)), Some(LinkId(3)));
    }

    #[test]
    fn situations_are_keyed_by_arriving_link() {
        let mut t = TransitionTable::new();
        t.record(NodeId(1), LinkId(0), LinkId(2));
        t.record(NodeId(1), LinkId(9), LinkId(3));
        assert_eq!(t.situations(), 2);
        assert_eq!(t.most_likely(NodeId(1), LinkId(0)), Some(LinkId(2)));
        assert_eq!(t.most_likely(NodeId(1), LinkId(9)), Some(LinkId(3)));
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = TransitionTable::new();
        a.record(NodeId(1), LinkId(0), LinkId(2));
        let mut b = TransitionTable::new();
        b.record(NodeId(1), LinkId(0), LinkId(3));
        b.record(NodeId(1), LinkId(0), LinkId(3));
        a.merge(&b);
        assert_eq!(a.observations(), 3);
        assert_eq!(a.most_likely(NodeId(1), LinkId(0)), Some(LinkId(3)));
    }
}
