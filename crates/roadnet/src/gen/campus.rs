//! Synthetic campus / pedestrian map: an irregular footpath network.
//!
//! Mirrors the paper's walking scenario (Table 1: 10 km at an average of
//! 4.6 km/h). Pedestrian movement is slow relative to the GPS noise and the
//! path network is irregular with many junctions, which is why the walking
//! scenario is the one case where the paper observed the map-based protocol
//! losing to linear prediction at the tightest accuracy bound (Fig. 10).

use crate::builder::NetworkBuilder;
use crate::gen::{curved_shape_points, jitter};
use crate::ids::NodeId;
use crate::link::RoadClass;
use crate::network::RoadNetwork;
use mbdr_geo::Point;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the campus footpath generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampusConfig {
    /// Number of path junctions.
    pub junctions: usize,
    /// Side length of the (square) campus area, metres.
    pub extent_m: f64,
    /// Number of nearest neighbours each junction is connected to.
    pub neighbours: usize,
    /// Lateral amplitude of path curvature, metres.
    pub path_curve_amplitude_m: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            junctions: 120,
            extent_m: 2_200.0,
            neighbours: 3,
            path_curve_amplitude_m: 12.0,
            seed: 0xCA_B005E,
        }
    }
}

/// Generates the campus footpath network described by `config`.
///
/// Junctions are scattered over a jittered grid (so they keep a sensible
/// minimum spacing); each junction is connected to its `neighbours` nearest
/// neighbours and any remaining components are stitched together afterwards,
/// so the result is always connected.
pub fn generate(config: &CampusConfig) -> RoadNetwork {
    assert!(config.junctions >= 4, "a campus needs at least four junctions");
    assert!(config.neighbours >= 1);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetworkBuilder::new();

    // Scatter junctions on a jittered grid covering the extent.
    let per_side = (config.junctions as f64).sqrt().ceil() as usize;
    let cell = config.extent_m / per_side as f64;
    let mut positions: Vec<Point> = Vec::with_capacity(config.junctions);
    'outer: for j in 0..per_side {
        for i in 0..per_side {
            if positions.len() == config.junctions {
                break 'outer;
            }
            let base = Point::new((i as f64 + 0.5) * cell, (j as f64 + 0.5) * cell);
            positions.push(jitter(&mut rng, base, cell * 0.3));
        }
    }
    let ids: Vec<NodeId> = positions.iter().map(|&p| b.add_node(p)).collect();

    // Connect each junction to its nearest neighbours (deduplicated).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, &p) in positions.iter().enumerate() {
        let mut by_distance: Vec<(f64, usize)> = positions
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, &q)| (p.distance(&q), j))
            .collect();
        by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(_, j) in by_distance.iter().take(config.neighbours) {
            let key = (i.min(j), i.max(j));
            if !edges.contains(&key) {
                edges.push(key);
            }
        }
    }
    for &(i, j) in &edges {
        let shape = curved_shape_points(
            &mut rng,
            positions[i],
            positions[j],
            40.0,
            config.path_curve_amplitude_m,
        );
        b.add_link(ids[i], ids[j], shape, RoadClass::Footpath);
    }

    let net = b.build().expect("generated campus must be structurally valid");
    if net.is_connected() {
        return net;
    }

    // Stitch disconnected components together: repeatedly connect the first
    // unreachable junction to its nearest reachable one.
    let mut b = NetworkBuilder::new();
    for &p in &positions {
        b.add_node(p);
    }
    for &(i, j) in &edges {
        let shape = curved_shape_points(
            &mut rng,
            positions[i],
            positions[j],
            40.0,
            config.path_curve_amplitude_m,
        );
        b.add_link(ids[i], ids[j], shape, RoadClass::Footpath);
    }
    let mut extra: Vec<(usize, usize)> = Vec::new();
    loop {
        let net = {
            // Build a throwaway copy to test connectivity.
            let mut tb = NetworkBuilder::new();
            for &p in &positions {
                tb.add_node(p);
            }
            for &(i, j) in edges.iter().chain(extra.iter()) {
                tb.add_straight_link(NodeId(i as u32), NodeId(j as u32), RoadClass::Footpath);
            }
            tb.build_unchecked()
        };
        if net.is_connected() {
            break;
        }
        // Find reachable set from node 0.
        let mut seen = vec![false; positions.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for &(i, j) in edges.iter().chain(extra.iter()) {
                for (a, c) in [(i, j), (j, i)] {
                    if a == n && !seen[c] {
                        seen[c] = true;
                        stack.push(c);
                    }
                }
            }
        }
        let unreachable = seen.iter().position(|&s| !s).expect("network is disconnected");
        let nearest_reachable = (0..positions.len())
            .filter(|&k| seen[k])
            .min_by(|&a, &c| {
                positions[a]
                    .distance(&positions[unreachable])
                    .partial_cmp(&positions[c].distance(&positions[unreachable]))
                    .unwrap()
            })
            .expect("at least node 0 is reachable");
        extra.push((unreachable.min(nearest_reachable), unreachable.max(nearest_reachable)));
    }
    for &(i, j) in &extra {
        b.add_straight_link(NodeId(i as u32), NodeId(j as u32), RoadClass::Footpath);
    }
    b.build().expect("stitched campus must be structurally valid")
}

/// Convenience wrapper with the default configuration and a caller-chosen seed.
pub fn generate_default(seed: u64) -> RoadNetwork {
    generate(&CampusConfig { seed, ..CampusConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    fn small() -> CampusConfig {
        CampusConfig { junctions: 30, extent_m: 800.0, ..CampusConfig::default() }
    }

    #[test]
    fn generated_campus_validates_and_is_connected() {
        let net = generate(&small());
        assert!(net.validate().is_empty());
        assert!(net.is_connected());
        assert_eq!(net.node_count(), 30);
    }

    #[test]
    fn all_links_are_footpaths_with_low_speed() {
        let net = generate(&small());
        assert!(net.links().iter().all(|l| l.class == RoadClass::Footpath));
        assert!(net.links().iter().all(|l| l.speed_limit_kmh <= 10.0));
    }

    #[test]
    fn paths_are_short_relative_to_roads() {
        let net = generate(&small());
        let stats = NetworkStats::of(&net);
        assert!(stats.mean_link_length_m < 500.0);
        assert!(stats.decision_nodes > 0);
    }

    #[test]
    fn determinism_in_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.link_count(), b.link_count());
        assert_eq!(a.total_length(), b.total_length());
    }

    #[test]
    fn larger_campus_has_more_paths() {
        let small_net = generate(&small());
        let large_net = generate(&CampusConfig { junctions: 80, ..small() });
        assert!(large_net.link_count() > small_net.link_count());
    }

    #[test]
    #[should_panic(expected = "at least four")]
    fn tiny_campus_is_rejected() {
        let _ = generate(&CampusConfig { junctions: 2, ..CampusConfig::default() });
    }
}
