//! Synthetic city map: a perturbed Manhattan grid with arterials and side
//! streets.
//!
//! Mirrors the paper's city-traffic scenario (Table 1: 89 km at an average of
//! 34 km/h): short links, dense intersections, frequent turns — the regime in
//! which even the map-based predictor has to guess often and the relative
//! advantage over linear prediction shrinks (Fig. 9).

use crate::builder::NetworkBuilder;
use crate::gen::jitter;
use crate::ids::NodeId;
use crate::link::RoadClass;
use crate::network::RoadNetwork;
use mbdr_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the city-grid generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityConfig {
    /// Number of north-south streets.
    pub columns: usize,
    /// Number of east-west streets.
    pub rows: usize,
    /// Block edge length, metres.
    pub block_size_m: f64,
    /// Positional jitter applied to every intersection, metres.
    pub jitter_m: f64,
    /// Every `arterial_every`-th row/column becomes an arterial (faster,
    /// higher priority); the rest are residential streets.
    pub arterial_every: usize,
    /// Probability that a residential grid edge is removed (creates dead ends
    /// and irregular blocks like a real city). Connectivity is restored after
    /// removal if it breaks.
    pub removal_probability: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            columns: 24,
            rows: 24,
            block_size_m: 160.0,
            jitter_m: 18.0,
            arterial_every: 4,
            removal_probability: 0.08,
            seed: 0xC17_15EED,
        }
    }
}

/// Generates the city network described by `config`.
pub fn generate(config: &CityConfig) -> RoadNetwork {
    assert!(config.columns >= 2 && config.rows >= 2, "city grid needs at least 2x2 intersections");
    assert!(config.block_size_m > 10.0, "block size unrealistically small");
    assert!((0.0..1.0).contains(&config.removal_probability));

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetworkBuilder::new();

    // Intersections.
    let mut ids: Vec<NodeId> = Vec::with_capacity(config.columns * config.rows);
    for j in 0..config.rows {
        for i in 0..config.columns {
            let base = Point::new(i as f64 * config.block_size_m, j as f64 * config.block_size_m);
            ids.push(b.add_node(jitter(&mut rng, base, config.jitter_m)));
        }
    }
    let at = |i: usize, j: usize| ids[j * config.columns + i];
    let is_arterial_col =
        |i: usize| config.arterial_every > 0 && i.is_multiple_of(config.arterial_every);
    let is_arterial_row =
        |j: usize| config.arterial_every > 0 && j.is_multiple_of(config.arterial_every);

    // Streets along the grid, with occasional removals of residential edges.
    for j in 0..config.rows {
        for i in 0..config.columns {
            if i + 1 < config.columns {
                let arterial = is_arterial_row(j);
                if arterial || rng.gen::<f64>() >= config.removal_probability {
                    let class = if arterial { RoadClass::Arterial } else { RoadClass::Residential };
                    b.add_straight_link(at(i, j), at(i + 1, j), class);
                }
            }
            if j + 1 < config.rows {
                let arterial = is_arterial_col(i);
                if arterial || rng.gen::<f64>() >= config.removal_probability {
                    let class = if arterial { RoadClass::Arterial } else { RoadClass::Residential };
                    b.add_straight_link(at(i, j), at(i, j + 1), class);
                }
            }
        }
    }

    let net = b.build().expect("generated city grid must be structurally valid");
    if net.is_connected() {
        return net;
    }
    // Random removals occasionally disconnect the grid; regenerate without
    // removals in that case (still a valid city, just denser).
    generate(&CityConfig { removal_probability: 0.0, ..*config })
}

/// Convenience wrapper with the default configuration and a caller-chosen seed.
pub fn generate_default(seed: u64) -> RoadNetwork {
    generate(&CityConfig { seed, ..CityConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    fn small() -> CityConfig {
        CityConfig { columns: 8, rows: 6, ..CityConfig::default() }
    }

    #[test]
    fn generated_city_validates_and_is_connected() {
        let net = generate(&small());
        assert!(net.validate().is_empty());
        assert!(net.is_connected());
        assert_eq!(net.node_count(), 48);
    }

    #[test]
    fn grid_has_many_decision_points() {
        let net = generate(&small());
        let stats = NetworkStats::of(&net);
        // Interior nodes of a grid have degree 4 (minus removals).
        assert!(stats.decision_nodes > net.node_count() / 3);
        assert!(stats.mean_link_length_m < 300.0);
    }

    #[test]
    fn arterials_are_present_and_faster() {
        let net = generate(&small());
        let arterials: Vec<_> =
            net.links().iter().filter(|l| l.class == RoadClass::Arterial).collect();
        let residentials: Vec<_> =
            net.links().iter().filter(|l| l.class == RoadClass::Residential).collect();
        assert!(!arterials.is_empty());
        assert!(!residentials.is_empty());
        assert!(arterials[0].speed_limit_kmh > residentials[0].speed_limit_kmh);
    }

    #[test]
    fn determinism_in_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.link_count(), b.link_count());
        assert_eq!(a.total_length(), b.total_length());
    }

    #[test]
    fn no_removals_gives_the_full_grid() {
        let cfg = CityConfig { removal_probability: 0.0, jitter_m: 0.0, ..small() };
        let net = generate(&cfg);
        // Full grid: rows*(cols-1) + cols*(rows-1) edges.
        assert_eq!(net.link_count(), 6 * 7 + 8 * 5);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_grid_is_rejected() {
        let _ = generate(&CityConfig { columns: 1, rows: 5, ..CityConfig::default() });
    }
}
