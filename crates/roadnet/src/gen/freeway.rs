//! Synthetic freeway map: a long, gently curving carriageway with
//! interchanges and crossing roads.
//!
//! Mirrors the paper's freeway scenario (Table 1: 163 km driven at an average
//! of 103 km/h): few intersections, long links, smooth curves — the conditions
//! under which the map-based predictor shines because it can follow the curves
//! of the road that defeat linear prediction (Fig. 3 vs. Fig. 6).

use crate::builder::NetworkBuilder;
use crate::gen::curved_shape_points;
use crate::link::RoadClass;
use crate::network::RoadNetwork;
use mbdr_geo::{Point, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the freeway generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreewayConfig {
    /// Total length of the freeway centreline, metres.
    pub total_length_m: f64,
    /// Distance between interchanges, metres.
    pub interchange_spacing_m: f64,
    /// Maximum heading change per interchange-to-interchange stretch, radians.
    pub max_bend_per_link: f64,
    /// Lateral amplitude of the in-link curvature, metres.
    pub curve_amplitude_m: f64,
    /// Length of the crossing roads attached at each interchange, metres.
    pub crossing_road_length_m: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for FreewayConfig {
    fn default() -> Self {
        FreewayConfig {
            // Slightly longer than the 163 km trace so the vehicle never runs
            // out of road.
            total_length_m: 170_000.0,
            interchange_spacing_m: 4_000.0,
            max_bend_per_link: 0.35,
            curve_amplitude_m: 120.0,
            crossing_road_length_m: 1_500.0,
            seed: 0x5EED_F8EE,
        }
    }
}

/// Generates the freeway network described by `config`.
///
/// The returned network is connected, validates cleanly, and consists of
/// freeway links (class [`RoadClass::Freeway`]) along the main carriageway
/// plus a pair of [`RoadClass::Arterial`] crossing-road stubs at every
/// interchange, so that every interchange is a genuine decision point for the
/// map-based predictor.
pub fn generate(config: &FreewayConfig) -> RoadNetwork {
    assert!(config.total_length_m > 0.0, "freeway length must be positive");
    assert!(config.interchange_spacing_m > 100.0, "interchange spacing unrealistically small");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetworkBuilder::new();

    let n_sections = (config.total_length_m / config.interchange_spacing_m).ceil() as usize;
    // Lay out interchange nodes with a slowly wandering heading, starting
    // roughly eastbound.
    let mut heading = std::f64::consts::FRAC_PI_2; // east
    let mut position = Point::new(0.0, 0.0);
    let mut interchange_nodes = Vec::with_capacity(n_sections + 1);
    interchange_nodes.push(b.add_named_node(position, "interchange 0"));
    for i in 1..=n_sections {
        heading += rng.gen_range(-config.max_bend_per_link..=config.max_bend_per_link);
        // Keep the freeway heading broadly eastbound so it never loops onto
        // itself, which would create unrealistic self-intersections.
        let east = std::f64::consts::FRAC_PI_2;
        heading = heading.clamp(east - 0.9, east + 0.9);
        position += Vec2::from_heading(heading) * config.interchange_spacing_m;
        interchange_nodes.push(b.add_named_node(position, format!("interchange {i}")));
    }

    // Freeway links between consecutive interchanges, with curvature.
    for w in interchange_nodes.windows(2) {
        let from_pos = b.node_position(w[0]);
        let to_pos = b.node_position(w[1]);
        let shape =
            curved_shape_points(&mut rng, from_pos, to_pos, 250.0, config.curve_amplitude_m);
        let link = b.add_link(w[0], w[1], shape, RoadClass::Freeway);
        b.set_speed_limit(link, 130.0);
    }

    // Crossing roads: one arterial stub on each side of every interior
    // interchange (skip the two termini).
    for (i, &node) in interchange_nodes.iter().enumerate().skip(1) {
        if i == interchange_nodes.len() - 1 {
            break;
        }
        let here = b.node_position(node);
        let prev = b.node_position(interchange_nodes[i - 1]);
        let along = (here - prev).normalized_or_north();
        let normal = along.perp();
        for side in [-1.0, 1.0] {
            let end = here
                + normal * (side * config.crossing_road_length_m)
                + along * rng.gen_range(-200.0..200.0);
            let stub = b.add_node(end);
            let shape = curved_shape_points(&mut rng, here, end, 200.0, 40.0);
            let link = b.add_link(node, stub, shape, RoadClass::Arterial);
            b.set_speed_limit(link, 80.0);
        }
    }

    b.build().expect("generated freeway must be structurally valid")
}

/// Convenience wrapper with the default configuration and a caller-chosen seed.
pub fn generate_default(seed: u64) -> RoadNetwork {
    generate(&FreewayConfig { seed, ..FreewayConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    fn small_config() -> FreewayConfig {
        FreewayConfig { total_length_m: 20_000.0, ..FreewayConfig::default() }
    }

    #[test]
    fn generated_freeway_validates_and_is_connected() {
        let net = generate(&small_config());
        assert!(net.validate().is_empty());
        assert!(net.is_connected());
        assert!(net.link_count() > 0);
    }

    #[test]
    fn freeway_length_is_at_least_the_requested_length() {
        let net = generate(&small_config());
        let freeway_length: f64 =
            net.links().iter().filter(|l| l.class == RoadClass::Freeway).map(|l| l.length()).sum();
        assert!(freeway_length >= 20_000.0, "freeway length {freeway_length}");
    }

    #[test]
    fn interchanges_are_decision_points() {
        let net = generate(&small_config());
        let stats = NetworkStats::of(&net);
        assert!(stats.decision_nodes > 0, "interchanges must have degree >= 3");
        assert!(stats.max_degree >= 4);
    }

    #[test]
    fn links_have_shape_points_for_curves() {
        let net = generate(&small_config());
        let curved = net
            .links()
            .iter()
            .filter(|l| l.class == RoadClass::Freeway && l.shape_point_count() > 0)
            .count();
        assert!(curved > 0, "freeway links should carry shape points");
    }

    #[test]
    fn same_seed_same_map_different_seed_different_map() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.total_length(), b.total_length());
        let c = generate(&FreewayConfig { seed: 12345, ..small_config() });
        assert!((a.total_length() - c.total_length()).abs() > 1e-6);
    }

    #[test]
    fn freeway_progresses_eastwards_without_looping_back() {
        let net = generate(&small_config());
        let bb = net.bounding_box().unwrap();
        // The east-west extent should dominate: the freeway heads east.
        assert!(bb.width() > bb.height());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_is_rejected() {
        let _ = generate(&FreewayConfig { total_length_m: 0.0, ..FreewayConfig::default() });
    }
}
