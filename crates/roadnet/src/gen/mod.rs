//! Synthetic road-map generators.
//!
//! The paper extracted its map "from a map used in car navigation systems";
//! that commercial data set is not available, so this module generates
//! synthetic maps with the same structural ingredients (intersections, links,
//! shape points, road classes, speed limits) and with geometry tuned to each
//! of the four movement scenarios of Table 1:
//!
//! * [`freeway::generate`] — a long, gently curving freeway with interchanges
//!   and crossing roads (scenario: *car, freeway*).
//! * [`interurban::generate`] — towns connected by winding trunk roads
//!   (scenario: *car, inter-urban*).
//! * [`city_grid::generate`] — a perturbed Manhattan grid with arterials and
//!   side streets (scenario: *car, city traffic*).
//! * [`campus::generate`] — an irregular footpath network (scenario: *walking
//!   person*).
//!
//! All generators are deterministic in their seed so experiments are
//! reproducible.

pub mod campus;
pub mod city_grid;
pub mod freeway;
pub mod interurban;

use mbdr_geo::{Point, Vec2};
use rand::rngs::StdRng;
use rand::Rng;

/// Generates interior shape points for a link from `from` to `to`, bending the
/// road with a smooth sinusoidal lateral offset of up to `max_offset` metres
/// and sampling a shape point roughly every `spacing` metres.
///
/// Returns an empty vector for short links (no shape points necessary).
pub(crate) fn curved_shape_points(
    rng: &mut StdRng,
    from: Point,
    to: Point,
    spacing: f64,
    max_offset: f64,
) -> Vec<Point> {
    let dir = to - from;
    let length = dir.norm();
    if length < spacing * 1.5 {
        return Vec::new();
    }
    let unit = dir.normalized_or_north();
    let normal = unit.perp();
    let n = (length / spacing).floor() as usize;
    let amplitude = rng.gen_range(0.2..1.0) * max_offset;
    let periods = rng.gen_range(0.5..2.0);
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut out = Vec::with_capacity(n);
    for i in 1..n {
        let t = i as f64 / n as f64;
        // The sine envelope is zero at both endpoints so the geometry still
        // starts and ends exactly at the nodes.
        let envelope = (std::f64::consts::PI * t).sin();
        let offset = amplitude * envelope * (std::f64::consts::TAU * periods * t + phase).sin();
        let base = from.lerp(&to, t);
        out.push(base + normal * offset);
    }
    out
}

/// Adds uniform positional jitter of up to `±magnitude` metres to a point.
pub(crate) fn jitter(rng: &mut StdRng, p: Point, magnitude: f64) -> Point {
    p + Vec2::new(rng.gen_range(-magnitude..=magnitude), rng.gen_range(-magnitude..=magnitude))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn curved_shape_points_stay_within_the_offset_band() {
        let mut rng = StdRng::seed_from_u64(7);
        let from = Point::new(0.0, 0.0);
        let to = Point::new(2_000.0, 0.0);
        let pts = curved_shape_points(&mut rng, from, to, 100.0, 50.0);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p.y.abs() <= 50.0 + 1e-9, "offset {} exceeds band", p.y);
            assert!(p.x > 0.0 && p.x < 2_000.0);
        }
    }

    #[test]
    fn short_links_get_no_shape_points() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts =
            curved_shape_points(&mut rng, Point::new(0.0, 0.0), Point::new(50.0, 0.0), 100.0, 50.0);
        assert!(pts.is_empty());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = {
            let mut rng = StdRng::seed_from_u64(99);
            curved_shape_points(&mut rng, Point::ORIGIN, Point::new(3_000.0, 500.0), 150.0, 80.0)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(99);
            curved_shape_points(&mut rng, Point::ORIGIN, Point::new(3_000.0, 500.0), 150.0, 80.0)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = jitter(&mut rng, Point::new(10.0, 10.0), 5.0);
            assert!((p.x - 10.0).abs() <= 5.0);
            assert!((p.y - 10.0).abs() <= 5.0);
        }
    }
}
