//! Synthetic inter-urban map: villages connected by winding country roads.
//!
//! Mirrors the paper's inter-urban scenario (Table 1: 99 km at an average of
//! 60 km/h): stretches of fast, moderately curved trunk road interrupted by
//! slower passages through villages with a handful of intersections each.

use crate::builder::NetworkBuilder;
use crate::gen::{curved_shape_points, jitter};
use crate::ids::NodeId;
use crate::link::RoadClass;
use crate::network::RoadNetwork;
use mbdr_geo::{Point, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the inter-urban generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterurbanConfig {
    /// Number of villages along the corridor.
    pub towns: usize,
    /// Distance between consecutive villages, metres.
    pub town_spacing_m: f64,
    /// Side length of a village's small street grid, metres.
    pub town_extent_m: f64,
    /// Lateral amplitude of the country-road curves, metres.
    pub road_curve_amplitude_m: f64,
    /// Number of side roads branching off between villages.
    pub side_roads_per_leg: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for InterurbanConfig {
    fn default() -> Self {
        InterurbanConfig {
            towns: 12,
            town_spacing_m: 9_000.0,
            town_extent_m: 900.0,
            road_curve_amplitude_m: 250.0,
            side_roads_per_leg: 2,
            seed: 0x1A7E_12BA,
        }
    }
}

/// A generated village: the nodes the corridor code needs to attach the
/// trunk road (entering from the west, leaving towards the east) and the
/// centre used as a routing landmark.
struct Town {
    /// Centre node (named `town {i} centre`), used as a routing landmark by
    /// the trace scenarios.
    #[allow(dead_code)]
    center: NodeId,
    west_gate: NodeId,
    east_gate: NodeId,
}

fn add_town(
    b: &mut NetworkBuilder,
    rng: &mut StdRng,
    center: Point,
    extent: f64,
    idx: usize,
) -> Town {
    // A village is a plus-shaped set of streets: a centre node, four edge
    // nodes, and the connecting residential links, plus a ring fragment.
    let c = b.add_named_node(center, format!("town {idx} centre"));
    let half = extent / 2.0;
    let north = b.add_node(jitter(rng, center + Vec2::new(0.0, half), 30.0));
    let south = b.add_node(jitter(rng, center + Vec2::new(0.0, -half), 30.0));
    let east = b.add_node(jitter(rng, center + Vec2::new(half, 0.0), 30.0));
    let west = b.add_node(jitter(rng, center + Vec2::new(-half, 0.0), 30.0));
    for n in [north, south, east, west] {
        b.add_straight_link(c, n, RoadClass::Residential);
    }
    // Two corner streets make the village a small mesh rather than a pure star.
    let ne = b.add_node(jitter(rng, center + Vec2::new(half * 0.8, half * 0.8), 30.0));
    b.add_straight_link(north, ne, RoadClass::Residential);
    b.add_straight_link(east, ne, RoadClass::Residential);
    Town { center: c, west_gate: west, east_gate: east }
}

/// Generates the inter-urban network described by `config`.
pub fn generate(config: &InterurbanConfig) -> RoadNetwork {
    assert!(config.towns >= 2, "an inter-urban corridor needs at least two towns");
    assert!(config.town_spacing_m > config.town_extent_m, "towns would overlap");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetworkBuilder::new();

    // Lay the villages out along a gently wandering corridor heading east.
    let mut heading = std::f64::consts::FRAC_PI_2;
    let mut position = Point::new(0.0, 0.0);
    let mut towns: Vec<Town> = Vec::with_capacity(config.towns);
    for i in 0..config.towns {
        towns.push(add_town(&mut b, &mut rng, position, config.town_extent_m, i));
        heading += rng.gen_range(-0.5..0.5);
        heading =
            heading.clamp(std::f64::consts::FRAC_PI_2 - 0.8, std::f64::consts::FRAC_PI_2 + 0.8);
        position += Vec2::from_heading(heading) * config.town_spacing_m;
    }

    // Country roads between consecutive villages, with curvature and the
    // occasional side road branching off to a dead-end hamlet. The trunk road
    // enters each village at its western gate and leaves at its eastern gate,
    // so a corridor trip has to slow down through every village — that mix of
    // fast country road and slow village passage is what gives the
    // inter-urban scenario its Table 1 character (average 60 km/h, max 116).
    for w in towns.windows(2) {
        let from = w[0].east_gate;
        let to = w[1].west_gate;
        let from_pos = b.node_position(from);
        let to_pos = b.node_position(to);
        let shape =
            curved_shape_points(&mut rng, from_pos, to_pos, 300.0, config.road_curve_amplitude_m);
        let trunk = b.add_link(from, to, shape, RoadClass::Trunk);
        // Not every stretch of country road allows 100 km/h.
        b.set_speed_limit(trunk, rng.gen_range(70.0..100.0_f64).round());

        for _ in 0..config.side_roads_per_leg {
            // Branch from a random point roughly along the leg.
            let t = rng.gen_range(0.25..0.75);
            let branch_origin = from_pos.lerp(&to_pos, t);
            let branch_node = b.add_node(jitter(&mut rng, branch_origin, 40.0));
            // Connect the branch point to the nearer village centre so the
            // network stays connected without touching the trunk geometry.
            let anchor = if t < 0.5 { from } else { to };
            let link = b.add_straight_link(anchor, branch_node, RoadClass::Residential);
            b.set_speed_limit(link, 70.0);
            let hamlet_heading = rng.gen_range(0.0..std::f64::consts::TAU);
            let hamlet = b.add_node(jitter(
                &mut rng,
                branch_origin + Vec2::from_heading(hamlet_heading) * 1_200.0,
                60.0,
            ));
            b.add_straight_link(branch_node, hamlet, RoadClass::Residential);
        }
    }

    b.build().expect("generated inter-urban map must be structurally valid")
}

/// Convenience wrapper with the default configuration and a caller-chosen seed.
pub fn generate_default(seed: u64) -> RoadNetwork {
    generate(&InterurbanConfig { seed, ..InterurbanConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    fn small() -> InterurbanConfig {
        InterurbanConfig { towns: 4, ..InterurbanConfig::default() }
    }

    #[test]
    fn generated_map_validates_and_is_connected() {
        let net = generate(&small());
        assert!(net.validate().is_empty());
        assert!(net.is_connected());
    }

    #[test]
    fn trunk_roads_are_long_and_curved() {
        let net = generate(&small());
        let trunks: Vec<_> = net.links().iter().filter(|l| l.class == RoadClass::Trunk).collect();
        assert_eq!(trunks.len(), 3, "one trunk per consecutive town pair");
        for t in trunks {
            assert!(t.length() >= small().town_spacing_m * 0.7);
            assert!(t.shape_point_count() > 0, "country roads should wind");
            assert!((70.0..=100.0).contains(&t.speed_limit_kmh));
        }
    }

    #[test]
    fn villages_contain_residential_streets() {
        let net = generate(&small());
        let residential = net.links().iter().filter(|l| l.class == RoadClass::Residential).count();
        assert!(residential >= 4 * 6, "each village contributes at least six streets");
    }

    #[test]
    fn corridor_total_length_scales_with_town_count() {
        let small_net = generate(&small());
        let large_net = generate(&InterurbanConfig { towns: 8, ..small() });
        assert!(large_net.total_length() > small_net.total_length() * 1.8);
    }

    #[test]
    fn there_are_decision_points_at_village_centres() {
        let net = generate(&small());
        let stats = NetworkStats::of(&net);
        assert!(stats.decision_nodes >= 4);
    }

    #[test]
    fn determinism_in_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.total_length(), b.total_length());
    }

    #[test]
    #[should_panic(expected = "at least two towns")]
    fn single_town_is_rejected() {
        let _ = generate(&InterurbanConfig { towns: 1, ..InterurbanConfig::default() });
    }
}
