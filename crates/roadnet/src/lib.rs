//! # mbdr-roadnet — the road-map substrate
//!
//! The map-based dead-reckoning protocol needs "information about all
//! available intersections, which are described by a unique identifier and
//! their exact geographical location, and links, which are placed between two
//! such intersections and have again a unique identifier. To be able to model
//! roads more exactly, a link can be divided into a number of sub links by
//! specifying intermediate shape points" (paper, Section 3 / Fig. 4).
//!
//! This crate implements that model and everything the reproduction needs
//! around it:
//!
//! * [`Node`] (intersection), [`Link`] (with shape points, road class, speed
//!   limit) and [`RoadNetwork`] — the graph itself, with adjacency queries
//!   ("outgoing links of this intersection") used by the predictor's
//!   forward-tracking and smallest-angle link choice.
//! * [`NetworkBuilder`] — incremental construction with validation.
//! * [`LinkLocator`] — the spatial index over link geometry used by the map
//!   matcher ("querying a spatial index for the map information").
//! * [`route`] — route representations and Dijkstra routing, used by the trace
//!   generator to plan realistic trips over the map (and by the known-route
//!   dead-reckoning baseline).
//! * [`gen`] — synthetic map generators replacing the commercial navigation
//!   map the authors used: a curving freeway, an inter-urban town network, a
//!   perturbed city grid and a campus footpath network.
//! * [`transition`] — link-to-link transition statistics, feeding the
//!   "map-based with probability information" protocol variant.
//! * [`io`] — a simple line-oriented text format for persisting maps.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builder;
pub mod gen;
pub mod ids;
pub mod io;
pub mod link;
pub mod locator;
pub mod network;
pub mod node;
pub mod route;
pub mod stats;
pub mod transition;

pub use builder::NetworkBuilder;
pub use ids::{LinkId, NodeId};
pub use link::{Link, RoadClass};
pub use locator::{LinkLocator, LinkMatch};
pub use network::RoadNetwork;
pub use node::Node;
pub use route::{Route, Router};
pub use stats::NetworkStats;
pub use transition::TransitionTable;
