//! Routes over the network and shortest-path routing.
//!
//! Two consumers need routes:
//!
//! * the **trace generator** plans a trip (sequence of links) over the map and
//!   then drives a kinematic vehicle model along it;
//! * the **known-route dead-reckoning** baseline (Wolfson et al., discussed in
//!   Section 2 of the paper) assumes the server knows the object's route in
//!   advance and only the speed must be tracked.
//!
//! [`Router`] implements Dijkstra's algorithm over link lengths (optionally
//! weighted by expected travel time).

use crate::ids::{LinkId, NodeId};
use crate::network::RoadNetwork;
use mbdr_geo::Point;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A route: an ordered sequence of nodes and the links connecting them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Visited nodes, in order (one more than `links`).
    pub nodes: Vec<NodeId>,
    /// Traversed links, in order.
    pub links: Vec<LinkId>,
}

impl Route {
    /// An empty route.
    pub fn empty() -> Self {
        Route { nodes: Vec::new(), links: Vec::new() }
    }

    /// Returns `true` if the route contains no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of links in the route.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Total length of the route along link geometry, metres.
    pub fn length(&self, network: &RoadNetwork) -> f64 {
        self.links.iter().map(|&l| network.link(l).length()).sum()
    }

    /// The full geometry of the route as a dense vertex chain, oriented in
    /// travel direction (used by the trace generator to drive along it).
    pub fn path_points(&self, network: &RoadNetwork) -> Vec<Point> {
        let mut out: Vec<Point> = Vec::new();
        for (i, &link_id) in self.links.iter().enumerate() {
            let link = network.link(link_id);
            let entering_at = self.nodes[i];
            let mut verts: Vec<Point> = link.geometry.vertices().to_vec();
            if link.to == entering_at {
                verts.reverse();
            }
            if !out.is_empty() {
                // Skip the duplicated junction vertex.
                verts.remove(0);
            }
            out.extend(verts);
        }
        out
    }

    /// Checks that consecutive links share the intermediate node and that the
    /// node list is consistent; returns `true` for structurally valid routes.
    pub fn is_valid(&self, network: &RoadNetwork) -> bool {
        if self.links.is_empty() {
            return self.nodes.len() <= 1;
        }
        if self.nodes.len() != self.links.len() + 1 {
            return false;
        }
        for (i, &link_id) in self.links.iter().enumerate() {
            let link = network.link(link_id);
            let a = self.nodes[i];
            let b = self.nodes[i + 1];
            if !(link.from == a && link.to == b || link.from == b && link.to == a) {
                return false;
            }
        }
        true
    }
}

/// Edge weight used by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMetric {
    /// Minimise total distance.
    Distance,
    /// Minimise expected travel time at each link's speed limit.
    TravelTime,
}

/// Dijkstra shortest-path router over a [`RoadNetwork`].
#[derive(Debug, Clone)]
pub struct Router<'a> {
    network: &'a RoadNetwork,
    metric: RouteMetric,
}

#[derive(PartialEq)]
struct QueueItem {
    cost: f64,
    node: NodeId,
}

impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest cost first.
        other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

impl<'a> Router<'a> {
    /// Creates a distance-minimising router.
    pub fn new(network: &'a RoadNetwork) -> Self {
        Router { network, metric: RouteMetric::Distance }
    }

    /// Creates a router with an explicit metric.
    pub fn with_metric(network: &'a RoadNetwork, metric: RouteMetric) -> Self {
        Router { network, metric }
    }

    fn link_cost(&self, link: LinkId) -> f64 {
        let l = self.network.link(link);
        match self.metric {
            RouteMetric::Distance => l.length(),
            RouteMetric::TravelTime => l.length() / l.speed_limit_ms().max(0.1),
        }
    }

    /// Shortest route from `start` to `goal`, or `None` if unreachable.
    pub fn route(&self, start: NodeId, goal: NodeId) -> Option<Route> {
        if start == goal {
            return Some(Route { nodes: vec![start], links: Vec::new() });
        }
        let n = self.network.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[start.index()] = 0.0;
        heap.push(QueueItem { cost: 0.0, node: start });

        while let Some(QueueItem { cost, node }) = heap.pop() {
            if node == goal {
                break;
            }
            if cost > dist[node.index()] {
                continue; // stale entry
            }
            for &link_id in self.network.incident_links(node) {
                let Some(next) = self.network.link(link_id).other_end(node) else { continue };
                let next_cost = cost + self.link_cost(link_id);
                if next_cost < dist[next.index()] {
                    dist[next.index()] = next_cost;
                    prev[next.index()] = Some((node, link_id));
                    heap.push(QueueItem { cost: next_cost, node: next });
                }
            }
        }

        if dist[goal.index()].is_infinite() {
            return None;
        }
        // Reconstruct.
        let mut nodes = vec![goal];
        let mut links = Vec::new();
        let mut current = goal;
        while current != start {
            let (p, l) = prev[current.index()].expect("reached node has a predecessor");
            nodes.push(p);
            links.push(l);
            current = p;
        }
        nodes.reverse();
        links.reverse();
        Some(Route { nodes, links })
    }

    /// Cost (metres or seconds, depending on the metric) of the shortest path,
    /// or `None` if unreachable.
    pub fn cost(&self, start: NodeId, goal: NodeId) -> Option<f64> {
        self.route(start, goal).map(|r| match self.metric {
            RouteMetric::Distance => r.length(self.network),
            RouteMetric::TravelTime => r
                .links
                .iter()
                .map(|&l| {
                    let link = self.network.link(l);
                    link.length() / link.speed_limit_ms().max(0.1)
                })
                .sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::link::RoadClass;

    /// A 3×3 grid of nodes with 100 m spacing, all residential streets.
    fn grid3() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::new();
        for j in 0..3 {
            for i in 0..3 {
                ids.push(b.add_node(Point::new(i as f64 * 100.0, j as f64 * 100.0)));
            }
        }
        let at = |i: usize, j: usize| ids[j * 3 + i];
        for j in 0..3 {
            for i in 0..3 {
                if i + 1 < 3 {
                    b.add_straight_link(at(i, j), at(i + 1, j), RoadClass::Residential);
                }
                if j + 1 < 3 {
                    b.add_straight_link(at(i, j), at(i, j + 1), RoadClass::Residential);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn shortest_path_across_the_grid_has_correct_length() {
        let net = grid3();
        let router = Router::new(&net);
        let route = router.route(NodeId(0), NodeId(8)).unwrap();
        assert!(route.is_valid(&net));
        assert_eq!(route.len(), 4);
        assert!((route.length(&net) - 400.0).abs() < 1e-6);
        assert_eq!(route.nodes.first(), Some(&NodeId(0)));
        assert_eq!(route.nodes.last(), Some(&NodeId(8)));
    }

    #[test]
    fn route_to_self_is_empty() {
        let net = grid3();
        let router = Router::new(&net);
        let route = router.route(NodeId(4), NodeId(4)).unwrap();
        assert!(route.is_empty());
        assert!(route.is_valid(&net));
        assert_eq!(route.length(&net), 0.0);
    }

    #[test]
    fn unreachable_goal_returns_none() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(5_000.0, 0.0));
        let e = b.add_node(Point::new(5_100.0, 0.0));
        b.add_straight_link(a, c, RoadClass::Residential);
        b.add_straight_link(d, e, RoadClass::Residential);
        let net = b.build().unwrap();
        assert!(Router::new(&net).route(NodeId(0), NodeId(3)).is_none());
        assert!(Router::new(&net).cost(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn travel_time_metric_prefers_fast_roads() {
        // Two ways from A to B: a direct 1000 m residential street (30 km/h)
        // or a 1400 m detour over a trunk road (100 km/h). Time-wise the
        // detour wins, distance-wise the direct street wins.
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let m = b.add_node(Point::new(700.0, 700.0));
        let z = b.add_node(Point::new(1000.0, 0.0));
        b.add_straight_link(a, z, RoadClass::Residential); // ~1000 m slow
        b.add_straight_link(a, m, RoadClass::Trunk); // ~990 m fast
        b.add_straight_link(m, z, RoadClass::Trunk); // ~762 m fast
        let net = b.build().unwrap();

        let by_distance = Router::new(&net).route(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(by_distance.len(), 1);

        let by_time =
            Router::with_metric(&net, RouteMetric::TravelTime).route(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(by_time.len(), 2, "the fast detour should win on time");
    }

    #[test]
    fn path_points_are_continuous_and_oriented() {
        let net = grid3();
        let router = Router::new(&net);
        let route = router.route(NodeId(0), NodeId(8)).unwrap();
        let pts = route.path_points(&net);
        assert_eq!(*pts.first().unwrap(), net.node(NodeId(0)).position);
        assert_eq!(*pts.last().unwrap(), net.node(NodeId(8)).position);
        // Consecutive points are never farther apart than one grid edge.
        for w in pts.windows(2) {
            assert!(w[0].distance(&w[1]) <= 100.0 + 1e-6);
        }
    }

    #[test]
    fn invalid_route_is_detected() {
        let net = grid3();
        let bogus = Route { nodes: vec![NodeId(0), NodeId(8)], links: vec![LinkId(0)] };
        assert!(!bogus.is_valid(&net));
    }
}
