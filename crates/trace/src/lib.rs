//! # mbdr-trace — movement and sensor simulation
//!
//! The paper evaluates its protocols on four real DGPS traces (Table 1):
//! a car on a freeway, a car in inter-urban traffic, a car in city traffic and
//! a walking person, each recorded at 1 Hz with a differential GPS receiver of
//! 2–5 m accuracy. Those recordings are not available, so this crate generates
//! the closest synthetic equivalent:
//!
//! 1. [`route_plan`] plans a trip of the desired length over a synthetic road
//!    network (from `mbdr-roadnet`),
//! 2. [`motion`] drives a kinematic vehicle/pedestrian model along that trip —
//!    bounded acceleration, curve slow-down, speed limits, stops at
//!    intersections (traffic lights) — producing a ground-truth trajectory,
//! 3. [`gps`] corrupts the ground truth with a correlated (Gauss–Markov) GPS
//!    error of the same magnitude as the paper's DGPS receiver and samples it
//!    at 1 Hz,
//! 4. [`scenarios`] packages map + trip + driver profile into the four
//!    Table 1 presets, and [`stats`] reports the Table 1 characteristics
//!    (length, duration, average/maximum speed) of any trace.
//!
//! What matters for reproducing the update-rate results is the *movement
//! character* — how steady the speed is, how curvy the geometry is, how often
//! intersections force direction changes — which the presets match to the
//! paper's traces. See DESIGN.md for the substitution argument.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod gps;
pub mod motion;
pub mod profile;
pub mod route_plan;
pub mod scenarios;
pub mod stats;
pub mod types;

pub use gps::GpsNoiseModel;
pub use motion::{simulate_motion, MotionConfig};
pub use profile::DriverProfile;
pub use scenarios::{Scenario, ScenarioData, ScenarioKind};
pub use stats::TraceStats;
pub use types::{Fix, GroundTruth, Trace};
