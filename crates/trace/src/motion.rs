//! Kinematic motion simulation along a planned path.
//!
//! Given the dense geometry of a planned trip, a posted-speed-limit profile
//! along it, a list of planned stops and a [`DriverProfile`], this module
//! integrates a simple longitudinal vehicle model:
//!
//! * the object never exceeds the *allowed speed* at its current position —
//!   the minimum of the posted limit (scaled by compliance), the curve speed
//!   implied by the local geometry, and the braking envelope needed to respect
//!   slower sections and stops ahead;
//! * speed changes are bounded by the profile's acceleration and deceleration;
//! * a slowly varying "wander" factor models imperfect speed keeping;
//! * at planned stops the object decelerates to a halt, dwells, then drives on.
//!
//! The output is a ground-truth trajectory sampled at the sensor rate (1 Hz in
//! all of the paper's scenarios); the GPS model in [`crate::gps`] then turns
//! it into sensor fixes.

use crate::profile::DriverProfile;
use crate::types::GroundTruth;
use mbdr_geo::Polyline;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planned stop along the path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedStop {
    /// Arc length along the path at which the object stops, metres.
    pub arc_length: f64,
    /// How long it stays stopped, seconds.
    pub duration: f64,
}

/// A change of the posted speed limit along the path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedLimitChange {
    /// Arc length at which this limit starts to apply, metres.
    pub from_arc_length: f64,
    /// Posted limit from that point on, m/s.
    pub limit: f64,
}

/// Configuration of the motion integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionConfig {
    /// Interval between recorded ground-truth samples, seconds (the paper's
    /// sensors report once per second).
    pub sample_interval: f64,
    /// Internal integration step, seconds (smaller than the sample interval
    /// for numerical fidelity).
    pub integration_step: f64,
    /// Initial speed at the start of the path, m/s.
    pub initial_speed: f64,
    /// Spatial resolution of the precomputed speed profile, metres.
    pub speed_profile_resolution: f64,
    /// Random seed for the speed wander.
    pub seed: u64,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            sample_interval: 1.0,
            integration_step: 0.2,
            initial_speed: 0.0,
            speed_profile_resolution: 10.0,
            seed: 0x4071_0717,
        }
    }
}

/// Simulates the motion of an object along `path` and returns the ground-truth
/// trajectory sampled every [`MotionConfig::sample_interval`] seconds.
///
/// `speed_limits` must be sorted by `from_arc_length` and cover the start of
/// the path (an entry with `from_arc_length == 0.0`); `stops` must be sorted
/// by arc length.
pub fn simulate_motion(
    path: &Polyline,
    speed_limits: &[SpeedLimitChange],
    stops: &[PlannedStop],
    profile: &DriverProfile,
    config: &MotionConfig,
) -> Vec<GroundTruth> {
    assert!(config.sample_interval > 0.0 && config.integration_step > 0.0);
    assert!(
        !speed_limits.is_empty() && speed_limits[0].from_arc_length <= 0.0,
        "speed limits must cover the start of the path"
    );
    debug_assert!(
        speed_limits.windows(2).all(|w| w[0].from_arc_length <= w[1].from_arc_length),
        "speed limits must be sorted"
    );
    debug_assert!(
        stops.windows(2).all(|w| w[0].arc_length <= w[1].arc_length),
        "stops must be sorted"
    );

    let total = path.length();
    let allowed = AllowedSpeedProfile::build(path, speed_limits, profile, config);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut samples = Vec::new();
    let mut s = 0.0_f64; // arc length travelled
    let mut v = config.initial_speed.min(allowed.at(0.0));
    let mut t = 0.0_f64;
    let mut next_sample_t = 0.0_f64;
    let mut stop_queue: Vec<PlannedStop> = stops.to_vec();
    let mut dwell_remaining = 0.0_f64;
    // Slowly varying multiplicative speed wander in [1-w, 1+w].
    let mut wander = 1.0_f64;

    let dt = config.integration_step;
    // Hard cap on simulated time to guarantee termination even with
    // pathological inputs (e.g. a zero allowed speed everywhere).
    let max_time = 3600.0 * 24.0;

    while s < total - 0.5 && t < max_time {
        // Record a sample when due.
        if t + 1e-9 >= next_sample_t {
            // One binary search for position and heading together.
            let (position, direction) = path.sample_at_arc_length(s);
            samples.push(GroundTruth { t, position, speed: v, heading: direction.heading() });
            next_sample_t += config.sample_interval;
        }

        if dwell_remaining > 0.0 {
            dwell_remaining -= dt;
            v = 0.0;
            t += dt;
            continue;
        }

        // Update the wander factor with a bounded random walk.
        let w = profile.speed_wander;
        if w > 0.0 {
            wander += rng.gen_range(-0.02..0.02);
            wander = wander.clamp(1.0 - w, 1.0 + w);
        }

        // Allowed speed here, including braking for the next stop ahead.
        let mut target = allowed.at(s) * wander;
        if let Some(stop) = stop_queue.first() {
            let dist = (stop.arc_length - s).max(0.0);
            let brake_limit = (2.0 * profile.max_deceleration * dist).sqrt();
            target = target.min(brake_limit);
            // Arrived at the stop point (within half a metre or crawling).
            if dist < 0.5 || (dist < 3.0 && v < 0.3) {
                dwell_remaining = stop.duration;
                stop_queue.remove(0);
                v = 0.0;
                t += dt;
                continue;
            }
        }

        // Accelerate / decelerate towards the target with bounded rates.
        if v < target {
            v = (v + profile.max_acceleration * dt).min(target);
        } else {
            v = (v - profile.max_deceleration * dt).max(target.max(0.0));
        }
        // Never move backwards; always make minimal progress so the loop
        // terminates even if the allowed speed collapses to zero.
        v = v.max(0.0);
        s += v.max(0.05) * dt;
        t += dt;
    }

    // Final sample at the end of the path, kept on the sampling grid: the
    // object has arrived, and the arrival is recorded at the next due sample
    // instant so consecutive samples always stay `sample_interval` apart.
    let (position, direction) = path.sample_at_arc_length(total);
    samples.push(GroundTruth {
        t: next_sample_t,
        position,
        speed: v,
        heading: direction.heading(),
    });
    samples
}

/// Precomputed allowed-speed profile along the path: posted limits, curve
/// speeds and a backward braking pass.
struct AllowedSpeedProfile {
    resolution: f64,
    values: Vec<f64>,
}

impl AllowedSpeedProfile {
    fn build(
        path: &Polyline,
        speed_limits: &[SpeedLimitChange],
        profile: &DriverProfile,
        config: &MotionConfig,
    ) -> Self {
        let total = path.length();
        let resolution = config.speed_profile_resolution.max(1.0);
        let n = (total / resolution).ceil() as usize + 1;
        let mut values = vec![profile.max_speed; n];

        // Posted limits and curve speeds.
        for (i, value) in values.iter_mut().enumerate() {
            let s = (i as f64 * resolution).min(total);
            let posted = posted_limit_at(speed_limits, s);
            let curve = profile.curve_speed(curve_radius_at(path, s, resolution));
            *value = profile.cruise_speed(posted).min(curve);
        }
        // The object must be able to stop by the end of the path.
        if let Some(last) = values.last_mut() {
            *last = 0.0;
        }
        // Backward pass: braking envelope so slow sections are approached at a
        // speed from which they can be reached with comfortable deceleration.
        for i in (0..n.saturating_sub(1)).rev() {
            let reachable =
                (values[i + 1].powi(2) + 2.0 * profile.max_deceleration * resolution).sqrt();
            values[i] = values[i].min(reachable);
        }
        AllowedSpeedProfile { resolution, values }
    }

    fn at(&self, s: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = ((s / self.resolution) as usize).min(self.values.len() - 1);
        self.values[idx]
    }
}

fn posted_limit_at(speed_limits: &[SpeedLimitChange], s: f64) -> f64 {
    let mut limit = speed_limits.first().map(|c| c.limit).unwrap_or(f64::INFINITY);
    for change in speed_limits {
        if change.from_arc_length <= s {
            limit = change.limit;
        } else {
            break;
        }
    }
    limit
}

/// Estimates the local curve radius at arc length `s` from the heading change
/// over a window of ±`ds` metres. Straight geometry returns infinity.
fn curve_radius_at(path: &Polyline, s: f64, ds: f64) -> f64 {
    let total = path.length();
    let a = (s - ds).max(0.0);
    let b = (s + ds).min(total);
    if b - a < 1e-6 {
        return f64::INFINITY;
    }
    let ha = path.heading_at_arc_length(a);
    let hb = path.heading_at_arc_length(b);
    let dtheta = mbdr_geo::angle_between(ha, hb);
    if dtheta < 1e-4 {
        f64::INFINITY
    } else {
        (b - a) / dtheta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_geo::{kmh_to_ms, ms_to_kmh, Point};

    fn straight_path(length: f64) -> Polyline {
        Polyline::straight(Point::new(0.0, 0.0), Point::new(length, 0.0))
    }

    fn config(seed: u64) -> MotionConfig {
        MotionConfig { seed, ..MotionConfig::default() }
    }

    #[test]
    fn object_reaches_the_end_of_the_path() {
        let path = straight_path(2_000.0);
        let limits = [SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(50.0) }];
        let truth = simulate_motion(&path, &limits, &[], &DriverProfile::city_car(), &config(1));
        assert!(truth.len() > 10);
        let last = truth.last().unwrap();
        assert!(last.position.distance(&Point::new(2_000.0, 0.0)) < 5.0);
        // Time stamps strictly increase and start at 0.
        assert_eq!(truth[0].t, 0.0);
        assert!(truth.windows(2).all(|w| w[1].t > w[0].t));
    }

    #[test]
    fn speed_respects_the_posted_limit_and_compliance() {
        let path = straight_path(5_000.0);
        let limits = [SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(50.0) }];
        let profile = DriverProfile::city_car();
        let truth = simulate_motion(&path, &limits, &[], &profile, &config(2));
        let max_v = truth.iter().map(|g| g.speed).fold(0.0, f64::max);
        // Compliance 1.05 plus wander 0.12 → at most ~1.18 × the limit.
        assert!(ms_to_kmh(max_v) < 50.0 * 1.2, "max speed {} km/h", ms_to_kmh(max_v));
        assert!(ms_to_kmh(max_v) > 35.0, "should get close to the limit");
    }

    #[test]
    fn acceleration_is_bounded() {
        let path = straight_path(3_000.0);
        let limits = [SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(100.0) }];
        let profile = DriverProfile::interurban_car();
        let truth = simulate_motion(&path, &limits, &[], &profile, &config(3));
        for w in truth.windows(2) {
            let dv = w[1].speed - w[0].speed;
            let dt = w[1].t - w[0].t;
            assert!(dv / dt <= profile.max_acceleration + 0.3, "accel {} too high", dv / dt);
            assert!(-dv / dt <= profile.max_deceleration + 0.3, "decel {} too high", -dv / dt);
        }
    }

    #[test]
    fn planned_stop_brings_the_object_to_a_halt() {
        let path = straight_path(2_000.0);
        let limits = [SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(50.0) }];
        let stops = [PlannedStop { arc_length: 1_000.0, duration: 30.0 }];
        let truth = simulate_motion(&path, &limits, &stops, &DriverProfile::city_car(), &config(4));
        // There must be a contiguous stretch of ≥ 20 s with (near-)zero speed
        // around the stop point.
        let stopped: Vec<&GroundTruth> = truth.iter().filter(|g| g.speed < 0.2).collect();
        assert!(stopped.len() as f64 >= 20.0, "only {} stopped samples", stopped.len());
        let stop_pos = Point::new(1_000.0, 0.0);
        assert!(stopped.iter().any(|g| g.position.distance(&stop_pos) < 20.0));
        // And the object still reaches the end afterwards.
        assert!(truth.last().unwrap().position.x > 1_990.0);
    }

    #[test]
    fn curves_slow_the_object_down() {
        // A path with a tight 90° corner: straight 1 km, corner of ~30 m
        // radius approximated by vertices, straight 1 km.
        let mut vertices = vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)];
        for i in 1..=8 {
            let angle = std::f64::consts::FRAC_PI_2 * i as f64 / 8.0;
            vertices.push(Point::new(1_000.0 + 30.0 * angle.sin(), 30.0 - 30.0 * angle.cos()));
        }
        vertices.push(Point::new(1_030.0, 1_030.0));
        let path = Polyline::new(vertices);
        let limits = [SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(100.0) }];
        let profile = DriverProfile::interurban_car();
        let truth = simulate_motion(&path, &limits, &[], &profile, &config(5));
        // Speed in the corner region must be well below the cruise speed.
        let corner_speed = truth
            .iter()
            .filter(|g| g.position.x > 990.0 && g.position.y < 60.0 && g.position.y > 5.0)
            .map(|g| g.speed)
            .fold(f64::INFINITY, f64::min);
        let cruise = truth.iter().map(|g| g.speed).fold(0.0, f64::max);
        assert!(corner_speed < cruise * 0.6, "corner {corner_speed} vs cruise {cruise}");
    }

    #[test]
    fn sampling_interval_is_respected() {
        let path = straight_path(1_000.0);
        let limits = [SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(30.0) }];
        let truth = simulate_motion(&path, &limits, &[], &DriverProfile::city_car(), &config(6));
        for w in truth.windows(2) {
            let dt = w[1].t - w[0].t;
            assert!((0.99..=1.3).contains(&dt), "sample spacing {dt}");
        }
    }

    #[test]
    fn determinism_in_seed() {
        let path = straight_path(2_000.0);
        let limits = [SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(70.0) }];
        let a = simulate_motion(&path, &limits, &[], &DriverProfile::interurban_car(), &config(9));
        let b = simulate_motion(&path, &limits, &[], &DriverProfile::interurban_car(), &config(9));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.first(), b.first());
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn speed_limit_changes_take_effect_along_the_path() {
        let path = straight_path(4_000.0);
        let limits = [
            SpeedLimitChange { from_arc_length: 0.0, limit: kmh_to_ms(100.0) },
            SpeedLimitChange { from_arc_length: 2_000.0, limit: kmh_to_ms(30.0) },
        ];
        let profile = DriverProfile::interurban_car();
        let truth = simulate_motion(&path, &limits, &[], &profile, &config(10));
        let fast_zone_max = truth
            .iter()
            .filter(|g| g.position.x > 500.0 && g.position.x < 1_500.0)
            .map(|g| g.speed)
            .fold(0.0, f64::max);
        let slow_zone_max = truth
            .iter()
            .filter(|g| g.position.x > 2_500.0 && g.position.x < 3_500.0)
            .map(|g| g.speed)
            .fold(0.0, f64::max);
        assert!(fast_zone_max > slow_zone_max * 1.5, "{fast_zone_max} vs {slow_zone_max}");
        assert!(ms_to_kmh(slow_zone_max) < 40.0);
    }

    #[test]
    #[should_panic(expected = "cover the start")]
    fn missing_speed_limit_at_start_is_rejected() {
        let path = straight_path(100.0);
        let limits = [SpeedLimitChange { from_arc_length: 50.0, limit: 10.0 }];
        let _ = simulate_motion(&path, &limits, &[], &DriverProfile::city_car(), &config(1));
    }
}
