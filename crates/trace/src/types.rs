//! Trace data types: ground-truth samples, sensor fixes and whole traces.

use mbdr_geo::Point;
use serde::{Deserialize, Serialize};

/// One ground-truth sample of the simulated object's state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Simulation time, seconds since the start of the trace.
    pub t: f64,
    /// True position in the local metric frame.
    pub position: Point,
    /// True scalar speed, m/s.
    pub speed: f64,
    /// True heading, radians clockwise from north.
    pub heading: f64,
}

/// One positioning-sensor output ("sighting"): what the paper's source reads
/// from its GPS receiver once per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fix {
    /// Timestamp, seconds since the start of the trace.
    pub t: f64,
    /// Sensed position (ground truth plus sensor error).
    pub position: Point,
    /// 1-σ horizontal accuracy of the sensor at this fix, metres
    /// (the paper's `u_p`).
    pub accuracy: f64,
}

/// A complete simulated trace: the noisy sensor fixes the protocols consume
/// and the ground truth the evaluation measures deviations against.
///
/// `fixes[i]` and `ground_truth[i]` always refer to the same instant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Sensor outputs at the sampling rate (1 Hz in all paper scenarios).
    pub fixes: Vec<Fix>,
    /// True object states at the same instants.
    pub ground_truth: Vec<GroundTruth>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.fixes.len()
    }

    /// Returns `true` if the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.fixes.is_empty()
    }

    /// Duration of the trace in seconds (0 for traces with fewer than two
    /// samples).
    pub fn duration(&self) -> f64 {
        match (self.fixes.first(), self.fixes.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Total ground-truth path length in metres.
    pub fn path_length(&self) -> f64 {
        self.ground_truth.windows(2).map(|w| w[0].position.distance(&w[1].position)).sum()
    }

    /// Appends a sample pair, keeping the two streams aligned.
    pub fn push(&mut self, truth: GroundTruth, fix: Fix) {
        debug_assert!((truth.t - fix.t).abs() < 1e-9, "fix and truth must share a timestamp");
        self.ground_truth.push(truth);
        self.fixes.push(fix);
    }

    /// The ground-truth position at time `t`, linearly interpolated between
    /// the surrounding samples (clamped to the trace's time span). Returns
    /// `None` for an empty trace.
    ///
    /// The protocol evaluation calls this to measure the *actual* deviation of
    /// the server's predicted position at arbitrary instants.
    pub fn true_position_at(&self, t: f64) -> Option<Point> {
        let first = self.ground_truth.first()?;
        let last = self.ground_truth.last()?;
        if t <= first.t {
            return Some(first.position);
        }
        if t >= last.t {
            return Some(last.position);
        }
        // Binary search for the sample interval containing t.
        let idx = self.ground_truth.partition_point(|g| g.t <= t).saturating_sub(1);
        let a = &self.ground_truth[idx];
        let b = &self.ground_truth[(idx + 1).min(self.ground_truth.len() - 1)];
        if (b.t - a.t).abs() < 1e-12 {
            return Some(a.position);
        }
        let frac = (t - a.t) / (b.t - a.t);
        Some(a.position.lerp(&b.position, frac))
    }

    /// A sub-trace containing only samples with `t < cutoff` (used in tests).
    pub fn truncated(&self, cutoff: f64) -> Trace {
        let n = self.fixes.partition_point(|f| f.t < cutoff);
        Trace { fixes: self.fixes[..n].to_vec(), ground_truth: self.ground_truth[..n].to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_trace(n: usize) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let time = i as f64;
            let pos = Point::new(10.0 * i as f64, 0.0);
            t.push(
                GroundTruth {
                    t: time,
                    position: pos,
                    speed: 10.0,
                    heading: std::f64::consts::FRAC_PI_2,
                },
                Fix { t: time, position: pos, accuracy: 3.0 },
            );
        }
        t
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.path_length(), 0.0);
        assert!(t.true_position_at(5.0).is_none());
    }

    #[test]
    fn duration_and_length_of_straight_trace() {
        let t = straight_trace(11);
        assert_eq!(t.len(), 11);
        assert!((t.duration() - 10.0).abs() < 1e-9);
        assert!((t.path_length() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn true_position_interpolates_between_samples() {
        let t = straight_trace(5);
        let p = t.true_position_at(1.5).unwrap();
        assert!((p.x - 15.0).abs() < 1e-9);
        // Clamped outside the span.
        assert_eq!(t.true_position_at(-3.0).unwrap(), Point::new(0.0, 0.0));
        assert_eq!(t.true_position_at(99.0).unwrap(), Point::new(40.0, 0.0));
    }

    #[test]
    fn truncated_keeps_only_earlier_samples() {
        let t = straight_trace(10);
        let cut = t.truncated(4.5);
        assert_eq!(cut.len(), 5);
        assert!(cut.fixes.iter().all(|f| f.t < 4.5));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn mismatched_timestamps_are_rejected_in_debug() {
        let mut t = Trace::new();
        t.push(
            GroundTruth { t: 0.0, position: Point::ORIGIN, speed: 0.0, heading: 0.0 },
            Fix { t: 1.0, position: Point::ORIGIN, accuracy: 3.0 },
        );
    }
}
