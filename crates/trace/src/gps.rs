//! GPS sensor error model.
//!
//! The paper's traces were recorded with a Differential GPS receiver "which
//! has an accuracy of 2–5 m", written to a file once per second. GPS error is
//! not white noise: consecutive fixes share most of their error because the
//! dominant terms (atmospheric delay, ephemeris error, multipath geometry)
//! change slowly. [`GpsNoiseModel`] therefore uses a first-order Gauss–Markov
//! process per axis: exponentially correlated noise with a configurable
//! standard deviation and correlation time, plus a small white jitter.

use mbdr_geo::{Point, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First-order Gauss–Markov GPS error model.
#[derive(Debug, Clone)]
pub struct GpsNoiseModel {
    /// Standard deviation of the correlated error component per axis, metres.
    sigma: f64,
    /// Correlation time constant of the error process, seconds.
    correlation_time: f64,
    /// Standard deviation of the additional white jitter per axis, metres.
    white_sigma: f64,
    /// Current correlated error state.
    state: Vec2,
    rng: StdRng,
}

impl GpsNoiseModel {
    /// Creates a model with explicit parameters.
    pub fn new(sigma: f64, correlation_time: f64, white_sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0 && white_sigma >= 0.0);
        assert!(correlation_time > 0.0);
        GpsNoiseModel {
            sigma,
            correlation_time,
            white_sigma,
            state: Vec2::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The model matching the paper's DGPS receiver: ~2–5 m accuracy. We use a
    /// 2.5 m 1-σ correlated component with a 60 s correlation time plus 0.8 m
    /// white jitter, which keeps ~95 % of fixes within 5 m of the truth.
    pub fn dgps(seed: u64) -> Self {
        GpsNoiseModel::new(2.5, 60.0, 0.8, seed)
    }

    /// A perfect sensor (zero error) — useful in tests and for isolating
    /// protocol behaviour from sensor behaviour in ablations.
    pub fn perfect(seed: u64) -> Self {
        GpsNoiseModel::new(0.0, 1.0, 0.0, seed)
    }

    /// A deliberately poor, uncorrected-GPS-like sensor (~10 m 1-σ), used by
    /// the sensitivity ablation.
    pub fn uncorrected_gps(seed: u64) -> Self {
        GpsNoiseModel::new(10.0, 90.0, 2.0, seed)
    }

    /// The nominal 1-σ horizontal accuracy reported alongside each fix
    /// (combined correlated + white components).
    pub fn nominal_accuracy(&self) -> f64 {
        (self.sigma.powi(2) + self.white_sigma.powi(2)).sqrt()
    }

    /// Advances the error process by `dt` seconds and returns the noisy
    /// observation of `true_position`.
    pub fn observe(&mut self, true_position: Point, dt: f64) -> Point {
        debug_assert!(dt >= 0.0);
        // Gauss–Markov update: x' = a·x + sqrt(1-a²)·σ·w, a = exp(-dt/τ).
        let a = (-dt / self.correlation_time).exp();
        let drive = self.sigma * (1.0 - a * a).max(0.0).sqrt();
        self.state = Vec2::new(
            a * self.state.x + drive * self.sample_standard_normal(),
            a * self.state.y + drive * self.sample_standard_normal(),
        );
        let white = Vec2::new(
            self.white_sigma * self.sample_standard_normal(),
            self.white_sigma * self.sample_standard_normal(),
        );
        true_position + self.state + white
    }

    /// Standard normal variate via Box–Muller (avoids a dependency on
    /// `rand_distr`, which is not in the sanctioned crate set).
    fn sample_standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_sensor_reports_the_truth() {
        let mut m = GpsNoiseModel::perfect(1);
        let p = Point::new(100.0, 200.0);
        for _ in 0..10 {
            assert!(m.observe(p, 1.0).distance(&p) < 1e-9);
        }
        assert_eq!(m.nominal_accuracy(), 0.0);
    }

    #[test]
    fn dgps_errors_have_the_right_magnitude() {
        let mut m = GpsNoiseModel::dgps(42);
        let p = Point::new(0.0, 0.0);
        let mut errors = Vec::new();
        for _ in 0..2_000 {
            errors.push(m.observe(p, 1.0).distance(&p));
        }
        let mean: f64 = errors.iter().sum::<f64>() / errors.len() as f64;
        let max = errors.iter().cloned().fold(0.0, f64::max);
        // Mean radial error of a ~2.6 m per-axis process is ~3.3 m; allow a
        // generous band.
        assert!((1.5..6.0).contains(&mean), "mean error {mean}");
        assert!(max < 20.0, "max error {max}");
    }

    #[test]
    fn consecutive_errors_are_correlated() {
        let mut m = GpsNoiseModel::new(5.0, 120.0, 0.0, 7);
        let p = Point::ORIGIN;
        let mut prev = m.observe(p, 1.0);
        let mut step_sizes = Vec::new();
        let mut magnitudes = Vec::new();
        for _ in 0..500 {
            let next = m.observe(p, 1.0);
            step_sizes.push(prev.distance(&next));
            magnitudes.push(next.distance(&p));
            prev = next;
        }
        let mean_step: f64 = step_sizes.iter().sum::<f64>() / step_sizes.len() as f64;
        let mean_mag: f64 = magnitudes.iter().sum::<f64>() / magnitudes.len() as f64;
        // With a 120 s correlation time the second-to-second movement of the
        // error is much smaller than the error itself.
        assert!(mean_step < mean_mag * 0.5, "step {mean_step} vs magnitude {mean_mag}");
    }

    #[test]
    fn same_seed_reproduces_the_same_noise() {
        let mut a = GpsNoiseModel::dgps(5);
        let mut b = GpsNoiseModel::dgps(5);
        for i in 0..50 {
            let p = Point::new(i as f64, 2.0 * i as f64);
            assert_eq!(a.observe(p, 1.0), b.observe(p, 1.0));
        }
    }

    #[test]
    fn nominal_accuracy_combines_components() {
        let m = GpsNoiseModel::new(3.0, 30.0, 4.0, 1);
        assert!((m.nominal_accuracy() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_positive_correlation_time_is_rejected() {
        let _ = GpsNoiseModel::new(1.0, 0.0, 0.0, 1);
    }
}
