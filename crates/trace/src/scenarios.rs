//! The four evaluation scenarios of the paper (Table 1), as reproducible
//! presets.
//!
//! | scenario      | paper trace                    | synthetic map        |
//! |---------------|--------------------------------|----------------------|
//! | freeway       | 163 km, 1:35 h, avg 103 km/h   | curving freeway      |
//! | inter-urban   |  99 km, 1:39 h, avg  60 km/h   | towns + country road |
//! | city          |  89 km, 2:25 h, avg  34 km/h   | perturbed grid       |
//! | walking       |  10 km, 2:08 h, avg 4.6 km/h   | campus footpaths     |
//!
//! Each scenario also fixes the speed/direction interpolation window the paper
//! found optimal (2 fixes on the freeway, 4 in inter-urban and city traffic,
//! 8 when walking) and the map-matching tolerance `u_m`.

use crate::gps::GpsNoiseModel;
use crate::motion::{simulate_motion, MotionConfig};
use crate::profile::DriverProfile;
use crate::route_plan::{
    find_named_node, plan_freeway_traversal, plan_wandering_route, trip_from_route, PlannedTrip,
};
use crate::types::{Fix, Trace};
use mbdr_roadnet::gen::{campus, city_grid, freeway, interurban};
use mbdr_roadnet::{NodeId, RoadNetwork, Router};
use serde::{Deserialize, Serialize};

/// Which of the paper's four movement patterns to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Car on a freeway (Fig. 7).
    Freeway,
    /// Car in inter-urban traffic (Fig. 8).
    Interurban,
    /// Car in city traffic (Fig. 9).
    City,
    /// Walking person (Fig. 10).
    Walking,
}

impl ScenarioKind {
    /// All four scenarios in the order the paper presents them.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Freeway,
        ScenarioKind::Interurban,
        ScenarioKind::City,
        ScenarioKind::Walking,
    ];

    /// Human-readable name matching the paper's Table 1 rows.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Freeway => "car, freeway",
            ScenarioKind::Interurban => "car, inter-urban",
            ScenarioKind::City => "car, city traffic",
            ScenarioKind::Walking => "walking person",
        }
    }

    /// Target trip length of the paper's trace for this scenario, metres.
    pub fn paper_length_m(self) -> f64 {
        match self {
            ScenarioKind::Freeway => 163_000.0,
            ScenarioKind::Interurban => 99_000.0,
            ScenarioKind::City => 89_000.0,
            ScenarioKind::Walking => 10_000.0,
        }
    }

    /// Number of consecutive position fixes from which speed and direction are
    /// interpolated in this scenario (paper, Section 4).
    pub fn interpolation_window(self) -> usize {
        match self {
            ScenarioKind::Freeway => 2,
            ScenarioKind::Interurban | ScenarioKind::City => 4,
            ScenarioKind::Walking => 8,
        }
    }

    /// The accuracy values `u_s` (metres) swept in the paper's figures for
    /// this scenario: 20–500 m for cars, 20–250 m for the walking person.
    pub fn accuracy_sweep(self) -> Vec<f64> {
        match self {
            ScenarioKind::Walking => vec![20.0, 50.0, 100.0, 150.0, 200.0, 250.0],
            _ => vec![20.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0],
        }
    }

    /// Driver/pedestrian behaviour profile for this scenario.
    pub fn profile(self) -> DriverProfile {
        match self {
            ScenarioKind::Freeway => DriverProfile::freeway_car(),
            ScenarioKind::Interurban => DriverProfile::interurban_car(),
            ScenarioKind::City => DriverProfile::city_car(),
            ScenarioKind::Walking => DriverProfile::pedestrian(),
        }
    }

    /// Map-matching tolerance `u_m` for this scenario, metres.
    pub fn matching_tolerance(self) -> f64 {
        match self {
            // Walking speeds are low and paths narrow; a tighter tolerance
            // avoids matching to parallel paths.
            ScenarioKind::Walking => 20.0,
            _ => 30.0,
        }
    }
}

/// A scenario specification: which pattern, at what scale, with which seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Movement pattern.
    pub kind: ScenarioKind,
    /// Fraction of the paper's trace length to simulate (1.0 = full length).
    /// Smaller scales are used in unit tests and smoke runs.
    pub scale: f64,
    /// Random seed controlling map generation, trip planning, stops and GPS
    /// noise.
    pub seed: u64,
}

impl Scenario {
    /// Full-scale scenario as evaluated in the paper.
    pub fn full(kind: ScenarioKind, seed: u64) -> Self {
        Scenario { kind, scale: 1.0, seed }
    }

    /// A reduced-scale scenario for fast tests (≈ 10 % of the paper length).
    pub fn quick(kind: ScenarioKind, seed: u64) -> Self {
        Scenario { kind, scale: 0.1, seed }
    }

    /// Generates the map, plans the trip and simulates the trace.
    pub fn build(&self) -> ScenarioData {
        assert!(self.scale > 0.0 && self.scale <= 1.0, "scale must be in (0, 1]");
        let kind = self.kind;
        let target_length = kind.paper_length_m() * self.scale;

        let (network, route) = match kind {
            ScenarioKind::Freeway => {
                let net = freeway::generate(&freeway::FreewayConfig {
                    total_length_m: target_length * 1.05 + 5_000.0,
                    seed: self.seed,
                    ..freeway::FreewayConfig::default()
                });
                let route = plan_freeway_traversal(&net);
                (net, route)
            }
            ScenarioKind::Interurban => {
                // Enough towns that the corridor covers the target length.
                let cfg = interurban::InterurbanConfig {
                    towns: ((target_length / 9_000.0).ceil() as usize + 1).max(2),
                    seed: self.seed,
                    ..interurban::InterurbanConfig::default()
                };
                let net = interurban::generate(&cfg);
                let start = find_named_node(&net, "town 0 centre").expect("town 0 exists");
                let goal = find_named_node(&net, &format!("town {} centre", cfg.towns - 1))
                    .expect("last town exists");
                let route = Router::new(&net).route(start, goal).expect("corridor is connected");
                (net, route)
            }
            ScenarioKind::City => {
                let net = city_grid::generate(&city_grid::CityConfig {
                    seed: self.seed,
                    ..city_grid::CityConfig::default()
                });
                let route = plan_wandering_route(&net, NodeId(0), target_length, self.seed ^ 0x51);
                (net, route)
            }
            ScenarioKind::Walking => {
                let net = campus::generate(&campus::CampusConfig {
                    seed: self.seed,
                    ..campus::CampusConfig::default()
                });
                let route = plan_wandering_route(&net, NodeId(0), target_length, self.seed ^ 0x52);
                (net, route)
            }
        };

        let profile = kind.profile();
        let trip = trip_from_route(&network, route, &profile, self.seed ^ 0x7);
        let truth = simulate_motion(
            &trip.path,
            &trip.speed_limits,
            &trip.stops,
            &profile,
            &MotionConfig { seed: self.seed ^ 0x9, ..MotionConfig::default() },
        );

        // Corrupt the ground truth with the DGPS error model, 1 Hz.
        let mut gps = GpsNoiseModel::dgps(self.seed ^ 0xB);
        let accuracy = gps.nominal_accuracy();
        let mut trace = Trace::new();
        let mut prev_t = None;
        for g in truth {
            let dt = prev_t.map(|p| g.t - p).unwrap_or(1.0);
            prev_t = Some(g.t);
            let sensed = gps.observe(g.position, dt);
            trace.push(g, Fix { t: g.t, position: sensed, accuracy });
        }

        ScenarioData {
            scenario: *self,
            network,
            trip,
            trace,
            interpolation_window: kind.interpolation_window(),
            matching_tolerance: kind.matching_tolerance(),
        }
    }
}

/// Everything a protocol evaluation needs for one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// The scenario specification this data was built from.
    pub scenario: Scenario,
    /// The synthetic road map.
    pub network: RoadNetwork,
    /// The planned trip (route, geometry, limits, stops).
    pub trip: PlannedTrip,
    /// The simulated trace (sensor fixes + ground truth).
    pub trace: Trace,
    /// Speed/direction interpolation window (number of fixes).
    pub interpolation_window: usize,
    /// Map-matching tolerance `u_m`, metres.
    pub matching_tolerance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_geo::ms_to_kmh;

    fn check_scenario(kind: ScenarioKind, min_avg_kmh: f64, max_avg_kmh: f64) {
        let data = Scenario::quick(kind, 11).build();
        assert!(!data.trace.is_empty());
        assert!(data.trace.len() > 100, "trace should span minutes, got {}", data.trace.len());
        // Ground truth path length is close to the planned trip length.
        let planned = data.trip.length();
        let travelled = data.trace.path_length();
        assert!(
            (travelled - planned).abs() / planned < 0.2,
            "{kind:?}: travelled {travelled} planned {planned}"
        );
        // Average speed in the right ballpark.
        let avg_kmh = ms_to_kmh(travelled / data.trace.duration());
        assert!(
            (min_avg_kmh..max_avg_kmh).contains(&avg_kmh),
            "{kind:?}: average speed {avg_kmh} km/h"
        );
        // GPS fixes stay near the ground truth (DGPS-grade error).
        let max_err = data
            .trace
            .fixes
            .iter()
            .zip(data.trace.ground_truth.iter())
            .map(|(f, g)| f.position.distance(&g.position))
            .fold(0.0, f64::max);
        assert!(max_err < 25.0, "{kind:?}: max GPS error {max_err} m");
    }

    #[test]
    fn freeway_scenario_has_freeway_speeds() {
        check_scenario(ScenarioKind::Freeway, 70.0, 145.0);
    }

    #[test]
    fn interurban_scenario_has_interurban_speeds() {
        check_scenario(ScenarioKind::Interurban, 35.0, 95.0);
    }

    #[test]
    fn city_scenario_has_city_speeds() {
        check_scenario(ScenarioKind::City, 15.0, 55.0);
    }

    #[test]
    fn walking_scenario_has_walking_speeds() {
        check_scenario(ScenarioKind::Walking, 2.0, 7.0);
    }

    #[test]
    fn interpolation_windows_match_the_paper() {
        assert_eq!(ScenarioKind::Freeway.interpolation_window(), 2);
        assert_eq!(ScenarioKind::Interurban.interpolation_window(), 4);
        assert_eq!(ScenarioKind::City.interpolation_window(), 4);
        assert_eq!(ScenarioKind::Walking.interpolation_window(), 8);
    }

    #[test]
    fn accuracy_sweeps_match_the_paper_ranges() {
        for kind in ScenarioKind::ALL {
            let sweep = kind.accuracy_sweep();
            assert_eq!(*sweep.first().unwrap(), 20.0);
            let max = *sweep.last().unwrap();
            if kind == ScenarioKind::Walking {
                assert_eq!(max, 250.0);
            } else {
                assert_eq!(max, 500.0);
            }
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn scenario_builds_are_deterministic() {
        let a = Scenario::quick(ScenarioKind::City, 3).build();
        let b = Scenario::quick(ScenarioKind::City, 3).build();
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.trace.fixes.first(), b.trace.fixes.first());
        assert_eq!(a.trace.fixes.last(), b.trace.fixes.last());
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_is_rejected() {
        let _ = Scenario { kind: ScenarioKind::City, scale: 0.0, seed: 1 }.build();
    }
}
