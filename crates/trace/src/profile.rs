//! Driver / pedestrian behaviour profiles.
//!
//! A profile captures everything about *how* an object moves that is not
//! dictated by the map geometry: acceleration limits, willingness to corner
//! fast, adherence to speed limits, and how often and how long it stops at
//! intersections (traffic lights, bus stops, window shopping). The four
//! presets correspond to the paper's four movement patterns.

use mbdr_geo::kmh_to_ms;
use serde::{Deserialize, Serialize};

/// Behavioural parameters of the simulated mobile object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverProfile {
    /// Maximum speed the object will ever travel, m/s (vehicle capability or
    /// personal walking pace).
    pub max_speed: f64,
    /// Factor applied to posted speed limits (1.05 = drives 5 % above).
    pub speed_limit_compliance: f64,
    /// Maximum forward acceleration, m/s².
    pub max_acceleration: f64,
    /// Maximum comfortable deceleration, m/s².
    pub max_deceleration: f64,
    /// Maximum comfortable lateral acceleration in curves, m/s². Determines
    /// how much the object slows down for tight geometry.
    pub max_lateral_acceleration: f64,
    /// Probability of stopping when passing a decision node (intersection with
    /// degree ≥ 3): red lights, stop signs, …
    pub stop_probability: f64,
    /// Mean stop duration, seconds.
    pub mean_stop_duration: f64,
    /// Relative amplitude of slow speed wander around the target speed
    /// (models imperfect cruise keeping / crowd walking speed variation).
    pub speed_wander: f64,
}

impl DriverProfile {
    /// Freeway driving: high speeds, gentle accelerations, essentially no
    /// stops (Table 1: average 103 km/h, maximum 155 km/h).
    pub fn freeway_car() -> Self {
        DriverProfile {
            max_speed: kmh_to_ms(155.0),
            speed_limit_compliance: 1.1,
            max_acceleration: 1.2,
            max_deceleration: 2.0,
            max_lateral_acceleration: 3.0,
            stop_probability: 0.0,
            mean_stop_duration: 0.0,
            speed_wander: 0.08,
        }
    }

    /// Inter-urban driving on country roads through villages (Table 1:
    /// average 60 km/h, maximum 116 km/h).
    pub fn interurban_car() -> Self {
        DriverProfile {
            max_speed: kmh_to_ms(116.0),
            speed_limit_compliance: 1.05,
            max_acceleration: 1.6,
            max_deceleration: 2.5,
            max_lateral_acceleration: 2.6,
            stop_probability: 0.25,
            mean_stop_duration: 18.0,
            speed_wander: 0.10,
        }
    }

    /// City driving: low speeds, frequent stops at lights (Table 1: average
    /// 34 km/h, maximum 65 km/h).
    pub fn city_car() -> Self {
        DriverProfile {
            max_speed: kmh_to_ms(65.0),
            speed_limit_compliance: 1.05,
            max_acceleration: 1.8,
            max_deceleration: 2.8,
            max_lateral_acceleration: 2.2,
            stop_probability: 0.45,
            mean_stop_duration: 25.0,
            speed_wander: 0.12,
        }
    }

    /// A walking person (Table 1: average 4.6 km/h, maximum 7.2 km/h).
    pub fn pedestrian() -> Self {
        DriverProfile {
            max_speed: kmh_to_ms(7.2),
            speed_limit_compliance: 1.0,
            max_acceleration: 0.8,
            max_deceleration: 1.2,
            // Walkers corner without slowing much relative to their speed.
            max_lateral_acceleration: 1.5,
            stop_probability: 0.15,
            mean_stop_duration: 20.0,
            speed_wander: 0.20,
        }
    }

    /// The speed this profile actually drives on a road with the given posted
    /// limit (m/s), before curve or stop constraints.
    pub fn cruise_speed(&self, speed_limit_ms: f64) -> f64 {
        (speed_limit_ms * self.speed_limit_compliance).min(self.max_speed)
    }

    /// Maximum speed through a curve of radius `radius_m` (m/s), from
    /// `v² / r ≤ a_lat`.
    pub fn curve_speed(&self, radius_m: f64) -> f64 {
        if !radius_m.is_finite() {
            return self.max_speed;
        }
        (self.max_lateral_acceleration * radius_m.max(1.0)).sqrt().min(self.max_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_geo::ms_to_kmh;

    #[test]
    fn presets_are_ordered_by_speed() {
        let f = DriverProfile::freeway_car();
        let i = DriverProfile::interurban_car();
        let c = DriverProfile::city_car();
        let p = DriverProfile::pedestrian();
        assert!(f.max_speed > i.max_speed);
        assert!(i.max_speed > c.max_speed);
        assert!(c.max_speed > p.max_speed);
        assert!((ms_to_kmh(p.max_speed) - 7.2).abs() < 1e-9);
    }

    #[test]
    fn cruise_speed_respects_both_limit_and_capability() {
        let c = DriverProfile::city_car();
        // 50 km/h limit → drives slightly above it.
        let v = c.cruise_speed(kmh_to_ms(50.0));
        assert!(v > kmh_to_ms(50.0) && v < kmh_to_ms(56.0));
        // 200 km/h limit → capped by vehicle capability.
        assert!((c.cruise_speed(kmh_to_ms(200.0)) - c.max_speed).abs() < 1e-9);
    }

    #[test]
    fn curve_speed_decreases_with_radius() {
        let f = DriverProfile::freeway_car();
        assert!(f.curve_speed(1_000.0) > f.curve_speed(100.0));
        assert!(f.curve_speed(100.0) > f.curve_speed(10.0));
        // A straight road does not limit speed.
        assert!((f.curve_speed(f64::INFINITY) - f.max_speed).abs() < 1e-9);
        // Degenerate radii do not produce NaN.
        assert!(f.curve_speed(0.0) > 0.0);
    }

    #[test]
    fn stop_behaviour_differs_between_freeway_and_city() {
        assert_eq!(DriverProfile::freeway_car().stop_probability, 0.0);
        assert!(DriverProfile::city_car().stop_probability > 0.3);
    }
}
