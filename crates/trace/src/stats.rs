//! Trace statistics — the quantities reported in Table 1 of the paper.

use crate::types::Trace;
use mbdr_geo::{format_duration_hm, ms_to_kmh};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Length, duration and speed characteristics of a trace (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Path length, kilometres.
    pub length_km: f64,
    /// Duration, seconds.
    pub duration_s: f64,
    /// Average speed over the whole trace (length / duration), km/h.
    pub average_speed_kmh: f64,
    /// Maximum instantaneous ground-truth speed, km/h.
    pub max_speed_kmh: f64,
    /// Number of sensor fixes.
    pub samples: usize,
}

impl TraceStats {
    /// Computes the statistics of a trace. Returns zeroed stats for an empty
    /// trace.
    pub fn of(trace: &Trace) -> Self {
        if trace.is_empty() {
            return TraceStats {
                length_km: 0.0,
                duration_s: 0.0,
                average_speed_kmh: 0.0,
                max_speed_kmh: 0.0,
                samples: 0,
            };
        }
        let length_m = trace.path_length();
        let duration = trace.duration();
        let max_speed = trace.ground_truth.iter().map(|g| g.speed).fold(0.0, f64::max);
        TraceStats {
            length_km: length_m / 1000.0,
            duration_s: duration,
            average_speed_kmh: if duration > 0.0 { ms_to_kmh(length_m / duration) } else { 0.0 },
            max_speed_kmh: ms_to_kmh(max_speed),
            samples: trace.len(),
        }
    }

    /// Formats the stats as a Table 1 row: `length duration avg max`.
    pub fn table1_row(&self, label: &str) -> String {
        format!(
            "{label:<18} {:>7.0} km  {:>8}  {:>6.0} km/h  {:>6.0} km/h",
            self.length_km,
            format_duration_hm(self.duration_s),
            self.average_speed_kmh,
            self.max_speed_kmh
        )
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} km in {} (avg {:.1} km/h, max {:.1} km/h, {} samples)",
            self.length_km,
            format_duration_hm(self.duration_s),
            self.average_speed_kmh,
            self.max_speed_kmh,
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Fix, GroundTruth};
    use mbdr_geo::Point;

    #[test]
    fn stats_of_empty_trace_are_zero() {
        let s = TraceStats::of(&Trace::new());
        assert_eq!(s.length_km, 0.0);
        assert_eq!(s.samples, 0);
    }

    #[test]
    fn stats_of_constant_speed_trace() {
        // 100 samples at 20 m/s, 1 Hz → 1.98 km in 99 s.
        let mut t = Trace::new();
        for i in 0..100 {
            let pos = Point::new(20.0 * i as f64, 0.0);
            t.push(
                GroundTruth { t: i as f64, position: pos, speed: 20.0, heading: 0.0 },
                Fix { t: i as f64, position: pos, accuracy: 3.0 },
            );
        }
        let s = TraceStats::of(&t);
        assert!((s.length_km - 1.98).abs() < 1e-6);
        assert!((s.duration_s - 99.0).abs() < 1e-9);
        assert!((s.average_speed_kmh - 72.0).abs() < 0.1);
        assert!((s.max_speed_kmh - 72.0).abs() < 1e-6);
        assert_eq!(s.samples, 100);
        let row = s.table1_row("test");
        assert!(row.contains("km/h"));
        assert!(s.to_string().contains("samples"));
    }
}
