//! Property-based tests for the wire codec: `decode(encode(u))` reproduces
//! every update (modulo the documented `f32` narrowing), `encoded_len()` is
//! exact without allocating, and damaged buffers produce typed errors instead
//! of panics.

use mbdr_core::wire::TOWARDS_NONE_WIRE;
use mbdr_core::{DecodeError, Frame, FrameView, ObjectState, Update, UpdateKind, UpdateView};
use mbdr_geo::Point;
use mbdr_roadnet::{LinkId, NodeId};
use proptest::prelude::*;

const KINDS: [UpdateKind; 5] = [
    UpdateKind::Initial,
    UpdateKind::DeviationBound,
    UpdateKind::ModeChange,
    UpdateKind::Periodic,
    UpdateKind::Movement,
];

/// Draws one arbitrary update covering every field combination: with/without
/// a link, with/without a travel direction, with/without a turn rate, every
/// kind, and sequence numbers across the whole `u64` range.
fn arb_update() -> impl Strategy<Value = Update> {
    (
        (0u64..u64::MAX, 0usize..KINDS.len(), -50_000.0..50_000.0f64, -50_000.0..50_000.0f64),
        (0.0..70.0f64, -10.0..10.0f64, 0.0..100_000.0f64),
        (0u8..2, 0u32..10_000, 0.0..3_000.0f64, 0u8..3, 0u32..TOWARDS_NONE_WIRE, 0u8..2),
        -1.0..1.0f64,
    )
        .prop_map(
            |(
                (sequence, kind, x, y),
                (speed, heading, timestamp),
                (has_link, link_id, arc_length, towards_mode, towards_id, has_turn),
                turn_rate,
            )| {
                let link = (has_link == 1).then_some(LinkId(link_id));
                Update {
                    sequence,
                    state: ObjectState {
                        position: Point::new(x, y),
                        speed,
                        heading,
                        timestamp,
                        link,
                        arc_length: if link.is_some() { arc_length } else { 0.0 },
                        towards: (link.is_some() && towards_mode > 0).then_some(NodeId(towards_id)),
                        turn_rate: if has_turn == 1 { turn_rate } else { 0.0 },
                    },
                    kind: KINDS[kind],
                }
            },
        )
}

/// What a round trip is expected to reproduce: the `f32`-narrowed values of
/// the fields the wire carries at reduced precision.
fn narrowed(u: &Update) -> Update {
    let mut n = *u;
    n.state.speed = u.state.speed as f32 as f64;
    n.state.heading = u.state.heading as f32 as f64;
    n.state.arc_length = u.state.arc_length as f32 as f64;
    n.state.turn_rate = u.state.turn_rate as f32 as f64;
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_inverts_encode(u in arb_update()) {
        let bytes = u.encode().expect("generated updates avoid the sentinel");
        let decoded = Update::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, narrowed(&u));
        // A second trip is bit-exact: the narrowing is idempotent.
        prop_assert_eq!(decoded.encode().unwrap(), bytes);
    }

    #[test]
    fn encoded_len_is_exact_without_allocating(u in arb_update()) {
        prop_assert_eq!(u.encoded_len(), u.encode().unwrap().len());
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking(u in arb_update(), frac in 0.0..1.0f64) {
        let bytes = u.encode().unwrap();
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        prop_assert!(matches!(
            Update::decode(&bytes[..cut]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupted_kind_byte_is_a_typed_error(u in arb_update(), bad in 5u8..255) {
        let mut bytes = u.encode().unwrap();
        bytes[8] = bad;
        prop_assert_eq!(Update::decode(&bytes), Err(DecodeError::InvalidKind(bad)));
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..255, 0..96)) {
        // Random garbage either happens to parse or reports a typed error;
        // the decoder must never panic or read out of bounds.
        let _ = Update::decode(&bytes);
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn frames_round_trip_batches(
        updates in proptest::collection::vec(arb_update(), 0..12),
        source in 0u64..u64::MAX,
    ) {
        let frame = Frame { source, updates };
        let bytes = frame.encode().unwrap();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let decoded = Frame::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded.source, source);
        prop_assert_eq!(decoded.updates.len(), frame.updates.len());
        for (d, u) in decoded.updates.iter().zip(&frame.updates) {
            prop_assert_eq!(*d, narrowed(u));
        }
    }

    #[test]
    fn reserved_towards_never_encodes(u in arb_update()) {
        let mut u = u;
        u.state.link = Some(LinkId(1));
        u.state.towards = Some(NodeId(TOWARDS_NONE_WIRE));
        prop_assert!(u.encode().is_err());
        prop_assert!(Frame::single(0, u).encode().is_err());
    }

    #[test]
    fn update_view_agrees_with_owned_decode_on_valid_input(u in arb_update()) {
        let bytes = u.encode().unwrap();
        let view = UpdateView::parse(&bytes).expect("own encoding parses");
        prop_assert_eq!(*view.get(), Update::decode(&bytes).unwrap());
        prop_assert_eq!(view.wire_len(), bytes.len());
    }

    #[test]
    fn frame_view_agrees_with_owned_decode_on_valid_input(
        updates in proptest::collection::vec(arb_update(), 0..12),
        source in 0u64..u64::MAX,
    ) {
        let frame = Frame { source, updates };
        let bytes = frame.encode().unwrap();
        let view = FrameView::parse(&bytes).expect("own encoding parses");
        let owned = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(view.source(), owned.source);
        prop_assert_eq!(view.update_count(), owned.updates.len());
        prop_assert_eq!(view.updates().collect::<Vec<_>>(), owned.updates);
    }

    #[test]
    fn views_reject_exactly_what_owned_decode_rejects(
        updates in proptest::collection::vec(arb_update(), 0..6),
        source in 0u64..u64::MAX,
        frac in 0.0..1.0f64,
        flip_at in 0usize..512,
        flip in 1u8..255,
    ) {
        // Damage a valid frame two ways — truncation at an arbitrary offset
        // and a single-byte corruption (which can forge bad kinds, bad
        // flags, NaN floats or inconsistent lengths) — and require the
        // borrowed and the owned decoder to return the *same* typed verdict.
        let frame = Frame { source, updates };
        let bytes = frame.encode().unwrap();

        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len());
        let truncated = &bytes[..cut];
        match (FrameView::parse(truncated), Frame::decode(truncated)) {
            (Ok(view), Ok(owned)) => {
                prop_assert_eq!(view.updates().collect::<Vec<_>>(), owned.updates);
            }
            (Err(ve), Err(oe)) => prop_assert_eq!(ve, oe),
            (view, owned) => panic!("cut {cut}: view {view:?} vs owned {owned:?}"),
        }

        let mut damaged = bytes.clone();
        let at = flip_at % damaged.len().max(1);
        if !damaged.is_empty() {
            damaged[at] ^= flip;
        }
        match (FrameView::parse(&damaged), Frame::decode(&damaged)) {
            (Ok(view), Ok(owned)) => {
                prop_assert_eq!(view.updates().collect::<Vec<_>>(), owned.updates);
            }
            (Err(ve), Err(oe)) => prop_assert_eq!(ve, oe),
            (view, owned) => panic!("flip at {at}: view {view:?} vs owned {owned:?}"),
        }

        // Single updates: same contract for UpdateView vs Update::decode.
        if let Some(u) = frame.updates.first() {
            let ubytes = u.encode().unwrap();
            let mut udamaged = ubytes.clone();
            let uat = at % udamaged.len();
            udamaged[uat] ^= flip;
            match (UpdateView::parse(&udamaged), Update::decode(&udamaged)) {
                (Ok(view), Ok(owned)) => prop_assert_eq!(*view.get(), owned),
                (Err(ve), Err(oe)) => prop_assert_eq!(ve, oe),
                (view, owned) => panic!("update flip: view {view:?} vs owned {owned:?}"),
            }
        }
    }
}
