//! The server-side tracker: the location server's view of one mobile object.

use crate::predictor::Predictor;
use crate::state::{ObjectState, Update};
use mbdr_geo::Point;
use std::sync::Arc;

/// Server-side replica for one tracked object.
///
/// The server stores the last reported object state and answers position
/// queries with `pred(last reported state, t)` — the same prediction function
/// the source uses, which is what makes the accuracy bound `u_s` hold between
/// updates (paper, Section 2).
#[derive(Clone)]
pub struct ServerTracker {
    predictor: Arc<dyn Predictor>,
    last: Option<ObjectState>,
    updates_applied: u64,
    bytes_received: u64,
    /// Highest sequence number seen (stale updates are ignored).
    last_sequence: Option<u64>,
}

impl std::fmt::Debug for ServerTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTracker")
            .field("predictor", &self.predictor.name())
            .field("last", &self.last)
            .field("updates_applied", &self.updates_applied)
            .field("bytes_received", &self.bytes_received)
            .finish()
    }
}

impl ServerTracker {
    /// Creates a tracker that uses the given (shared) prediction function.
    pub fn new(predictor: Arc<dyn Predictor>) -> Self {
        ServerTracker {
            predictor,
            last: None,
            updates_applied: 0,
            bytes_received: 0,
            last_sequence: None,
        }
    }

    /// Applies an update received from the source. Out-of-order updates (lower
    /// sequence number than already applied) are ignored, as the newer state
    /// supersedes them.
    pub fn apply(&mut self, update: &Update) {
        if let Some(seq) = self.last_sequence {
            if update.sequence <= seq {
                return;
            }
        }
        self.last_sequence = Some(update.sequence);
        self.last = Some(update.state);
        self.updates_applied += 1;
        self.bytes_received += update.encoded_len() as u64;
    }

    /// The position the server reports for the object at time `t`, or `None`
    /// if no update has been received yet.
    pub fn position_at(&self, t: f64) -> Option<Point> {
        self.last.as_ref().map(|s| self.predictor.predict(s, t))
    }

    /// The last reported state, if any.
    pub fn last_state(&self) -> Option<&ObjectState> {
        self.last.as_ref()
    }

    /// Number of updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Total payload bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Name of the prediction function in use.
    pub fn predictor_name(&self) -> &'static str {
        self.predictor.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::LinearPredictor;
    use crate::state::UpdateKind;

    fn update(seq: u64, t: f64, x: f64) -> Update {
        Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(x, 0.0), 10.0, std::f64::consts::FRAC_PI_2, t),
            kind: UpdateKind::DeviationBound,
        }
    }

    #[test]
    fn empty_tracker_knows_nothing() {
        let t = ServerTracker::new(Arc::new(LinearPredictor));
        assert!(t.position_at(10.0).is_none());
        assert_eq!(t.updates_applied(), 0);
        assert_eq!(t.predictor_name(), "linear");
    }

    #[test]
    fn tracker_predicts_forward_from_the_last_update() {
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(0, 100.0, 0.0));
        let p = t.position_at(110.0).unwrap();
        assert!((p.x - 100.0).abs() < 1e-9, "10 s at 10 m/s eastwards");
        assert_eq!(t.updates_applied(), 1);
        assert!(t.bytes_received() > 0);
    }

    #[test]
    fn newer_updates_replace_older_ones() {
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(0, 100.0, 0.0));
        t.apply(&update(1, 200.0, 500.0));
        let p = t.position_at(200.0).unwrap();
        assert!((p.x - 500.0).abs() < 1e-9);
        assert_eq!(t.updates_applied(), 2);
    }

    #[test]
    fn stale_updates_are_ignored() {
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(5, 200.0, 500.0));
        t.apply(&update(3, 100.0, 0.0)); // arrives late, must be dropped
        assert_eq!(t.updates_applied(), 1);
        assert_eq!(t.last_state().unwrap().position.x, 500.0);
    }
}
