//! The server-side tracker: the location server's view of one mobile object.

use crate::predictor::Predictor;
use crate::state::{ObjectState, Update};
use mbdr_geo::Point;
use std::sync::Arc;

/// Server-side replica for one tracked object.
///
/// The server stores the last reported object state and answers position
/// queries with `pred(last reported state, t)` — the same prediction function
/// the source uses, which is what makes the accuracy bound `u_s` hold between
/// updates (paper, Section 2).
#[derive(Clone)]
pub struct ServerTracker {
    predictor: Arc<dyn Predictor>,
    last: Option<ObjectState>,
    updates_applied: u64,
    bytes_received: u64,
    /// Highest sequence number seen (stale updates are ignored).
    last_sequence: Option<u64>,
}

impl std::fmt::Debug for ServerTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTracker")
            .field("predictor", &self.predictor.name())
            .field("last", &self.last)
            .field("updates_applied", &self.updates_applied)
            .field("bytes_received", &self.bytes_received)
            .finish()
    }
}

impl ServerTracker {
    /// Creates a tracker that uses the given (shared) prediction function.
    pub fn new(predictor: Arc<dyn Predictor>) -> Self {
        ServerTracker {
            predictor,
            last: None,
            updates_applied: 0,
            bytes_received: 0,
            last_sequence: None,
        }
    }

    /// Applies an update received from the source.
    ///
    /// Freshness is decided by the report timestamp first and the sequence
    /// number as the tiebreak: an update is applied iff its timestamp is
    /// strictly newer than the applied state's, or equal with a higher
    /// sequence number. Within one source run the two orders agree (sequence
    /// and timestamp both increase), so reordered and duplicated deliveries
    /// are rejected exactly as under a sequence-only check — but a restarted
    /// source (sequence reset to 0, timestamps still advancing) is accepted
    /// again instead of being dropped forever, and pre-restart stragglers
    /// (high sequence, old timestamp) cannot roll the state back.
    pub fn apply(&mut self, update: &Update) {
        // A non-finite timestamp (possible via garbage bytes that happen to
        // decode) would poison the freshness comparison forever — e.g. a NaN
        // first report makes every later `>` test false. Reject it outright.
        if !update.state.timestamp.is_finite() {
            return;
        }
        if let (Some(seq), Some(last)) = (self.last_sequence, self.last.as_ref()) {
            let fresher = update.state.timestamp > last.timestamp
                || (update.state.timestamp == last.timestamp && update.sequence > seq);
            if !fresher {
                return;
            }
        }
        self.last_sequence = Some(update.sequence);
        self.last = Some(update.state);
        self.updates_applied += 1;
        self.bytes_received += update.encoded_len() as u64;
    }

    /// The position the server reports for the object at time `t`, or `None`
    /// if no update has been received yet.
    pub fn position_at(&self, t: f64) -> Option<Point> {
        self.last.as_ref().map(|s| self.predictor.predict(s, t))
    }

    /// The last reported state, if any.
    pub fn last_state(&self) -> Option<&ObjectState> {
        self.last.as_ref()
    }

    /// Sequence number of the last applied update, if any. Together with
    /// [`ServerTracker::last_state`] this is exactly the state a durability
    /// snapshot must capture for the staleness check to resume unchanged.
    pub fn last_sequence(&self) -> Option<u64> {
        self.last_sequence
    }

    /// Reinstates tracker state from a durability snapshot, bypassing the
    /// freshness check: the snapshot is authoritative for its point in time.
    /// Journal-tail frames replayed afterwards go through [`ServerTracker::apply`]
    /// and are accepted or rejected by the normal staleness rules, so a
    /// restore followed by replay converges on the live tracker's state.
    ///
    /// The non-finite-timestamp guard is kept: a snapshot can only contain a
    /// state that `apply` once accepted, so a non-finite timestamp here means
    /// the snapshot bytes did not come from this codebase's encoder.
    pub fn restore(&mut self, update: &Update, updates_applied: u64, bytes_received: u64) {
        if !update.state.timestamp.is_finite() {
            return;
        }
        self.last_sequence = Some(update.sequence);
        self.last = Some(update.state);
        self.updates_applied = updates_applied;
        self.bytes_received = bytes_received;
    }

    /// Number of updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Total payload bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Name of the prediction function in use.
    pub fn predictor_name(&self) -> &'static str {
        self.predictor.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::LinearPredictor;
    use crate::state::UpdateKind;

    fn update(seq: u64, t: f64, x: f64) -> Update {
        Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(x, 0.0), 10.0, std::f64::consts::FRAC_PI_2, t),
            kind: UpdateKind::DeviationBound,
        }
    }

    #[test]
    fn empty_tracker_knows_nothing() {
        let t = ServerTracker::new(Arc::new(LinearPredictor));
        assert!(t.position_at(10.0).is_none());
        assert_eq!(t.updates_applied(), 0);
        assert_eq!(t.predictor_name(), "linear");
    }

    #[test]
    fn tracker_predicts_forward_from_the_last_update() {
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(0, 100.0, 0.0));
        let p = t.position_at(110.0).unwrap();
        assert!((p.x - 100.0).abs() < 1e-9, "10 s at 10 m/s eastwards");
        assert_eq!(t.updates_applied(), 1);
        assert!(t.bytes_received() > 0);
    }

    #[test]
    fn newer_updates_replace_older_ones() {
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(0, 100.0, 0.0));
        t.apply(&update(1, 200.0, 500.0));
        let p = t.position_at(200.0).unwrap();
        assert!((p.x - 500.0).abs() < 1e-9);
        assert_eq!(t.updates_applied(), 2);
    }

    #[test]
    fn stale_updates_are_ignored() {
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(5, 200.0, 500.0));
        t.apply(&update(3, 100.0, 0.0)); // arrives late, must be dropped
        assert_eq!(t.updates_applied(), 1);
        assert_eq!(t.last_state().unwrap().position.x, 500.0);
        // A re-delivered duplicate (same sequence, same timestamp) is dropped.
        t.apply(&update(5, 200.0, 999.0));
        assert_eq!(t.updates_applied(), 1);
        assert_eq!(t.last_state().unwrap().position.x, 500.0);
    }

    #[test]
    fn non_finite_timestamps_cannot_poison_the_tracker() {
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(0, f64::NAN, 123.0));
        assert_eq!(t.updates_applied(), 0, "NaN first report is rejected");
        t.apply(&update(1, f64::INFINITY, 123.0));
        assert_eq!(t.updates_applied(), 0);
        // Ordinary tracking proceeds unharmed afterwards.
        t.apply(&update(2, 10.0, 0.0));
        t.apply(&update(3, 20.0, 50.0));
        assert_eq!(t.updates_applied(), 2);
        assert_eq!(t.last_state().unwrap().position.x, 50.0);
    }

    #[test]
    fn restarted_source_with_reset_sequence_is_tracked_again() {
        // Regression: a sequence-only staleness check bricked the tracker
        // after a source restart (sequence reset to 0) — every later update
        // had a "stale" sequence and was dropped forever.
        let mut t = ServerTracker::new(Arc::new(LinearPredictor));
        t.apply(&update(41, 200.0, 500.0));
        // The source reboots and starts a fresh stream at sequence 0 with a
        // strictly newer timestamp: must be accepted.
        t.apply(&update(0, 300.0, 800.0));
        assert_eq!(t.updates_applied(), 2);
        assert_eq!(t.last_state().unwrap().position.x, 800.0);
        // The tracker adopted the new stream: its next sequences apply...
        t.apply(&update(1, 310.0, 900.0));
        assert_eq!(t.updates_applied(), 3);
        // ...while leftovers of the pre-restart stream (older timestamps,
        // whatever their sequence) are still rejected.
        t.apply(&update(40, 190.0, 0.0));
        assert_eq!(t.updates_applied(), 3);
        assert_eq!(t.last_state().unwrap().position.x, 900.0);
    }
}
