//! Dead reckoning with a pre-known route (Wolfson et al. \[12\]).
//!
//! "If the route of the mobile object is known beforehand, the protocol only
//! needs to consider the object's speed and not the direction of its movement.
//! With a known route, a dead-reckoning protocol has the same performance as
//! an optimal map-based protocol, which chooses the right direction at all
//! intersections." (paper, Section 2)
//!
//! Both ends know the route geometry; an update reports how far along the
//! route the object is and how fast it is going, and the shared predictor
//! simply advances that arc length at the reported speed.

use crate::predictor::Predictor;
use crate::protocol::{DeadReckoningEngine, ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update};
use mbdr_geo::{MotionEstimator, Point, Polyline};
use std::sync::Arc;

/// Prediction along a pre-known route: walk the route polyline from the
/// reported arc length at the reported speed.
#[derive(Debug, Clone)]
pub struct RoutePredictor {
    route: Arc<Polyline>,
}

impl RoutePredictor {
    /// Creates a predictor for the given route geometry.
    pub fn new(route: Arc<Polyline>) -> Self {
        RoutePredictor { route }
    }
}

impl Predictor for RoutePredictor {
    fn predict(&self, reported: &ObjectState, t: f64) -> Point {
        let dt = (t - reported.timestamp).max(0.0);
        // For this predictor `arc_length` is the distance along the *route*
        // (not along a link).
        let s = reported.arc_length + reported.speed * dt;
        self.route.point_at_arc_length(s)
    }

    fn name(&self) -> &'static str {
        "known-route"
    }
}

/// The known-route dead-reckoning protocol.
pub struct KnownRouteDeadReckoning {
    engine: DeadReckoningEngine,
    estimator: MotionEstimator,
    route: Arc<Polyline>,
}

impl KnownRouteDeadReckoning {
    /// Creates the protocol for a route whose geometry is known to source and
    /// server in advance.
    pub fn new(route: Arc<Polyline>, config: ProtocolConfig, interpolation_window: usize) -> Self {
        let predictor = Arc::new(RoutePredictor::new(Arc::clone(&route)));
        KnownRouteDeadReckoning {
            engine: DeadReckoningEngine::new(config, predictor),
            estimator: MotionEstimator::new(interpolation_window),
            route,
        }
    }

    /// Length of the known route, metres.
    pub fn route_length(&self) -> f64 {
        self.route.length()
    }
}

impl UpdateProtocol for KnownRouteDeadReckoning {
    fn name(&self) -> &str {
        "known-route dead reckoning"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        let estimate = self.estimator.push(s.t, s.position);
        // Project the sensed position onto the known route to obtain the
        // current arc length (the route-equivalent of map matching).
        let proj = self.route.project(&s.position);
        self.engine.decide(s.t, s.position, s.accuracy, None, || ObjectState {
            position: proj.point,
            speed: estimate.speed,
            heading: estimate.heading,
            timestamp: s.t,
            link: None,
            arc_length: proj.arc_length,
            towards: None,
            turn_rate: 0.0,
        })
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.engine.predictor()
    }

    fn config(&self) -> ProtocolConfig {
        self.engine.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearDeadReckoning;

    /// An S-curved route, driven at constant speed.
    fn s_route() -> (Arc<Polyline>, Vec<Point>) {
        let mut vertices = Vec::new();
        for i in 0..=60 {
            let x = 50.0 * i as f64;
            let y = 200.0 * (x / 3_000.0 * std::f64::consts::TAU).sin();
            vertices.push(Point::new(x, y));
        }
        let poly = Arc::new(Polyline::new(vertices));
        let mut positions = Vec::new();
        let mut s = 0.0;
        while s < poly.length() {
            positions.push(poly.point_at_arc_length(s));
            s += 18.0; // 18 m/s, 1 Hz
        }
        (poly, positions)
    }

    fn count_updates(protocol: &mut dyn UpdateProtocol, positions: &[Point]) -> usize {
        positions
            .iter()
            .enumerate()
            .filter(|(t, p)| {
                protocol
                    .on_sighting(Sighting { t: *t as f64, position: **p, accuracy: 3.0 })
                    .is_some()
            })
            .count()
    }

    #[test]
    fn constant_speed_on_the_known_route_needs_almost_no_updates() {
        let (route, positions) = s_route();
        let mut p = KnownRouteDeadReckoning::new(route, ProtocolConfig::new(50.0), 2);
        let updates = count_updates(&mut p, &positions);
        assert!(updates <= 3, "got {updates}");
    }

    #[test]
    fn beats_linear_prediction_on_a_curved_route() {
        let (route, positions) = s_route();
        let config = ProtocolConfig::new(50.0);
        let mut known = KnownRouteDeadReckoning::new(route, config, 2);
        let mut linear = LinearDeadReckoning::new(config, 2);
        assert!(count_updates(&mut known, &positions) < count_updates(&mut linear, &positions));
    }

    #[test]
    fn speed_changes_still_require_updates() {
        let (route, _) = s_route();
        let mut p = KnownRouteDeadReckoning::new(Arc::clone(&route), ProtocolConfig::new(50.0), 2);
        let mut updates = 0;
        let mut s = 0.0;
        for t in 0..400 {
            // Stop-and-go traffic: 20 m/s for 100 s, standstill for 100 s, …
            let v = if (t / 100) % 2 == 0 { 20.0 } else { 0.0 };
            s += v;
            let pos = route.point_at_arc_length(s);
            if p.on_sighting(Sighting { t: t as f64, position: pos, accuracy: 3.0 }).is_some() {
                updates += 1;
            }
        }
        assert!(updates >= 4, "stop-and-go must force repeated updates, got {updates}");
        assert!(p.route_length() > 0.0);
        assert_eq!(p.predictor().name(), "known-route");
    }
}
