//! Distance-based reporting: the non-dead-reckoning baseline.
//!
//! "The distance-based protocol sends an update whenever the actual position
//! deviates from the last reported position by more than a given threshold"
//! (paper, Section 4; introduced in the authors' earlier work \[6\]). The
//! server simply assumes the object rests at its last reported position, so
//! the shared prediction function is [`StaticPredictor`]. All of the paper's
//! figures normalise the dead-reckoning protocols against this baseline.

use crate::predictor::{Predictor, StaticPredictor};
use crate::protocol::{DeadReckoningEngine, ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update};
use std::sync::Arc;

/// The distance-based reporting protocol.
#[derive(Debug, Clone)]
pub struct DistanceBasedReporting {
    engine: DeadReckoningEngine,
}

impl DistanceBasedReporting {
    /// Creates the protocol for the given accuracy bound.
    pub fn new(config: ProtocolConfig) -> Self {
        DistanceBasedReporting {
            engine: DeadReckoningEngine::new(config, Arc::new(StaticPredictor)),
        }
    }
}

impl UpdateProtocol for DistanceBasedReporting {
    fn name(&self) -> &str {
        "distance-based reporting"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        self.engine.decide(s.t, s.position, s.accuracy, None, || {
            // The update only needs the position; speed and heading are not
            // used by the static predictor.
            ObjectState::basic(s.position, 0.0, 0.0, s.t)
        })
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.engine.predictor()
    }

    fn config(&self) -> ProtocolConfig {
        self.engine.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_geo::Point;

    fn sight(t: f64, x: f64) -> Sighting {
        Sighting { t, position: Point::new(x, 0.0), accuracy: 3.0 }
    }

    #[test]
    fn sends_every_time_the_threshold_distance_is_covered() {
        // 10 m/s object, 50 m requested accuracy, 3 m sensor uncertainty:
        // an update roughly every 47 m of travel ⇒ every ~5 s.
        let mut p = DistanceBasedReporting::new(ProtocolConfig::new(50.0));
        let mut updates = 0;
        for t in 0..120 {
            if p.on_sighting(sight(t as f64, 10.0 * t as f64)).is_some() {
                updates += 1;
            }
        }
        // 1190 m of travel / 47 m per update ≈ 25, plus the initial one.
        assert!((20..=30).contains(&updates), "got {updates}");
    }

    #[test]
    fn stationary_object_sends_only_the_initial_update() {
        let mut p = DistanceBasedReporting::new(ProtocolConfig::new(50.0));
        let mut updates = 0;
        for t in 0..100 {
            if p.on_sighting(sight(t as f64, 0.0)).is_some() {
                updates += 1;
            }
        }
        assert_eq!(updates, 1);
    }

    #[test]
    fn update_rate_scales_inversely_with_the_accuracy() {
        let count = |us: f64| {
            let mut p = DistanceBasedReporting::new(ProtocolConfig::new(us));
            (0..600).filter(|&t| p.on_sighting(sight(t as f64, 20.0 * t as f64)).is_some()).count()
        };
        let tight = count(50.0);
        let loose = count(250.0);
        assert!(tight > loose * 3, "tight {tight}, loose {loose}");
    }

    #[test]
    fn predictor_is_static() {
        let p = DistanceBasedReporting::new(ProtocolConfig::new(50.0));
        assert_eq!(p.predictor().name(), "static");
        assert_eq!(p.config().requested_accuracy, 50.0);
        assert!(p.name().contains("distance"));
    }
}
