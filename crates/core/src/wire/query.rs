//! The serving-layer message kinds: queries a client sends to a location
//! server and the responses it gets back, encoded with the same codec
//! discipline as the update [`Frame`] — big-endian fields, a
//! one-byte kind, typed [`DecodeError`]s, and no panics on truncation or
//! garbage.
//!
//! These types are pure codec: the TCP framing (length prefixes, size caps)
//! and the dispatch against a live `LocationService` live in `mbdr-net`,
//! which keeps this crate free of any I/O.
//!
//! ## Request layout (one byte kind, then the payload)
//!
//! | kind | name | payload |
//! |---|---|---|
//! | `0x01` | ingest | an encoded [`Frame`] (validated at apply time) |
//! | `0x02` | rect query | `min.x min.y max.x max.y t` (5 × `f64`) |
//! | `0x03` | nearest query | `from.x from.y t` (3 × `f64`) + `k` (`u16`) |
//! | `0x04` | zone subscribe | `zone` (`u32`) + `min.x min.y max.x max.y` (4 × `f64`) |
//! | `0x05` | zone poll | `t` (`f64`) |
//! | `0x06` | flush | — |
//! | `0x07` | health | — |
//!
//! ## Response layout
//!
//! | kind | name | payload |
//! |---|---|---|
//! | `0x81` | positions | count (`u32`), then per record `object` (`u64`) + `x y age` (3 × `f64`) |
//! | `0x82` | zone events | count (`u32`), then per event `zone` (`u32`) + `object` (`u64`) + entered (`u8`) + `t` (`f64`) |
//! | `0x83` | flush done | `frames` (`u64`) + `updates_applied` (`u64`) |
//! | `0x84` | error | code (`u8`, see [`ServeError`]) |
//! | `0x85` | health | state (`u8`, see [`DurabilityState`]) + `degraded_frames` + `recovered_frames` + `truncated_bytes` + `append_errors` (4 × `u64`) |
//!
//! Float fields must be finite on the wire: a NaN query point would poison
//! the server's distance ordering, so decoding rejects non-finite values with
//! [`DecodeError::NonFinite`].

use super::{DecodeError, EncodeError, Frame, Reader};
use mbdr_geo::{Aabb, Point};

const REQ_INGEST: u8 = 0x01;
const REQ_RECT: u8 = 0x02;
const REQ_NEAREST: u8 = 0x03;
const REQ_ZONE_SUBSCRIBE: u8 = 0x04;
const REQ_ZONE_POLL: u8 = 0x05;
const REQ_FLUSH: u8 = 0x06;
const REQ_HEALTH: u8 = 0x07;

const RESP_POSITIONS: u8 = 0x81;
const RESP_ZONE_EVENTS: u8 = 0x82;
const RESP_FLUSH_DONE: u8 = 0x83;
const RESP_ERROR: u8 = 0x84;
const RESP_HEALTH: u8 = 0x85;

/// Bytes of one encoded position record (`object` + `x` + `y` + `age`).
const POSITION_RECORD_LEN: usize = 32;
/// Bytes of one encoded zone event (`zone` + `object` + flag + `t`).
const ZONE_EVENT_LEN: usize = 21;

/// One message a client sends to the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An encoded update [`Frame`], carried as raw bytes: the
    /// serving layer forwards them to the ingest queue unparsed and the
    /// apply path (`LocationService::apply_frame_bytes`) validates them, so
    /// connection readers never decode update payloads twice.
    Ingest(Vec<u8>),
    /// "All objects inside `area` at time `t`."
    Rect {
        /// The query rectangle.
        area: Aabb,
        /// Query time, seconds.
        t: f64,
    },
    /// "The `k` objects nearest to `from` at time `t`."
    Nearest {
        /// The query point.
        from: Point,
        /// Query time, seconds.
        t: f64,
        /// How many neighbours to return.
        k: u16,
    },
    /// Registers a zone on this connection's watcher; later zone polls
    /// report enter/leave transitions for it.
    ZoneSubscribe {
        /// Caller-chosen zone identifier, echoed in events.
        zone: u32,
        /// The watched rectangle.
        area: Aabb,
    },
    /// Evaluates this connection's zones at time `t`.
    ZonePoll {
        /// Evaluation time, seconds.
        t: f64,
    },
    /// Asks the server to answer once every ingest frame previously sent on
    /// this connection has been applied (the write barrier).
    Flush,
    /// Asks the server for its durability health: the current
    /// [`DurabilityState`] plus the counters a client needs to judge whether
    /// its acknowledged frames were journaled.
    Health,
}

impl Request {
    /// Wraps an update frame for transmission, encoding it eagerly so the
    /// sender learns about unencodable states ([`EncodeError`]) before any
    /// bytes hit the socket.
    pub fn ingest(frame: &Frame) -> Result<Request, EncodeError> {
        Ok(Request::Ingest(frame.encode()?))
    }

    /// Encodes an ingest request for `frame` in a single pass (kind byte +
    /// frame, one allocation) — the per-frame hot path of a producer client,
    /// where [`Request::ingest`] followed by [`Request::encode`] would copy
    /// the whole payload twice.
    pub fn encode_ingest(frame: &Frame) -> Result<Vec<u8>, EncodeError> {
        let mut buf = Vec::with_capacity(1 + frame.encoded_len());
        Self::encode_ingest_into(frame, &mut buf)?;
        Ok(buf)
    }

    /// Appends an encoded ingest request for `frame` to `buf` — the
    /// allocation-free variant of [`Request::encode_ingest`]: a producer that
    /// clears and reuses one send buffer per connection allocates nothing per
    /// frame in steady state. On error the buffer may hold a partial
    /// encoding; discard (clear) it.
    pub fn encode_ingest_into(frame: &Frame, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
        buf.reserve(1 + frame.encoded_len());
        buf.push(REQ_INGEST);
        frame.encode_into(buf)
    }

    /// Encodes the request (kind byte + payload; see the module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(48);
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the encoded request to `buf` — the reusable-buffer variant of
    /// [`Request::encode`] for callers that send many requests over one
    /// connection.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Ingest(frame_bytes) => {
                buf.reserve(frame_bytes.len());
                buf.push(REQ_INGEST);
                buf.extend_from_slice(frame_bytes);
            }
            Request::Rect { area, t } => {
                buf.push(REQ_RECT);
                push_aabb(buf, area);
                buf.extend_from_slice(&t.to_be_bytes());
            }
            Request::Nearest { from, t, k } => {
                buf.push(REQ_NEAREST);
                buf.extend_from_slice(&from.x.to_be_bytes());
                buf.extend_from_slice(&from.y.to_be_bytes());
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&k.to_be_bytes());
            }
            Request::ZoneSubscribe { zone, area } => {
                buf.push(REQ_ZONE_SUBSCRIBE);
                buf.extend_from_slice(&zone.to_be_bytes());
                push_aabb(buf, area);
            }
            Request::ZonePoll { t } => {
                buf.push(REQ_ZONE_POLL);
                buf.extend_from_slice(&t.to_be_bytes());
            }
            Request::Flush => buf.push(REQ_FLUSH),
            Request::Health => buf.push(REQ_HEALTH),
        }
    }

    /// Like [`Request::decode`], but takes ownership of the buffer so an
    /// ingest payload is carved out with a copyless `split_off` instead of
    /// being copied — the server-side counterpart of
    /// [`Request::encode_ingest`] on the per-frame hot path.
    pub fn decode_owned(mut bytes: Vec<u8>) -> Result<Request, DecodeError> {
        if bytes.first() == Some(&REQ_INGEST) {
            return Ok(Request::Ingest(bytes.split_off(1)));
        }
        Self::decode(&bytes)
    }

    /// Decodes a request from exactly `bytes`. Ingest frame payloads are
    /// *not* parsed here (the apply path validates them); everything else is
    /// fully validated, including finiteness of every float.
    pub fn decode(bytes: &[u8]) -> Result<Request, DecodeError> {
        let mut reader = Reader::new(bytes);
        let kind = reader.u8()?;
        let request = match kind {
            REQ_INGEST => return Ok(Request::Ingest(bytes.get(1..).unwrap_or_default().to_vec())),
            REQ_RECT => {
                let area = read_aabb(&mut reader)?;
                let t = finite(reader.f64()?)?;
                Request::Rect { area, t }
            }
            REQ_NEAREST => {
                let x = finite(reader.f64()?)?;
                let y = finite(reader.f64()?)?;
                let t = finite(reader.f64()?)?;
                let k = reader.u16()?;
                Request::Nearest { from: Point::new(x, y), t, k }
            }
            REQ_ZONE_SUBSCRIBE => {
                let zone = reader.u32()?;
                let area = read_aabb(&mut reader)?;
                Request::ZoneSubscribe { zone, area }
            }
            REQ_ZONE_POLL => Request::ZonePoll { t: finite(reader.f64()?)? },
            REQ_FLUSH => Request::Flush,
            REQ_HEALTH => Request::Health,
            other => return Err(DecodeError::InvalidKind(other)),
        };
        if reader.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(reader.remaining()));
        }
        Ok(request)
    }
}

/// One position answer as it travels on the wire (the serving layer's
/// counterpart of the location service's `PositionReport`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionRecord {
    /// The object the answer is about.
    pub object: u64,
    /// Predicted position at the query time.
    pub position: Point,
    /// Age of the newest update the prediction is based on, seconds.
    pub information_age: f64,
}

/// One zone transition as it travels on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEventRecord {
    /// The zone id the client registered.
    pub zone: u32,
    /// The object that crossed the boundary.
    pub object: u64,
    /// `true` for enter, `false` for leave.
    pub entered: bool,
    /// The evaluation time the transition was observed at, seconds.
    pub t: f64,
}

/// Error codes the serving layer reports before dropping a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The request (or an ingested frame) failed to decode.
    BadRequest,
    /// A message's length prefix exceeded the server's size cap.
    Oversized,
}

impl ServeError {
    fn to_wire(self) -> u8 {
        match self {
            ServeError::BadRequest => 1,
            ServeError::Oversized => 2,
        }
    }

    fn from_wire(byte: u8) -> Result<Self, DecodeError> {
        Ok(match byte {
            1 => ServeError::BadRequest,
            2 => ServeError::Oversized,
            other => return Err(DecodeError::InvalidKind(other)),
        })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest => write!(f, "request failed to decode"),
            ServeError::Oversized => write!(f, "message exceeded the size cap"),
        }
    }
}

/// Where a durable server currently sits on the availability-over-durability
/// trade-off. Carried in the health response as one byte; the full state
/// machine (transitions, probing, re-flooring) lives in
/// `mbdr-locserver::durability`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityState {
    /// Every acknowledged frame is being journaled (or no journal is
    /// attached at all and the server never promised durability).
    #[default]
    Durable,
    /// Journal appends are failing: the server keeps serving, but frames
    /// applied while degraded are counted in `degraded_frames` and are NOT
    /// durable until a recovery snapshot covers them.
    Degraded,
    /// A re-probe repaired the journal and installed a snapshot of live
    /// tracker state, re-establishing a durability floor that covers the
    /// degraded window. Appends are journaled again; the distinct state (vs.
    /// `Durable`) tells operators a degraded window existed in this lifetime.
    Recovered,
}

impl DurabilityState {
    /// The one-byte wire encoding used inside `RESP_HEALTH`.
    #[must_use]
    pub fn to_wire(self) -> u8 {
        match self {
            DurabilityState::Durable => 0,
            DurabilityState::Degraded => 1,
            DurabilityState::Recovered => 2,
        }
    }

    /// Decodes the wire byte; unknown values report
    /// [`DecodeError::InvalidFlags`].
    pub fn from_wire(byte: u8) -> Result<Self, DecodeError> {
        Ok(match byte {
            0 => DurabilityState::Durable,
            1 => DurabilityState::Degraded,
            2 => DurabilityState::Recovered,
            other => return Err(DecodeError::InvalidFlags(other)),
        })
    }
}

impl std::fmt::Display for DurabilityState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityState::Durable => write!(f, "durable"),
            DurabilityState::Degraded => write!(f, "degraded"),
            DurabilityState::Recovered => write!(f, "recovered"),
        }
    }
}

/// The payload of a health response: the durability state machine's position
/// plus the journal counters that tell a client whether (and how many of) its
/// acknowledged frames were actually journaled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStatus {
    /// Current position of the durability state machine.
    pub state: DurabilityState,
    /// Frames applied to live trackers without being journaled (the degraded
    /// window's size so far).
    pub degraded_frames: u64,
    /// Frames replayed from the journal during recovery passes.
    pub recovered_frames: u64,
    /// Bytes discarded by torn-tail repair at open or by degraded-mode
    /// re-probe repairs.
    pub truncated_bytes: u64,
    /// Journal append failures observed (each one also flips or keeps the
    /// server Degraded while persistent).
    pub append_errors: u64,
}

/// One message the serving layer sends back to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to a rect or nearest query.
    Positions(Vec<PositionRecord>),
    /// Answer to a zone poll: the transitions since the previous poll.
    ZoneEvents(Vec<ZoneEventRecord>),
    /// Answer to a flush: every previously sent frame has been applied.
    FlushDone {
        /// Ingest frames received on this connection so far.
        frames: u64,
        /// Updates those frames applied to registered objects.
        updates_applied: u64,
    },
    /// The request was rejected; the server drops the connection after
    /// sending this.
    Error(ServeError),
    /// Answer to a health request.
    Health(HealthStatus),
}

/// Appends an encoded positions response (kind byte + count + records) to
/// `buf` — the single definition of the layout, shared by
/// [`Response::encode`] and by serving layers that write answers from a
/// reusable record buffer without building a [`Response`] value (zero
/// allocations per response in steady state).
pub fn encode_positions_into(
    records: &[PositionRecord],
    buf: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    let count = list_count(records.len())?;
    buf.reserve(1 + 4 + records.len() * POSITION_RECORD_LEN);
    buf.push(RESP_POSITIONS);
    buf.extend_from_slice(&count.to_be_bytes());
    for r in records {
        buf.extend_from_slice(&r.object.to_be_bytes());
        buf.extend_from_slice(&r.position.x.to_be_bytes());
        buf.extend_from_slice(&r.position.y.to_be_bytes());
        buf.extend_from_slice(&r.information_age.to_be_bytes());
    }
    Ok(())
}

/// Appends an encoded zone-events response to `buf` (see
/// [`encode_positions_into`] for the rationale).
pub fn encode_zone_events_into(
    events: &[ZoneEventRecord],
    buf: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    let count = list_count(events.len())?;
    buf.reserve(1 + 4 + events.len() * ZONE_EVENT_LEN);
    buf.push(RESP_ZONE_EVENTS);
    buf.extend_from_slice(&count.to_be_bytes());
    for e in events {
        buf.extend_from_slice(&e.zone.to_be_bytes());
        buf.extend_from_slice(&e.object.to_be_bytes());
        buf.push(u8::from(e.entered));
        buf.extend_from_slice(&e.t.to_be_bytes());
    }
    Ok(())
}

/// Decodes a positions response into a caller-provided buffer (cleared
/// first) — the reusable-buffer counterpart of [`Response::decode`] for
/// query clients that issue many rect/nearest requests per connection.
/// Rejects non-positions responses with [`DecodeError::InvalidKind`] and is
/// otherwise byte-for-byte equivalent to `Response::decode` on positions.
pub fn decode_positions_into(
    bytes: &[u8],
    records: &mut Vec<PositionRecord>,
) -> Result<(), DecodeError> {
    records.clear();
    let mut reader = Reader::new(bytes);
    let kind = reader.u8()?;
    if kind != RESP_POSITIONS {
        return Err(DecodeError::InvalidKind(kind));
    }
    let count = reader.u32()? as usize;
    // Untrusted count: cap the reservation by what the buffer actually holds.
    records.reserve(count.min(reader.remaining() / POSITION_RECORD_LEN));
    for _ in 0..count {
        let object = reader.u64()?;
        let x = finite(reader.f64()?)?;
        let y = finite(reader.f64()?)?;
        let information_age = finite(reader.f64()?)?;
        records.push(PositionRecord { object, position: Point::new(x, y), information_age });
    }
    if reader.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(reader.remaining()));
    }
    Ok(())
}

impl Response {
    /// Encodes the response (kind byte + payload; see the module docs).
    /// Fails only if a record list exceeds the 32-bit count field.
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut buf = Vec::with_capacity(32);
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Appends the encoded response to `buf` — the reusable-buffer variant
    /// of [`Response::encode`]. On error the buffer may hold a partial
    /// encoding; discard (clear) it.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            Response::Positions(records) => encode_positions_into(records, buf)?,
            Response::ZoneEvents(events) => encode_zone_events_into(events, buf)?,
            Response::FlushDone { frames, updates_applied } => {
                buf.push(RESP_FLUSH_DONE);
                buf.extend_from_slice(&frames.to_be_bytes());
                buf.extend_from_slice(&updates_applied.to_be_bytes());
            }
            Response::Error(code) => {
                buf.push(RESP_ERROR);
                buf.push(code.to_wire());
            }
            Response::Health(health) => {
                buf.push(RESP_HEALTH);
                buf.push(health.state.to_wire());
                buf.extend_from_slice(&health.degraded_frames.to_be_bytes());
                buf.extend_from_slice(&health.recovered_frames.to_be_bytes());
                buf.extend_from_slice(&health.truncated_bytes.to_be_bytes());
                buf.extend_from_slice(&health.append_errors.to_be_bytes());
            }
        }
        Ok(())
    }

    /// Decodes a response from exactly `bytes`. Never panics: truncated or
    /// corrupted buffers report a typed [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<Response, DecodeError> {
        let mut reader = Reader::new(bytes);
        let response = match reader.u8()? {
            RESP_POSITIONS => {
                let count = reader.u32()? as usize;
                // Untrusted count: cap the preallocation by what the buffer
                // can actually hold, like Frame::decode.
                let mut records =
                    Vec::with_capacity(count.min(reader.remaining() / POSITION_RECORD_LEN));
                for _ in 0..count {
                    let object = reader.u64()?;
                    let x = finite(reader.f64()?)?;
                    let y = finite(reader.f64()?)?;
                    let information_age = finite(reader.f64()?)?;
                    records.push(PositionRecord {
                        object,
                        position: Point::new(x, y),
                        information_age,
                    });
                }
                Response::Positions(records)
            }
            RESP_ZONE_EVENTS => {
                let count = reader.u32()? as usize;
                let mut events = Vec::with_capacity(count.min(reader.remaining() / ZONE_EVENT_LEN));
                for _ in 0..count {
                    let zone = reader.u32()?;
                    let object = reader.u64()?;
                    let entered = match reader.u8()? {
                        0 => false,
                        1 => true,
                        other => return Err(DecodeError::InvalidFlags(other)),
                    };
                    let t = finite(reader.f64()?)?;
                    events.push(ZoneEventRecord { zone, object, entered, t });
                }
                Response::ZoneEvents(events)
            }
            RESP_FLUSH_DONE => {
                Response::FlushDone { frames: reader.u64()?, updates_applied: reader.u64()? }
            }
            RESP_ERROR => Response::Error(ServeError::from_wire(reader.u8()?)?),
            RESP_HEALTH => Response::Health(HealthStatus {
                state: DurabilityState::from_wire(reader.u8()?)?,
                degraded_frames: reader.u64()?,
                recovered_frames: reader.u64()?,
                truncated_bytes: reader.u64()?,
                append_errors: reader.u64()?,
            }),
            other => return Err(DecodeError::InvalidKind(other)),
        };
        if reader.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(reader.remaining()));
        }
        Ok(response)
    }
}

fn push_aabb(buf: &mut Vec<u8>, area: &Aabb) {
    buf.extend_from_slice(&area.min.x.to_be_bytes());
    buf.extend_from_slice(&area.min.y.to_be_bytes());
    buf.extend_from_slice(&area.max.x.to_be_bytes());
    buf.extend_from_slice(&area.max.y.to_be_bytes());
}

fn read_aabb(reader: &mut Reader<'_>) -> Result<Aabb, DecodeError> {
    let min_x = finite(reader.f64()?)?;
    let min_y = finite(reader.f64()?)?;
    let max_x = finite(reader.f64()?)?;
    let max_y = finite(reader.f64()?)?;
    // Aabb::new normalises corner order, so a hostile "inverted" rectangle
    // decodes to a valid (possibly empty-ish) box instead of undefined state.
    Ok(Aabb::new(Point::new(min_x, min_y), Point::new(max_x, max_y)))
}

fn finite(v: f64) -> Result<f64, DecodeError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(DecodeError::NonFinite)
    }
}

fn list_count(len: usize) -> Result<u32, EncodeError> {
    u32::try_from(len).map_err(|_| EncodeError::FrameTooLarge(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ingest(Frame::new(9).encode().unwrap()),
            Request::Rect {
                area: Aabb::new(Point::new(-10.0, -20.0), Point::new(30.0, 40.0)),
                t: 12.5,
            },
            Request::Nearest { from: Point::new(1.0, 2.0), t: 3.0, k: 5 },
            Request::ZoneSubscribe {
                zone: 7,
                area: Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            },
            Request::ZonePoll { t: 42.0 },
            Request::Flush,
            Request::Health,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Positions(vec![
                PositionRecord {
                    object: 3,
                    position: Point::new(5.5, -6.25),
                    information_age: 1.5,
                },
                PositionRecord { object: 9, position: Point::new(0.0, 0.0), information_age: 0.0 },
            ]),
            Response::ZoneEvents(vec![ZoneEventRecord {
                zone: 2,
                object: 11,
                entered: true,
                t: 8.0,
            }]),
            Response::FlushDone { frames: 40, updates_applied: 123 },
            Response::Error(ServeError::BadRequest),
            Response::Error(ServeError::Oversized),
            Response::Health(HealthStatus {
                state: DurabilityState::Durable,
                degraded_frames: 0,
                recovered_frames: 17,
                truncated_bytes: 0,
                append_errors: 0,
            }),
            Response::Health(HealthStatus {
                state: DurabilityState::Degraded,
                degraded_frames: 41,
                recovered_frames: 2,
                truncated_bytes: 12,
                append_errors: 43,
            }),
            Response::Health(HealthStatus {
                state: DurabilityState::Recovered,
                degraded_frames: 41,
                recovered_frames: 2,
                truncated_bytes: 12,
                append_errors: 43,
            }),
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for request in sample_requests() {
            let bytes = request.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), request, "{request:?}");
        }
    }

    #[test]
    fn decode_owned_agrees_with_decode_for_every_request() {
        for request in sample_requests() {
            let bytes = request.encode();
            assert_eq!(
                Request::decode_owned(bytes.clone()).unwrap(),
                Request::decode(&bytes).unwrap(),
                "{request:?}"
            );
        }
        // And for garbage, both report the same typed error.
        assert_eq!(Request::decode_owned(vec![0x7F]), Request::decode(&[0x7F]));
        assert_eq!(Request::decode_owned(Vec::new()), Request::decode(&[]));
    }

    #[test]
    fn every_response_round_trips() {
        for response in sample_responses() {
            let bytes = response.encode().unwrap();
            assert_eq!(Response::decode(&bytes).unwrap(), response, "{response:?}");
        }
    }

    #[test]
    fn truncations_report_typed_errors_and_never_panic() {
        for request in sample_requests() {
            let bytes = request.encode();
            for cut in 0..bytes.len() {
                if matches!(request, Request::Ingest(_)) && cut >= 1 {
                    // A cut ingest body is still a valid envelope: its frame
                    // payload is validated by the apply path, not here.
                    continue;
                }
                assert!(
                    matches!(Request::decode(&bytes[..cut]), Err(DecodeError::Truncated { .. })),
                    "{request:?} cut at {cut}"
                );
            }
        }
        for response in sample_responses() {
            let bytes = response.encode().unwrap();
            for cut in 0..bytes.len() {
                assert!(
                    matches!(Response::decode(&bytes[..cut]), Err(DecodeError::Truncated { .. })),
                    "{response:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_rejected() {
        assert_eq!(Request::decode(&[0x7F]), Err(DecodeError::InvalidKind(0x7F)));
        assert_eq!(Response::decode(&[0x01]), Err(DecodeError::InvalidKind(0x01)));
        let mut bytes = Request::Flush.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), Err(DecodeError::TrailingBytes(1)));
        let mut bytes = Response::FlushDone { frames: 1, updates_applied: 1 }.encode().unwrap();
        bytes.push(0);
        assert_eq!(Response::decode(&bytes), Err(DecodeError::TrailingBytes(1)));
        assert_eq!(Response::decode(&[RESP_ERROR, 99]), Err(DecodeError::InvalidKind(99)));
        // An unknown durability-state byte is a typed flags error.
        let mut bytes = Response::Health(HealthStatus::default()).encode().unwrap();
        bytes[1] = 7;
        assert_eq!(Response::decode(&bytes), Err(DecodeError::InvalidFlags(7)));
    }

    #[test]
    fn durability_state_wire_bytes_round_trip() {
        for state in
            [DurabilityState::Durable, DurabilityState::Degraded, DurabilityState::Recovered]
        {
            assert_eq!(DurabilityState::from_wire(state.to_wire()).unwrap(), state);
        }
        assert_eq!(DurabilityState::from_wire(3), Err(DecodeError::InvalidFlags(3)));
        assert_eq!(DurabilityState::default(), DurabilityState::Durable);
        assert_eq!(format!("{}", DurabilityState::Degraded), "degraded");
    }

    #[test]
    fn non_finite_query_floats_are_rejected() {
        let mut bytes = Request::ZonePoll { t: 1.0 }.encode();
        bytes[1..9].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(Request::decode(&bytes), Err(DecodeError::NonFinite));
        let mut bytes = Request::Nearest { from: Point::new(0.0, 0.0), t: 0.0, k: 1 }.encode();
        bytes[1..9].copy_from_slice(&f64::INFINITY.to_be_bytes());
        assert_eq!(Request::decode(&bytes), Err(DecodeError::NonFinite));
    }

    #[test]
    fn buffer_reuse_variants_agree_with_the_allocating_ones() {
        // Slice encoders produce byte-for-byte what Response::encode does.
        for response in sample_responses() {
            let owned = response.encode().unwrap();
            let mut reused = Vec::new();
            reused.extend_from_slice(b"garbage-from-last-time");
            reused.clear();
            response.encode_into(&mut reused).unwrap();
            assert_eq!(reused, owned, "{response:?}");
        }
        // decode_positions_into agrees with Response::decode on positions
        // (and clears stale contents first).
        let response = &sample_responses()[0];
        let bytes = response.encode().unwrap();
        let mut records = vec![PositionRecord {
            object: 999,
            position: Point::new(0.0, 0.0),
            information_age: 0.0,
        }];
        decode_positions_into(&bytes, &mut records).unwrap();
        assert_eq!(Response::Positions(records.clone()), *response);
        // Non-positions responses are refused with a typed error.
        let flush = Response::FlushDone { frames: 1, updates_applied: 2 }.encode().unwrap();
        assert_eq!(
            decode_positions_into(&flush, &mut records),
            Err(DecodeError::InvalidKind(RESP_FLUSH_DONE))
        );
        // Truncations report the same typed errors as Response::decode.
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_positions_into(&bytes[..cut], &mut records).err(),
                Response::decode(&bytes[..cut]).err(),
                "cut at {cut}"
            );
        }
        // Request::encode_into matches Request::encode for every kind.
        for request in sample_requests() {
            let mut reused = Vec::new();
            request.encode_into(&mut reused);
            assert_eq!(reused, request.encode(), "{request:?}");
        }
        // encode_ingest_into appends exactly what encode_ingest returns.
        let frame = Frame::new(9);
        let mut reused = Vec::new();
        Request::encode_ingest_into(&frame, &mut reused).unwrap();
        assert_eq!(reused, Request::encode_ingest(&frame).unwrap());
    }

    #[test]
    fn hostile_counts_do_not_drive_preallocation() {
        // A positions response claiming u32::MAX records but carrying none
        // must fail with Truncated without a giant allocation.
        let mut bytes = vec![RESP_POSITIONS];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(Response::decode(&bytes), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn ingest_wrapper_surfaces_encode_errors() {
        use crate::state::{ObjectState, UpdateKind};
        use mbdr_roadnet::{LinkId, NodeId};
        let mut state = ObjectState::basic(Point::new(0.0, 0.0), 1.0, 0.0, 0.0);
        state.link = Some(LinkId(1));
        state.towards = Some(NodeId(u32::MAX));
        let update = crate::state::Update { sequence: 0, state, kind: UpdateKind::Initial };
        assert!(Request::ingest(&Frame::single(1, update)).is_err());
    }
}
