//! Durability-snapshot codec: full tracker state as a wire document.
//!
//! `mbdr-journal` persists snapshots as opaque checksummed blobs; this module
//! defines what is inside the blob, using the same codec discipline as the
//! rest of the wire layer — big-endian fields, one-byte record kinds, typed
//! [`DecodeError`]s, and no panics on truncation or garbage.
//!
//! ## Body layout
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `frames` | `u64` | journal frames the snapshot covers |
//! | entries | — | one [`SnapshotEntry`] per tracked object (see below) |
//! | end marker | `u8` | [`KIND_SNAP_END`] |
//! | `count` | `u64` | number of entries, cross-checked on decode |
//!
//! ## Entry layout (kind byte, then the payload)
//!
//! | field | type | meaning |
//! |---|---|---|
//! | kind | `u8` | [`KIND_SNAP_OBJECT`] |
//! | `object` | `u64` | object id |
//! | `updates_applied` | `u64` | tracker counter at snapshot time |
//! | `bytes_received` | `u64` | tracker counter at snapshot time |
//! | update length | `u16` | bytes of the encoded update that follows |
//! | update | — | the tracker's last applied [`Update`], standard encoding |
//!
//! Because snapshotted state arrived through the wire decoder in the first
//! place (floats already `f32`-narrowed by the update codec), re-encoding it
//! here is lossless: restore-from-snapshot followed by tail replay reproduces
//! the exact tracker state of an uninterrupted server.
//!
//! Encoders must emit entries sorted by object id so that snapshot bytes are
//! deterministic for identical state; `decode_snapshot` does not re-sort.

use super::{DecodeError, EncodeError, Reader};
use crate::state::Update;

/// Record kind for one tracked object's state in a snapshot body.
pub const KIND_SNAP_OBJECT: u8 = 0x01;
/// Record kind terminating a snapshot body (followed by the entry count).
pub const KIND_SNAP_END: u8 = 0x02;

/// One tracked object's durable state: the last applied update plus the
/// tracker's monotonic counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotEntry {
    /// Object id (the update frame's source id).
    pub object: u64,
    /// `ServerTracker::updates_applied` at snapshot time.
    pub updates_applied: u64,
    /// `ServerTracker::bytes_received` at snapshot time.
    pub bytes_received: u64,
    /// The last update the tracker applied (carries the position state and
    /// the sequence number the staleness check resumes from).
    pub update: Update,
}

/// Encodes a snapshot body covering `frames` journal frames into `buf`.
///
/// `entries` must already be sorted by object id (the caller owns iteration
/// order; sorting here would hide nondeterministic collection orders).
pub fn encode_snapshot_into(
    frames: u64,
    entries: &[SnapshotEntry],
    buf: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    buf.extend_from_slice(&frames.to_be_bytes());
    for entry in entries {
        buf.push(KIND_SNAP_OBJECT);
        buf.extend_from_slice(&entry.object.to_be_bytes());
        buf.extend_from_slice(&entry.updates_applied.to_be_bytes());
        buf.extend_from_slice(&entry.bytes_received.to_be_bytes());
        let len = entry.update.encoded_len();
        // An update is at most UPDATE_BASE_LEN + LINK_FIELDS_LEN +
        // TURN_FIELD_LEN = 58 bytes, so the u16 length prefix cannot overflow;
        // guard anyway so a future format change fails loudly instead of
        // truncating silently.
        if len > u16::MAX as usize {
            return Err(EncodeError::FrameTooLarge(len));
        }
        buf.extend_from_slice(&(len as u16).to_be_bytes());
        entry.update.encode_into(buf)?;
    }
    buf.push(KIND_SNAP_END);
    buf.extend_from_slice(&(entries.len() as u64).to_be_bytes());
    Ok(())
}

/// Decodes a snapshot body, returning the covered frame count and the entries
/// in their encoded order.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Vec<SnapshotEntry>), DecodeError> {
    let mut reader = Reader::new(bytes);
    let frames = reader.u64()?;
    let mut entries = Vec::new();
    loop {
        let kind = reader.u8()?;
        if kind == KIND_SNAP_END {
            let count = reader.u64()?;
            if reader.remaining() != 0 {
                return Err(DecodeError::TrailingBytes(reader.remaining()));
            }
            if count != entries.len() as u64 {
                // The end marker's cross-check disagrees with what we walked:
                // structural corruption inside a checksummed blob.
                return Err(DecodeError::InvalidKind(KIND_SNAP_END));
            }
            return Ok((frames, entries));
        }
        if kind != KIND_SNAP_OBJECT {
            return Err(DecodeError::InvalidKind(kind));
        }
        let object = reader.u64()?;
        let updates_applied = reader.u64()?;
        let bytes_received = reader.u64()?;
        let len = reader.u16()? as usize;
        let update = Update::decode(reader.take(len)?)?;
        entries.push(SnapshotEntry { object, updates_applied, bytes_received, update });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ObjectState, UpdateKind};
    use mbdr_geo::Point;

    fn entry(object: u64, seq: u64, t: f64, x: f64) -> SnapshotEntry {
        SnapshotEntry {
            object,
            updates_applied: seq + 1,
            bytes_received: (seq + 1) * 42,
            update: Update {
                sequence: seq,
                state: ObjectState::basic(Point::new(x, -x), 12.5, 0.25, t),
                kind: UpdateKind::DeviationBound,
            },
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let entries = [entry(1, 4, 100.0, 10.0), entry(7, 9, 250.0, -3.0)];
        // Narrow through the wire codec once so float fields are exactly what
        // a journaled server would hold (the update codec stores f32 floats).
        let narrowed: Vec<SnapshotEntry> = entries
            .iter()
            .map(|e| SnapshotEntry {
                update: Update::decode(&e.update.encode().unwrap()).unwrap(),
                ..*e
            })
            .collect();
        let mut buf = Vec::new();
        encode_snapshot_into(77, &narrowed, &mut buf).unwrap();
        let (frames, decoded) = decode_snapshot(&buf).unwrap();
        assert_eq!(frames, 77);
        assert_eq!(decoded, narrowed);
        // Determinism: encoding the decoded entries reproduces the bytes.
        let mut buf2 = Vec::new();
        encode_snapshot_into(77, &decoded, &mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let mut buf = Vec::new();
        encode_snapshot_into(0, &[], &mut buf).unwrap();
        let (frames, decoded) = decode_snapshot(&buf).unwrap();
        assert_eq!(frames, 0);
        assert!(decoded.is_empty());
    }

    #[test]
    fn truncation_and_garbage_yield_typed_errors() {
        let mut buf = Vec::new();
        encode_snapshot_into(5, &[entry(1, 0, 10.0, 1.0)], &mut buf).unwrap();
        // Every prefix either decodes as truncated or structurally invalid —
        // never panics, never succeeds.
        for cut in 0..buf.len() {
            assert!(decode_snapshot(&buf[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Trailing garbage is rejected.
        let mut padded = buf.clone();
        padded.push(0xAA);
        assert!(decode_snapshot(&padded).is_err());
        // An unknown record kind is rejected.
        let mut bad_kind = buf.clone();
        bad_kind[8] = 0x7F;
        assert_eq!(decode_snapshot(&bad_kind), Err(DecodeError::InvalidKind(0x7F)));
        // A lying end-marker count is rejected.
        let mut bad_count = buf;
        let last = bad_count.len() - 1;
        bad_count[last] ^= 0x01;
        assert_eq!(decode_snapshot(&bad_count), Err(DecodeError::InvalidKind(KIND_SNAP_END)));
    }
}
