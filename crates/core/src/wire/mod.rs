//! The wire codec: encoding and decoding of update messages and frames.
//!
//! The paper's entire cost model is the wide-area wireless uplink (GSM/GPRS),
//! so the bytes an update occupies on the wire are what the simulator charges
//! per message. This module makes that accounting a *verified protocol*: every
//! encoded update decodes back to the state the server predicts from
//! ([`Update::decode`] is the exact inverse of [`Update::encode`] modulo the
//! documented `f32` narrowing), and a length-prefixed [`Frame`] batches many
//! encoded updates from one source into a single transmission unit.
//!
//! ## Update layout
//!
//! All integers and floats are big-endian.
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 8 | `sequence` (`u64`) |
//! | 8 | 1 | `kind` (0 initial, 1 deviation bound, 2 mode change, 3 periodic, 4 movement) |
//! | 9 | 8 | `timestamp` (`f64`, s) |
//! | 17 | 8 | `position.x` (`f64`, m) |
//! | 25 | 8 | `position.y` (`f64`, m) |
//! | 33 | 4 | `speed` (`f32`, m/s) |
//! | 37 | 4 | `heading` (`f32`, rad) |
//! | 41 | 1 | flags: bit 0 = link fields follow, bit 1 = turn rate follows |
//! | 42 | 12 | link id (`u32`) + arc length (`f32`, m) + towards (`u32`) — present iff flag bit 0 |
//! | +0 | 4 | turn rate (`f32`, rad/s) — present iff flag bit 1 |
//!
//! A plain (non-map) update is 42 bytes; the link fields add 12 and a
//! non-zero turn rate adds 4.
//!
//! ## Narrowing and omitted fields
//!
//! `speed`, `heading`, `arc_length` and `turn_rate` are stored as `f64` but
//! transmitted as `f32` (centimetre-scale resolution is far below the sensor
//! noise), so a decoded update carries the `f32`-narrowed values. Fields that
//! are only meaningful alongside `link` (`arc_length`, `towards`) are not
//! transmitted when `link` is `None` and decode to their defaults.
//!
//! ## The `towards` sentinel
//!
//! "No travel direction" is encoded as the reserved node id `0xFFFF_FFFF`
//! ([`TOWARDS_NONE_WIRE`]). A legitimate `NodeId(u32::MAX)` would silently
//! round-trip to `None`, so encoding an update that carries it alongside a
//! link is rejected with [`EncodeError::ReservedTowards`] instead.
//!
//! ## Frame layout
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 8 | source id (`u64`) |
//! | 8 | 2 | update count (`u16`) |
//! | 10 | — | per update: 2-byte length prefix (`u16`) followed by the encoded update |

use crate::state::{ObjectState, Update, UpdateKind};
use mbdr_geo::Point;
use mbdr_roadnet::{LinkId, NodeId};

pub mod query;
pub mod snapshot;

/// The node id reserved on the wire to mean "no travel direction".
pub const TOWARDS_NONE_WIRE: u32 = u32::MAX;

const FLAG_LINK: u8 = 0b01;
const FLAG_TURN: u8 = 0b10;

/// Bytes of an encoded update without the optional link / turn-rate fields.
const UPDATE_BASE_LEN: usize = 42;
/// Bytes the link id + arc length + towards fields add.
const LINK_FIELDS_LEN: usize = 12;
/// Bytes a non-zero turn rate adds.
const TURN_FIELD_LEN: usize = 4;
/// Bytes of a frame header (source id + update count).
const FRAME_HEADER_LEN: usize = 10;
/// Bytes of each per-update length prefix inside a frame.
const FRAME_LEN_PREFIX: usize = 2;

/// A state that cannot be represented on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// `towards` carries `NodeId(u32::MAX)`, which is reserved on the wire as
    /// the "no direction" sentinel.
    ReservedTowards,
    /// A frame batches more updates than its 16-bit count field can carry.
    FrameTooLarge(usize),
    /// A float field is NaN or infinite. The decoder rejects such values
    /// ([`DecodeError::NonFinite`]), so letting them encode would tear the
    /// connection down at the *receiver* with no sender-side error — the
    /// asymmetry is closed by failing at encode time instead.
    NonFinite,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::ReservedTowards => {
                write!(f, "towards node id {TOWARDS_NONE_WIRE:#x} is reserved as the wire sentinel")
            }
            EncodeError::FrameTooLarge(n) => {
                write!(f, "frame with {n} updates exceeds the u16 count field")
            }
            EncodeError::NonFinite => write!(f, "non-finite float field"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// A buffer that does not decode to a valid update or frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends before the field starting at `offset` (`needed` bytes
    /// were required, only `available` were present).
    Truncated {
        /// Total bytes the decoder needed up to and including the field.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The kind byte is outside the defined range.
    InvalidKind(u8),
    /// The flags byte has undefined bits set.
    InvalidFlags(u8),
    /// The buffer holds more bytes than the message occupies.
    TrailingBytes(usize),
    /// A float field decoded to NaN or infinity. Legitimate encoders never
    /// produce these, and letting them through would poison downstream
    /// comparisons (spatial-index boxes, distance ordering), so the decoder
    /// rejects them outright.
    NonFinite,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated message: needed {needed} bytes, got {available}")
            }
            DecodeError::InvalidKind(k) => write!(f, "invalid update kind byte {k:#x}"),
            DecodeError::InvalidFlags(b) => write!(f, "invalid flags byte {b:#x}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the message"),
            DecodeError::NonFinite => write!(f, "non-finite float field"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl UpdateKind {
    /// The kind's single-byte wire representation.
    fn to_wire(self) -> u8 {
        match self {
            UpdateKind::Initial => 0,
            UpdateKind::DeviationBound => 1,
            UpdateKind::ModeChange => 2,
            UpdateKind::Periodic => 3,
            UpdateKind::Movement => 4,
        }
    }

    /// Parses the wire byte back into a kind.
    fn from_wire(byte: u8) -> Result<Self, DecodeError> {
        Ok(match byte {
            0 => UpdateKind::Initial,
            1 => UpdateKind::DeviationBound,
            2 => UpdateKind::ModeChange,
            3 => UpdateKind::Periodic,
            4 => UpdateKind::Movement,
            other => return Err(DecodeError::InvalidKind(other)),
        })
    }
}

/// A bounds-checked big-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let slice = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or(DecodeError::Truncated { needed: self.at + n, available: self.bytes.len() })?;
        self.at += n;
        Ok(slice)
    }

    /// `take(N)` as a fixed-size array. The length mismatch arm is
    /// unreachable (take returned exactly `N` bytes) but maps to a typed
    /// error rather than a panic: decode never panics on any input.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        self.take(N)?.try_into().map_err(|_| DecodeError::Truncated { needed: N, available: 0 })
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let [byte] = self.array::<1>()?;
        Ok(byte)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_be_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_be_bytes(self.array()?))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }
}

impl Update {
    /// Encodes the update into a compact wire representation (see the module
    /// docs for the byte layout). Its length is what the simulator's message
    /// accounting charges per update.
    ///
    /// Fails with [`EncodeError::ReservedTowards`] if the update travels
    /// towards `NodeId(u32::MAX)`, which the wire reserves as the "no
    /// direction" sentinel.
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Appends the encoded update to `buf` (the allocation-free building
    /// block frames batch updates with). On error `buf` is left untouched.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
        if self.state.link.is_some() && self.state.towards == Some(NodeId(TOWARDS_NONE_WIRE)) {
            return Err(EncodeError::ReservedTowards);
        }
        // The decoder rejects non-finite floats (a hostile-input guard), so
        // encoding them would fail only at the receiver — surface the error
        // where the bad value originates instead.
        let s = &self.state;
        if ![s.timestamp, s.position.x, s.position.y, s.speed, s.heading, s.arc_length, s.turn_rate]
            .iter()
            .all(|v| v.is_finite())
        {
            return Err(EncodeError::NonFinite);
        }
        buf.reserve(self.encoded_len());
        buf.extend_from_slice(&self.sequence.to_be_bytes());
        buf.push(self.kind.to_wire());
        buf.extend_from_slice(&self.state.timestamp.to_be_bytes());
        buf.extend_from_slice(&self.state.position.x.to_be_bytes());
        buf.extend_from_slice(&self.state.position.y.to_be_bytes());
        buf.extend_from_slice(&(self.state.speed as f32).to_be_bytes());
        buf.extend_from_slice(&(self.state.heading as f32).to_be_bytes());
        let mut flags = 0u8;
        if self.state.link.is_some() {
            flags |= FLAG_LINK;
        }
        if self.wire_turn_rate() != 0.0 {
            flags |= FLAG_TURN;
        }
        buf.push(flags);
        if let Some(link) = self.state.link {
            buf.extend_from_slice(&link.0.to_be_bytes());
            buf.extend_from_slice(&(self.state.arc_length as f32).to_be_bytes());
            let towards = self.state.towards.map(|n| n.0).unwrap_or(TOWARDS_NONE_WIRE);
            buf.extend_from_slice(&towards.to_be_bytes());
        }
        if self.wire_turn_rate() != 0.0 {
            buf.extend_from_slice(&self.wire_turn_rate().to_be_bytes());
        }
        Ok(())
    }

    /// The turn rate as it would travel on the wire. The "is a turn rate
    /// present" flag is decided on this narrowed value, not the `f64` one, so
    /// a tiny rate that underflows to `0.0f32` is omitted outright — keeping
    /// re-encoding of a decoded update bit-exact.
    fn wire_turn_rate(&self) -> f32 {
        self.state.turn_rate as f32
    }

    /// Size of the encoded update in bytes, computed arithmetically — no
    /// allocation, so the per-message accounting on the channel-send and
    /// tracker-apply hot paths is free. Property-tested to equal
    /// `encode()?.len()` for every field combination.
    pub fn encoded_len(&self) -> usize {
        UPDATE_BASE_LEN
            + if self.state.link.is_some() { LINK_FIELDS_LEN } else { 0 }
            + if self.wire_turn_rate() != 0.0 { TURN_FIELD_LEN } else { 0 }
    }

    /// Decodes an update from exactly `bytes` — the inverse of [`encode`]
    /// (modulo the documented `f32` narrowing). Never panics: truncated or
    /// corrupted buffers report a typed [`DecodeError`].
    ///
    /// [`encode`]: Update::encode
    pub fn decode(bytes: &[u8]) -> Result<Update, DecodeError> {
        let mut reader = Reader::new(bytes);
        let update = Self::decode_from(&mut reader)?;
        if reader.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(reader.remaining()));
        }
        Ok(update)
    }

    fn decode_from(reader: &mut Reader<'_>) -> Result<Update, DecodeError> {
        let sequence = reader.u64()?;
        let kind = UpdateKind::from_wire(reader.u8()?)?;
        let timestamp = reader.f64()?;
        let x = reader.f64()?;
        let y = reader.f64()?;
        let speed = reader.f32()? as f64;
        let heading = reader.f32()? as f64;
        let flags = reader.u8()?;
        if flags & !(FLAG_LINK | FLAG_TURN) != 0 {
            return Err(DecodeError::InvalidFlags(flags));
        }
        let (link, arc_length, towards) = if flags & FLAG_LINK != 0 {
            let link = LinkId(reader.u32()?);
            let arc_length = reader.f32()? as f64;
            let towards = match reader.u32()? {
                TOWARDS_NONE_WIRE => None,
                id => Some(NodeId(id)),
            };
            (Some(link), arc_length, towards)
        } else {
            (None, 0.0, None)
        };
        let turn_rate = if flags & FLAG_TURN != 0 { reader.f32()? as f64 } else { 0.0 };
        if ![timestamp, x, y, speed, heading, arc_length, turn_rate].iter().all(|v| v.is_finite()) {
            return Err(DecodeError::NonFinite);
        }
        Ok(Update {
            sequence,
            state: ObjectState {
                position: Point::new(x, y),
                speed,
                heading,
                timestamp,
                link,
                arc_length,
                towards,
                turn_rate,
            },
            kind,
        })
    }
}

/// A length-prefixed batch of encoded updates from one source — the unit one
/// uplink transmission carries, and the unit the lossy channel model drops,
/// duplicates and reorders.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Identifier of the source all batched updates belong to (the location
    /// service maps it to its object id).
    pub source: u64,
    /// The batched updates, oldest first.
    pub updates: Vec<Update>,
}

impl Frame {
    /// An empty frame for the given source.
    pub fn new(source: u64) -> Self {
        Frame { source, updates: Vec::new() }
    }

    /// A frame carrying a single update.
    pub fn single(source: u64, update: Update) -> Self {
        Frame { source, updates: vec![update] }
    }

    /// Appends an update to the batch.
    pub fn push(&mut self, update: Update) {
        self.updates.push(update);
    }

    /// Size of the encoded frame in bytes (header + per-update length
    /// prefixes + encoded updates), computed without allocating.
    pub fn encoded_len(&self) -> usize {
        FRAME_HEADER_LEN
            + self.updates.iter().map(|u| FRAME_LEN_PREFIX + u.encoded_len()).sum::<usize>()
    }

    /// Encodes the frame (see the module docs for the layout).
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Appends the encoded frame to `buf` — the allocation-free building
    /// block the serving layer wraps frames into messages with. On error the
    /// buffer may hold a partial encoding; discard it.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
        if self.updates.len() > u16::MAX as usize {
            return Err(EncodeError::FrameTooLarge(self.updates.len()));
        }
        buf.reserve(self.encoded_len());
        buf.extend_from_slice(&self.source.to_be_bytes());
        buf.extend_from_slice(&(self.updates.len() as u16).to_be_bytes());
        for update in &self.updates {
            buf.extend_from_slice(&(update.encoded_len() as u16).to_be_bytes());
            update.encode_into(buf)?;
        }
        Ok(())
    }

    /// Decodes a frame from exactly `bytes`. Never panics: truncated or
    /// corrupted buffers report a typed [`DecodeError`].
    ///
    /// Shares its single validating walk (the private `walk_frame`) with
    /// [`FrameView::parse`], so the owned and the borrowed decoder accept
    /// and reject exactly the same inputs by construction, and each update
    /// is decoded exactly once. The only extra work here is materialising
    /// the `Vec<Update>` — ingest paths that do not need an owned frame
    /// should use [`FrameView`] directly and stay allocation-free.
    pub fn decode(bytes: &[u8]) -> Result<Frame, DecodeError> {
        // The count is untrusted until the walk finishes: cap the
        // preallocation by what the buffer could possibly hold (each update
        // costs at least its length prefix plus the 42-byte base), so a
        // hostile tiny frame claiming 65535 updates cannot force a
        // multi-megabyte allocation before the first read fails.
        let mut updates = Vec::new();
        if bytes.len() >= FRAME_HEADER_LEN {
            let mut header = Reader::new(bytes);
            if let (Ok(_source), Ok(claimed)) = (header.u64(), header.u16()) {
                let max_plausible =
                    (bytes.len() - FRAME_HEADER_LEN) / (FRAME_LEN_PREFIX + UPDATE_BASE_LEN);
                updates.reserve((claimed as usize).min(max_plausible));
            }
        }
        let source = walk_frame(bytes, |u| updates.push(u))?;
        Ok(Frame { source, updates })
    }
}

/// The one validating walk over an encoded frame, shared by [`Frame::decode`]
/// and [`FrameView::parse`]: reads the header, decodes every update exactly
/// once (feeding it to `sink`), and rejects trailing bytes. Having a single
/// walker is what makes the owned and borrowed decoders equivalent by
/// construction.
fn walk_frame(bytes: &[u8], mut sink: impl FnMut(Update)) -> Result<u64, DecodeError> {
    let mut reader = Reader::new(bytes);
    let source = reader.u64()?;
    let count = reader.u16()?;
    for _ in 0..count {
        let len = reader.u16()? as usize;
        let slice = reader.take(len)?;
        sink(Update::decode(slice)?);
    }
    if reader.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(reader.remaining()));
    }
    Ok(source)
}

/// A zero-copy, fully validated view over one encoded update.
///
/// [`UpdateView::parse`] performs exactly the validation of
/// [`Update::decode`] (same typed [`DecodeError`]s on the same inputs — the
/// equivalence is property-tested) but borrows the wire bytes instead of
/// requiring a dedicated buffer per message. Since [`Update`] is `Copy`, the
/// decoded value lives on the stack: neither parsing nor [`UpdateView::get`]
/// ever touches the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateView<'a> {
    bytes: &'a [u8],
    update: Update,
}

impl<'a> UpdateView<'a> {
    /// Validates `bytes` as exactly one encoded update and returns the view.
    /// Accepts and rejects byte-for-byte the same inputs as
    /// [`Update::decode`].
    pub fn parse(bytes: &'a [u8]) -> Result<UpdateView<'a>, DecodeError> {
        Ok(UpdateView { bytes, update: Update::decode(bytes)? })
    }

    /// The wire bytes the view was parsed from.
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Length of the update on the wire, bytes.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// The decoded update (a stack value — no allocation).
    #[inline]
    pub fn get(&self) -> &Update {
        &self.update
    }
}

/// A zero-copy, fully validated view over one encoded [`Frame`].
///
/// [`FrameView::parse`] walks the whole frame once, performing exactly the
/// validation of [`Frame::decode`] — same typed [`DecodeError`]s on the same
/// inputs, which is guaranteed structurally because `Frame::decode` *is*
/// `FrameView::parse` plus a `Vec` — but allocates nothing: the view borrows
/// the byte buffer, and [`FrameView::updates`] decodes each update into a
/// stack value on the fly. This is the ingest hot path of the location
/// service (`apply_frame_bytes`): one frame, zero heap allocations.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    source: u64,
    count: u16,
    /// The per-update region (everything after the 10-byte header), already
    /// validated to contain exactly `count` well-formed updates.
    payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Validates `bytes` as exactly one encoded frame and returns the view.
    /// No shard state should be touched on failure: a frame is either
    /// entirely well-formed or rejected as a whole, exactly like
    /// [`Frame::decode`] (both run the same private `walk_frame` pass; here every
    /// decoded update is a discarded stack copy — no allocation for any
    /// count the attacker claims).
    pub fn parse(bytes: &'a [u8]) -> Result<FrameView<'a>, DecodeError> {
        let mut count = 0u16;
        let source = walk_frame(bytes, |_| count += 1)?;
        // A successful walk guarantees the header was present.
        Ok(FrameView { source, count, payload: &bytes[FRAME_HEADER_LEN..] })
    }

    /// Identifier of the source all batched updates belong to.
    #[inline]
    pub fn source(&self) -> u64 {
        self.source
    }

    /// Number of updates in the frame.
    #[inline]
    pub fn update_count(&self) -> usize {
        self.count as usize
    }

    /// Returns `true` if the frame batches no updates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the batched updates, oldest first, decoding each into a
    /// stack value. Infallible: every update was validated by
    /// [`FrameView::parse`].
    pub fn updates(&self) -> FrameUpdates<'a> {
        FrameUpdates { remaining: self.count, bytes: self.payload }
    }
}

/// Iterator over the updates of a [`FrameView`] (see [`FrameView::updates`]).
#[derive(Debug, Clone)]
pub struct FrameUpdates<'a> {
    remaining: u16,
    bytes: &'a [u8],
}

impl Iterator for FrameUpdates<'_> {
    type Item = Update;

    fn next(&mut self) -> Option<Update> {
        if self.remaining == 0 {
            return None;
        }
        // `FrameView::parse` already validated every update, so none of
        // these reads can fail on a live view — but they go through the
        // bounds-checked reader anyway so the iterator stays panic-free
        // by construction, not by argument.
        let mut reader = Reader::new(self.bytes);
        let len = reader.u16().ok()? as usize;
        let slice = reader.take(len).ok()?;
        let update = Update::decode(slice).ok()?;
        self.remaining -= 1;
        self.bytes = self.bytes.get(FRAME_LEN_PREFIX + len..).unwrap_or_default();
        Some(update)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for FrameUpdates<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ObjectState {
        ObjectState {
            position: Point::new(12.5, -3.75),
            speed: 27.8,
            heading: 1.2,
            timestamp: 100.0,
            link: Some(LinkId(42)),
            arc_length: 155.0,
            towards: Some(NodeId(7)),
            turn_rate: 0.0,
        }
    }

    fn sample_update() -> Update {
        Update { sequence: 9, state: sample_state(), kind: UpdateKind::DeviationBound }
    }

    /// The state a round trip is expected to reproduce: the `f32`-narrowed
    /// fields, and the defaults for fields not carried without a link.
    fn narrowed(u: &Update) -> Update {
        let mut n = *u;
        n.state.speed = u.state.speed as f32 as f64;
        n.state.heading = u.state.heading as f32 as f64;
        n.state.turn_rate = u.state.turn_rate as f32 as f64;
        if u.state.link.is_some() {
            n.state.arc_length = u.state.arc_length as f32 as f64;
        } else {
            n.state.arc_length = 0.0;
            n.state.towards = None;
        }
        n
    }

    #[test]
    fn encoding_is_compact_and_link_dependent() {
        let with_link = sample_update();
        let mut without = with_link;
        without.state.link = None;
        without.state.towards = None;
        // Map-based updates carry the link id + arc length + direction, so
        // they are slightly larger — but both stay well under 100 bytes.
        assert!(with_link.encoded_len() > without.encoded_len());
        assert!(with_link.encoded_len() < 100);
        assert_eq!(without.encoded_len(), 42);
    }

    #[test]
    fn turn_rate_adds_payload_only_when_nonzero() {
        let mut u = sample_update();
        let plain = u.encoded_len();
        u.state.turn_rate = 0.05;
        assert_eq!(u.encoded_len(), plain + 4);
    }

    #[test]
    fn encoded_len_matches_the_actual_encoding() {
        for (link, turn) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut u = sample_update();
            if !link {
                u.state.link = None;
                u.state.towards = None;
            }
            u.state.turn_rate = if turn { 0.25 } else { 0.0 };
            assert_eq!(u.encode().unwrap().len(), u.encoded_len(), "link={link} turn={turn}");
        }
    }

    #[test]
    fn encoding_starts_with_the_sequence_number() {
        let mut u = sample_update();
        u.sequence = 0xABCD;
        let bytes = u.encode().unwrap();
        assert_eq!(u64::from_be_bytes(bytes[..8].try_into().unwrap()), 0xABCD);
    }

    #[test]
    fn decode_inverts_encode() {
        for (link, turn, towards) in [
            (true, false, Some(NodeId(7))),
            (true, true, None),
            (false, false, None),
            (false, true, None),
        ] {
            let mut u = sample_update();
            u.state.link = link.then_some(LinkId(42));
            u.state.towards = towards;
            u.state.turn_rate = if turn { -0.125 } else { 0.0 };
            let decoded = Update::decode(&u.encode().unwrap()).unwrap();
            assert_eq!(decoded, narrowed(&u));
        }
    }

    #[test]
    fn every_kind_round_trips() {
        for kind in [
            UpdateKind::Initial,
            UpdateKind::DeviationBound,
            UpdateKind::ModeChange,
            UpdateKind::Periodic,
            UpdateKind::Movement,
        ] {
            let mut u = sample_update();
            u.kind = kind;
            assert_eq!(Update::decode(&u.encode().unwrap()).unwrap().kind, kind);
        }
    }

    #[test]
    fn reserved_towards_is_rejected_at_encode_time() {
        let mut u = sample_update();
        u.state.towards = Some(NodeId(u32::MAX));
        assert_eq!(u.encode(), Err(EncodeError::ReservedTowards));
        // Without a link the field is not transmitted, so nothing is lost and
        // the encoding succeeds.
        u.state.link = None;
        assert!(u.encode().is_ok());
        // The legitimate id one below the sentinel survives the round trip.
        let mut v = sample_update();
        v.state.towards = Some(NodeId(u32::MAX - 1));
        let decoded = Update::decode(&v.encode().unwrap()).unwrap();
        assert_eq!(decoded.state.towards, Some(NodeId(u32::MAX - 1)));
    }

    #[test]
    fn truncated_buffers_report_typed_errors() {
        let bytes = sample_update().encode().unwrap();
        for cut in 0..bytes.len() {
            match Update::decode(&bytes[..cut]) {
                Err(DecodeError::Truncated { needed, available }) => {
                    assert!(needed > available, "needed {needed} > available {available}");
                    assert_eq!(available, cut);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_kind_and_flags_report_typed_errors() {
        let mut bytes = sample_update().encode().unwrap();
        bytes[8] = 200;
        assert_eq!(Update::decode(&bytes), Err(DecodeError::InvalidKind(200)));
        let mut bytes = sample_update().encode().unwrap();
        bytes[41] |= 0b1000;
        assert!(matches!(Update::decode(&bytes), Err(DecodeError::InvalidFlags(_))));
    }

    #[test]
    fn underflowing_turn_rate_is_omitted_and_round_trips_bit_exact() {
        // 1e-46 is a non-zero f64 that narrows to 0.0f32: the flag is decided
        // on the narrowed value, so the field is omitted and re-encoding the
        // decoded update reproduces the same bytes.
        let mut u = sample_update();
        u.state.turn_rate = 1e-46;
        assert_eq!(u.encoded_len(), sample_update().encoded_len(), "no turn field on the wire");
        let bytes = u.encode().unwrap();
        let decoded = Update::decode(&bytes).unwrap();
        assert_eq!(decoded.state.turn_rate, 0.0);
        assert_eq!(decoded.encode().unwrap(), bytes);
    }

    #[test]
    fn hostile_update_count_does_not_drive_preallocation() {
        // A 10-byte frame claiming 0xFFFF updates must fail with Truncated
        // (the capacity cap keeps the decoder from allocating for the claim;
        // observable here only as "still returns the right typed error").
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_be_bytes());
        bytes.extend_from_slice(&u16::MAX.to_be_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn non_finite_floats_are_rejected_at_encode_time() {
        // The decoder refuses NaN/infinite fields, so the encoder must too —
        // otherwise a degenerate upstream value would only surface as a
        // connection teardown at the receiver.
        let mut u = sample_update();
        u.state.heading = f64::NAN;
        assert_eq!(u.encode(), Err(EncodeError::NonFinite));
        let mut u = sample_update();
        u.state.position.x = f64::INFINITY;
        assert_eq!(Frame::single(1, u).encode(), Err(EncodeError::NonFinite));
    }

    #[test]
    fn non_finite_floats_are_rejected_at_decode_time() {
        // Overwrite the timestamp with an f64 NaN: a hostile peer could use
        // NaN coordinates to poison distance comparisons downstream, so the
        // decoder refuses them with a typed error.
        let mut bytes = sample_update().encode().unwrap();
        bytes[9..17].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(Update::decode(&bytes), Err(DecodeError::NonFinite));
        let mut bytes = sample_update().encode().unwrap();
        bytes[33..37].copy_from_slice(&f32::INFINITY.to_be_bytes());
        assert_eq!(Update::decode(&bytes), Err(DecodeError::NonFinite));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_update().encode().unwrap();
        bytes.push(0);
        assert_eq!(Update::decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn frame_round_trips_a_batch() {
        let mut frame = Frame::new(77);
        for i in 0..5u64 {
            let mut u = sample_update();
            u.sequence = i;
            u.state.timestamp = 100.0 + i as f64;
            u.state.link = (i % 2 == 0).then_some(LinkId(42));
            if u.state.link.is_none() {
                u.state.towards = None;
            }
            frame.push(u);
        }
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes.len(), frame.encoded_len());
        let decoded = Frame::decode(&bytes).unwrap();
        assert_eq!(decoded.source, 77);
        assert_eq!(decoded.updates.len(), 5);
        for (d, u) in decoded.updates.iter().zip(&frame.updates) {
            assert_eq!(*d, narrowed(u));
        }
    }

    #[test]
    fn frame_decode_rejects_truncation_and_trailing_bytes() {
        let frame = Frame::single(1, sample_update());
        let bytes = frame.encode().unwrap();
        for cut in [0, 5, 9, 11, bytes.len() - 1] {
            assert!(
                matches!(Frame::decode(&bytes[..cut]), Err(DecodeError::Truncated { .. })),
                "cut at {cut}"
            );
        }
        let mut extra = bytes.clone();
        extra.push(9);
        assert_eq!(Frame::decode(&extra), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn empty_frame_is_valid() {
        let frame = Frame::new(3);
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes.len(), 10);
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
        let view = FrameView::parse(&bytes).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.updates().count(), 0);
    }

    #[test]
    fn update_view_agrees_with_owned_decode() {
        let bytes = sample_update().encode().unwrap();
        let view = UpdateView::parse(&bytes).unwrap();
        assert_eq!(*view.get(), Update::decode(&bytes).unwrap());
        assert_eq!(view.bytes(), &bytes[..]);
        assert_eq!(view.wire_len(), bytes.len());
        // Every truncation is rejected with the same typed error.
        for cut in 0..bytes.len() {
            assert_eq!(
                UpdateView::parse(&bytes[..cut]).err(),
                Update::decode(&bytes[..cut]).err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn frame_view_iterates_the_batch_without_decoding_to_a_vec() {
        let mut frame = Frame::new(77);
        for i in 0..5u64 {
            let mut u = sample_update();
            u.sequence = i;
            u.state.timestamp = 100.0 + i as f64;
            u.state.link = (i % 2 == 0).then_some(LinkId(42));
            if u.state.link.is_none() {
                u.state.towards = None;
            }
            frame.push(u);
        }
        let bytes = frame.encode().unwrap();
        let view = FrameView::parse(&bytes).unwrap();
        assert_eq!(view.source(), 77);
        assert_eq!(view.update_count(), 5);
        assert_eq!(view.updates().len(), 5);
        let owned = Frame::decode(&bytes).unwrap();
        let viewed: Vec<Update> = view.updates().collect();
        assert_eq!(viewed, owned.updates);
    }

    #[test]
    fn frame_view_rejects_exactly_what_owned_decode_rejects() {
        let frame = Frame::single(1, sample_update());
        let bytes = frame.encode().unwrap();
        // Truncations at every offset and single-byte corruptions at every
        // offset must produce identical verdicts (Frame::decode delegates to
        // FrameView::parse, so this is regression armor for that contract).
        for cut in 0..bytes.len() {
            assert_eq!(
                FrameView::parse(&bytes[..cut]).err(),
                Frame::decode(&bytes[..cut]).err(),
                "cut at {cut}"
            );
            assert!(FrameView::parse(&bytes[..cut]).is_err());
        }
        for at in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[at] ^= 0xFF;
            let view = FrameView::parse(&damaged);
            let owned = Frame::decode(&damaged);
            match (view, owned) {
                (Ok(v), Ok(o)) => {
                    assert_eq!(v.updates().collect::<Vec<_>>(), o.updates, "byte {at}")
                }
                (Err(ve), Err(oe)) => assert_eq!(ve, oe, "byte {at}"),
                (v, o) => panic!("byte {at}: view {v:?} vs owned {o:?}"),
            }
        }
    }
}
