//! Linear-prediction dead reckoning.
//!
//! "This simple dead-reckoning protocol assumes that the mobile object keeps
//! on moving along a line given by the reported position and direction and
//! with the reported speed" (paper, Section 2). Speed and direction are not
//! taken from the sensor directly but interpolated from the last *n* position
//! sightings (2 on the freeway, 4 in inter-urban/city traffic, 8 when
//! walking), which is what [`mbdr_geo::MotionEstimator`] implements.

use crate::predictor::{LinearPredictor, Predictor};
use crate::protocol::{DeadReckoningEngine, ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update};
use mbdr_geo::MotionEstimator;
use std::sync::Arc;

/// The linear-prediction dead-reckoning protocol.
#[derive(Debug, Clone)]
pub struct LinearDeadReckoning {
    engine: DeadReckoningEngine,
    estimator: MotionEstimator,
}

impl LinearDeadReckoning {
    /// Creates the protocol with the given accuracy bound and speed/direction
    /// interpolation window (number of sightings, ≥ 2).
    pub fn new(config: ProtocolConfig, interpolation_window: usize) -> Self {
        LinearDeadReckoning {
            engine: DeadReckoningEngine::new(config, Arc::new(LinearPredictor)),
            estimator: MotionEstimator::new(interpolation_window),
        }
    }

    /// The interpolation window in use.
    pub fn interpolation_window(&self) -> usize {
        self.estimator.window()
    }
}

impl UpdateProtocol for LinearDeadReckoning {
    fn name(&self) -> &str {
        "linear-prediction dead reckoning"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        let estimate = self.estimator.push(s.t, s.position);
        self.engine.decide(s.t, s.position, s.accuracy, None, || {
            ObjectState::basic(s.position, estimate.speed, estimate.heading, s.t)
        })
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.engine.predictor()
    }

    fn config(&self) -> ProtocolConfig {
        self.engine.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance_based::DistanceBasedReporting;
    use mbdr_geo::Point;

    fn drive_straight(protocol: &mut dyn UpdateProtocol, seconds: usize, speed: f64) -> usize {
        let mut updates = 0;
        for t in 0..seconds {
            let s = Sighting {
                t: t as f64,
                position: Point::new(speed * t as f64, 0.0),
                accuracy: 3.0,
            };
            if protocol.on_sighting(s).is_some() {
                updates += 1;
            }
        }
        updates
    }

    #[test]
    fn straight_constant_speed_motion_needs_almost_no_updates() {
        let mut p = LinearDeadReckoning::new(ProtocolConfig::new(50.0), 2);
        let updates = drive_straight(&mut p, 600, 28.0);
        // The first couple of sightings establish the speed estimate; after
        // that the prediction is exact.
        assert!(updates <= 3, "got {updates}");
    }

    #[test]
    fn beats_distance_based_reporting_on_straight_roads() {
        let mut linear = LinearDeadReckoning::new(ProtocolConfig::new(50.0), 2);
        let mut baseline = DistanceBasedReporting::new(ProtocolConfig::new(50.0));
        let linear_updates = drive_straight(&mut linear, 600, 28.0);
        let baseline_updates = drive_straight(&mut baseline, 600, 28.0);
        assert!(
            (linear_updates as f64) < baseline_updates as f64 * 0.2,
            "linear {linear_updates} vs distance-based {baseline_updates}"
        );
    }

    #[test]
    fn turning_forces_updates() {
        let mut p = LinearDeadReckoning::new(ProtocolConfig::new(50.0), 2);
        let mut updates = 0;
        // Drive east for 60 s, then north for 60 s at 20 m/s.
        for t in 0..120 {
            let pos = if t < 60 {
                Point::new(20.0 * t as f64, 0.0)
            } else {
                Point::new(20.0 * 59.0, 20.0 * (t - 59) as f64)
            };
            if p.on_sighting(Sighting { t: t as f64, position: pos, accuracy: 3.0 }).is_some() {
                updates += 1;
            }
        }
        assert!(updates >= 2, "the turn must force at least one extra update, got {updates}");
        assert!(updates <= 6, "but not a flood of them, got {updates}");
    }

    #[test]
    fn speed_change_forces_an_update() {
        let mut p = LinearDeadReckoning::new(ProtocolConfig::new(50.0), 2);
        let mut updates = 0;
        let mut x = 0.0;
        for t in 0..240 {
            let speed = if t < 120 { 30.0 } else { 5.0 }; // hard braking at t=120
            x += speed;
            if p.on_sighting(Sighting { t: t as f64, position: Point::new(x, 0.0), accuracy: 3.0 })
                .is_some()
            {
                updates += 1;
            }
        }
        assert!((2..=5).contains(&updates), "got {updates}");
    }

    #[test]
    fn tighter_accuracy_means_more_updates_on_noisy_motion() {
        let run = |us: f64| {
            let mut p = LinearDeadReckoning::new(ProtocolConfig::new(us), 4);
            let mut updates = 0;
            // A slalom: heading oscillates, so linear prediction keeps failing.
            for t in 0..600 {
                let pos = Point::new(15.0 * t as f64, 120.0 * ((t as f64) * 0.05).sin());
                if p.on_sighting(Sighting { t: t as f64, position: pos, accuracy: 3.0 }).is_some() {
                    updates += 1;
                }
            }
            updates
        };
        assert!(run(30.0) > run(200.0), "tighter accuracy must cost more updates");
    }

    #[test]
    fn exposes_window_and_predictor() {
        let p = LinearDeadReckoning::new(ProtocolConfig::new(100.0), 8);
        assert_eq!(p.interpolation_window(), 8);
        assert_eq!(p.predictor().name(), "linear");
    }
}
