//! Object state and update messages.

use mbdr_geo::Point;
use mbdr_roadnet::{LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// The state of a mobile object as carried in an update message.
///
/// This is the paper's tuple *(o.pos, o.v, o.dir, o.t)* — position, speed,
/// direction and timestamp — extended with the map-based protocol's fields:
/// the corrected position is stored in `position`, `link` carries the current
/// link identifier *o.l*, and `arc_length` / `towards` pin down where on the
/// link the object is and in which direction it travels. Optional `turn_rate`
/// supports the higher-order prediction variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectState {
    /// Reported position (for the map-based protocol this is the corrected,
    /// on-link position `p_c`).
    pub position: Point,
    /// Reported speed, m/s.
    pub speed: f64,
    /// Reported heading, radians clockwise from north.
    pub heading: f64,
    /// Timestamp of the report, seconds.
    pub timestamp: f64,
    /// Current link for map-based protocols (`None` = off the map / not a
    /// map-based protocol; the predictor then falls back to linear
    /// prediction).
    pub link: Option<LinkId>,
    /// Arc length of `position` along `link`, measured from the link's `from`
    /// node (only meaningful when `link` is `Some`).
    pub arc_length: f64,
    /// The link endpoint the object is travelling towards (only meaningful
    /// when `link` is `Some`).
    pub towards: Option<NodeId>,
    /// Estimated turn rate, radians per second (used by the higher-order
    /// predictor; 0 for everyone else).
    pub turn_rate: f64,
}

impl ObjectState {
    /// A minimal state for non-map protocols.
    pub fn basic(position: Point, speed: f64, heading: f64, timestamp: f64) -> Self {
        ObjectState {
            position,
            speed,
            heading,
            timestamp,
            link: None,
            arc_length: 0.0,
            towards: None,
            turn_rate: 0.0,
        }
    }
}

/// Why an update was sent (diagnostics and evaluation only; the wire format
/// does not need it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    /// First report after the protocol started.
    Initial,
    /// The deviation bound was about to be violated.
    DeviationBound,
    /// The protocol changed its internal mode (e.g. the map-based protocol
    /// lost the map and fell back to linear prediction, or re-acquired it).
    ModeChange,
    /// Periodic report (time-based baseline).
    Periodic,
    /// Travelled-distance report (movement-based baseline).
    Movement,
}

/// An update message from the source to the location server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// Monotonically increasing sequence number (per source).
    pub sequence: u64,
    /// The reported object state.
    pub state: ObjectState,
    /// Reason the update was sent.
    pub kind: UpdateKind,
}

impl Update {
    /// Encodes the update into a compact wire representation.
    ///
    /// The encoding is what a bandwidth-conscious implementation over GSM/GPRS
    /// would send: sequence number, timestamp, position, speed, heading and —
    /// only when present — link id, arc length and travel direction. Its
    /// length is what the simulator's message accounting charges per update.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&self.sequence.to_be_bytes());
        buf.extend_from_slice(&self.state.timestamp.to_be_bytes());
        buf.extend_from_slice(&self.state.position.x.to_be_bytes());
        buf.extend_from_slice(&self.state.position.y.to_be_bytes());
        buf.extend_from_slice(&(self.state.speed as f32).to_be_bytes());
        buf.extend_from_slice(&(self.state.heading as f32).to_be_bytes());
        match self.state.link {
            Some(link) => {
                buf.push(1);
                buf.extend_from_slice(&link.0.to_be_bytes());
                buf.extend_from_slice(&(self.state.arc_length as f32).to_be_bytes());
                let towards = self.state.towards.map(|n| n.0).unwrap_or(u32::MAX);
                buf.extend_from_slice(&towards.to_be_bytes());
            }
            None => buf.push(0),
        }
        if self.state.turn_rate != 0.0 {
            buf.push(1);
            buf.extend_from_slice(&(self.state.turn_rate as f32).to_be_bytes());
        } else {
            buf.push(0);
        }
        buf
    }

    /// Size of the encoded update in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ObjectState {
        ObjectState {
            position: Point::new(12.5, -3.75),
            speed: 27.8,
            heading: 1.2,
            timestamp: 100.0,
            link: Some(LinkId(42)),
            arc_length: 155.0,
            towards: Some(NodeId(7)),
            turn_rate: 0.0,
        }
    }

    #[test]
    fn basic_state_has_no_map_fields() {
        let s = ObjectState::basic(Point::new(1.0, 2.0), 3.0, 0.5, 10.0);
        assert!(s.link.is_none());
        assert!(s.towards.is_none());
        assert_eq!(s.turn_rate, 0.0);
    }

    #[test]
    fn encoding_is_compact_and_link_dependent() {
        let with_link =
            Update { sequence: 1, state: sample_state(), kind: UpdateKind::DeviationBound };
        let mut without = with_link;
        without.state.link = None;
        // Map-based updates carry the link id + arc length + direction, so they
        // are slightly larger — but both stay well under 100 bytes.
        assert!(with_link.encoded_len() > without.encoded_len());
        assert!(with_link.encoded_len() < 100);
        assert!(without.encoded_len() >= 41);
    }

    #[test]
    fn turn_rate_adds_payload_only_when_nonzero() {
        let mut u = Update { sequence: 1, state: sample_state(), kind: UpdateKind::Initial };
        let plain = u.encoded_len();
        u.state.turn_rate = 0.05;
        assert_eq!(u.encoded_len(), plain + 4);
    }

    #[test]
    fn encoding_starts_with_the_sequence_number() {
        let u = Update { sequence: 0xABCD, state: sample_state(), kind: UpdateKind::Initial };
        let bytes = u.encode();
        assert_eq!(u64::from_be_bytes(bytes[..8].try_into().unwrap()), 0xABCD);
    }
}
