//! Object state and update messages.

use mbdr_geo::Point;
use mbdr_roadnet::{LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// The state of a mobile object as carried in an update message.
///
/// This is the paper's tuple *(o.pos, o.v, o.dir, o.t)* — position, speed,
/// direction and timestamp — extended with the map-based protocol's fields:
/// the corrected position is stored in `position`, `link` carries the current
/// link identifier *o.l*, and `arc_length` / `towards` pin down where on the
/// link the object is and in which direction it travels. Optional `turn_rate`
/// supports the higher-order prediction variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectState {
    /// Reported position (for the map-based protocol this is the corrected,
    /// on-link position `p_c`).
    pub position: Point,
    /// Reported speed, m/s.
    pub speed: f64,
    /// Reported heading, radians clockwise from north.
    pub heading: f64,
    /// Timestamp of the report, seconds.
    pub timestamp: f64,
    /// Current link for map-based protocols (`None` = off the map / not a
    /// map-based protocol; the predictor then falls back to linear
    /// prediction).
    pub link: Option<LinkId>,
    /// Arc length of `position` along `link`, measured from the link's `from`
    /// node (only meaningful when `link` is `Some`).
    pub arc_length: f64,
    /// The link endpoint the object is travelling towards (only meaningful
    /// when `link` is `Some`).
    pub towards: Option<NodeId>,
    /// Estimated turn rate, radians per second (used by the higher-order
    /// predictor; 0 for everyone else).
    pub turn_rate: f64,
}

impl ObjectState {
    /// A minimal state for non-map protocols.
    pub fn basic(position: Point, speed: f64, heading: f64, timestamp: f64) -> Self {
        ObjectState {
            position,
            speed,
            heading,
            timestamp,
            link: None,
            arc_length: 0.0,
            towards: None,
            turn_rate: 0.0,
        }
    }
}

/// Why an update was sent (one byte on the wire, so the server can tell
/// protocol mode changes from ordinary deviation-bound reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    /// First report after the protocol started.
    Initial,
    /// The deviation bound was about to be violated.
    DeviationBound,
    /// The protocol changed its internal mode (e.g. the map-based protocol
    /// lost the map and fell back to linear prediction, or re-acquired it).
    ModeChange,
    /// Periodic report (time-based baseline).
    Periodic,
    /// Travelled-distance report (movement-based baseline).
    Movement,
}

/// An update message from the source to the location server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// Monotonically increasing sequence number (per source).
    pub sequence: u64,
    /// The reported object state.
    pub state: ObjectState,
    /// Reason the update was sent.
    pub kind: UpdateKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_state_has_no_map_fields() {
        let s = ObjectState::basic(Point::new(1.0, 2.0), 3.0, 0.5, 10.0);
        assert!(s.link.is_none());
        assert!(s.towards.is_none());
        assert_eq!(s.turn_rate, 0.0);
    }
}
