//! # mbdr-core — the dead-reckoning update-protocol family
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! family of protocols for transmitting location information from a mobile
//! *source* to a location *server* such that the server-side position never
//! deviates from the true position by more than a requested accuracy `u_s`,
//! using as few update messages as possible.
//!
//! ## The general mechanism (paper, Section 2, Fig. 1)
//!
//! Source and server share a prediction function `pred()`. The server answers
//! position queries with `pred(last reported state, t)`. The source monitors
//! its sensor; whenever the distance between its actual position and the
//! predicted position (plus the sensor uncertainty `u_p`) exceeds `u_s`, it
//! sends an update carrying its current state. Because both sides run the
//! identical predictor, the server-side error is bounded by `u_s` between
//! updates.
//!
//! ## Protocol variants (Fig. 2)
//!
//! | module | protocol | prediction |
//! |---|---|---|
//! | [`distance_based`] | distance-based reporting (non-DR baseline, \[6\]) | object stays at last reported position |
//! | [`time_based`] | time-based reporting (PCS-style baseline, \[1\]) | — (periodic) |
//! | [`movement_based`] | movement-based reporting (PCS-style baseline, \[1\]) | — (per distance travelled) |
//! | [`linear`] | linear-prediction dead reckoning | straight line at reported speed/heading |
//! | [`higher_order`] | higher-order prediction | circular arc (adds turn rate) |
//! | [`map_based`] | **map-based dead reckoning** (the paper's contribution) | along the road network, smallest-angle link at intersections |
//! | [`map_prob`] | map-based with probability information | along the road network, most-probable link at intersections |
//! | [`known_route`] | dead reckoning with known route (\[12\]) | along the pre-known route |
//! | [`adaptive`] | Wolfson-style sdr/adr/dtdr threshold policies | wraps any predictor |
//! | [`history`] | history-based: learn the map from past traces | map-based on the learned map |
//!
//! [`server::ServerTracker`] is the server-side replica that applies updates
//! and answers `position_at(t)`; [`protocol::UpdateProtocol`] is the
//! source-side trait all the variants implement. [`wire`] is the verified
//! codec the updates travel as: a round-trip-exact encoder/decoder pair plus
//! the length-prefixed [`wire::Frame`] batching many updates per
//! transmission, and [`wire::query`] adds the serving-layer message kinds
//! (rect / nearest / zone queries and their responses) the `mbdr-net` TCP
//! layer speaks.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod distance_based;
pub mod higher_order;
pub mod history;
pub mod known_route;
pub mod linear;
pub mod map_based;
pub mod map_predictor;
pub mod map_prob;
pub mod movement_based;
pub mod predictor;
pub mod protocol;
pub mod server;
pub mod state;
pub mod time_based;
pub mod wire;

pub use adaptive::{AdaptiveDeadReckoning, AdaptivePolicy};
pub use distance_based::DistanceBasedReporting;
pub use higher_order::HigherOrderDeadReckoning;
pub use history::{HistoryBasedDeadReckoning, MapLearner};
pub use known_route::KnownRouteDeadReckoning;
pub use linear::LinearDeadReckoning;
pub use map_based::MapBasedDeadReckoning;
pub use map_predictor::{IntersectionPolicy, MapPredictor};
pub use map_prob::ProbabilityMapDeadReckoning;
pub use movement_based::MovementBasedReporting;
pub use predictor::{ArcPredictor, LinearPredictor, Predictor, StaticPredictor};
pub use protocol::{ProtocolConfig, Sighting, UpdateProtocol};
pub use server::ServerTracker;
pub use state::{ObjectState, Update, UpdateKind};
pub use time_based::TimeBasedReporting;
pub use wire::query::{
    DurabilityState, HealthStatus, PositionRecord, Request, Response, ServeError, ZoneEventRecord,
};
pub use wire::snapshot::{decode_snapshot, encode_snapshot_into, SnapshotEntry};
pub use wire::{DecodeError, EncodeError, Frame, FrameView, UpdateView};
