//! The source-side protocol interface and the shared dead-reckoning engine.

use crate::predictor::Predictor;
use crate::state::{ObjectState, Update, UpdateKind};
use mbdr_geo::Point;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One positioning-sensor reading as consumed by the protocols.
///
/// (Deliberately minimal and local to this crate so that the protocol family
/// does not depend on the trace-generation substrate; the simulator converts
/// its `Fix` type into `Sighting`s.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sighting {
    /// Timestamp, seconds.
    pub t: f64,
    /// Sensed position.
    pub position: Point,
    /// 1-σ sensor accuracy `u_p`, metres.
    pub accuracy: f64,
}

/// Configuration shared by all update protocols.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Requested accuracy `u_s` at the server, metres: the maximum deviation
    /// between the server-side predicted position and the actual position that
    /// the protocol guarantees.
    pub requested_accuracy: f64,
    /// Sensor uncertainty `u_p`, metres, added to the measured deviation when
    /// checking the bound ("if the source detects that the distance between
    /// the mobile object's actual and its reported position is greater than a
    /// certain accuracy `u_s` requested at the server", with the sensed
    /// position only known to within `u_p`).
    pub sensor_uncertainty: f64,
}

impl ProtocolConfig {
    /// Creates a configuration with the given requested accuracy and the
    /// DGPS-grade sensor uncertainty used in the paper's simulations.
    pub fn new(requested_accuracy: f64) -> Self {
        ProtocolConfig { requested_accuracy, sensor_uncertainty: 3.0 }
    }

    /// Overrides the sensor uncertainty `u_p`.
    pub fn with_sensor_uncertainty(mut self, up: f64) -> Self {
        self.sensor_uncertainty = up;
        self
    }

    /// The deviation at which an update must be sent: `u_s − u_p`, but never
    /// below 1 m so a pathological configuration (u_p ≥ u_s) still terminates.
    pub fn send_threshold(&self) -> f64 {
        (self.requested_accuracy - self.sensor_uncertainty).max(1.0)
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::new(100.0)
    }
}

/// Source-side update protocol: consumes sensor sightings, produces update
/// messages when the accuracy guarantee requires one.
pub trait UpdateProtocol {
    /// Human-readable protocol name (used in reports and plots).
    fn name(&self) -> &str;

    /// Processes one sensor sighting. Returns `Some(update)` when an update
    /// must be transmitted to the server, `None` when the server's prediction
    /// is still good enough.
    fn on_sighting(&mut self, sighting: Sighting) -> Option<Update>;

    /// The prediction function this protocol shares with the server. The
    /// simulator hands it to the [`crate::server::ServerTracker`] so that both
    /// ends provably use the same `pred()`.
    fn predictor(&self) -> Arc<dyn Predictor>;

    /// The protocol configuration (accuracy bound) in force.
    fn config(&self) -> ProtocolConfig;
}

/// The shared dead-reckoning send decision: keeps the last reported state,
/// predicts with the shared predictor and decides whether a new update is due.
///
/// All dead-reckoning variants (linear, higher-order, map-based, …) delegate
/// to this engine; they differ only in how they construct the reported
/// [`ObjectState`] and which [`Predictor`] they share with the server.
#[derive(Clone)]
pub struct DeadReckoningEngine {
    config: ProtocolConfig,
    predictor: Arc<dyn Predictor>,
    last_reported: Option<ObjectState>,
    sequence: u64,
}

impl std::fmt::Debug for DeadReckoningEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadReckoningEngine")
            .field("config", &self.config)
            .field("predictor", &self.predictor.name())
            .field("last_reported", &self.last_reported)
            .field("sequence", &self.sequence)
            .finish()
    }
}

impl DeadReckoningEngine {
    /// Creates an engine around a shared predictor.
    pub fn new(config: ProtocolConfig, predictor: Arc<dyn Predictor>) -> Self {
        DeadReckoningEngine { config, predictor, last_reported: None, sequence: 0 }
    }

    /// The shared predictor.
    pub fn predictor(&self) -> Arc<dyn Predictor> {
        Arc::clone(&self.predictor)
    }

    /// The configuration in force.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// The last state that was actually reported to the server, if any.
    pub fn last_reported(&self) -> Option<&ObjectState> {
        self.last_reported.as_ref()
    }

    /// The position the server currently predicts for time `t` (`None` before
    /// the first update).
    pub fn server_prediction(&self, t: f64) -> Option<Point> {
        self.last_reported.as_ref().map(|s| self.predictor.predict(s, t))
    }

    /// Decides whether an update is needed for an object whose *actual*
    /// (sensed) position at time `t` is `actual`, and whose full current state
    /// (the state that would be transmitted) is produced by `make_state`.
    ///
    /// `force` requests an update regardless of the deviation (used by the
    /// map-based protocol on mode changes, e.g. when it loses the map).
    pub fn decide(
        &mut self,
        t: f64,
        actual: Point,
        sensor_uncertainty: f64,
        force: Option<UpdateKind>,
        make_state: impl FnOnce() -> ObjectState,
    ) -> Option<Update> {
        let kind = match (&self.last_reported, force) {
            (None, _) => UpdateKind::Initial,
            (Some(_), Some(kind)) => kind,
            (Some(last), None) => {
                let predicted = self.predictor.predict(last, t);
                let deviation = actual.distance(&predicted) + sensor_uncertainty;
                if deviation <= self.config.requested_accuracy {
                    return None;
                }
                UpdateKind::DeviationBound
            }
        };
        let state = make_state();
        self.last_reported = Some(state);
        let update = Update { sequence: self.sequence, state, kind };
        self.sequence += 1;
        Some(update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::LinearPredictor;

    #[test]
    fn config_threshold_subtracts_sensor_uncertainty() {
        let c = ProtocolConfig::new(100.0).with_sensor_uncertainty(5.0);
        assert_eq!(c.send_threshold(), 95.0);
        // Degenerate configuration stays positive.
        let d = ProtocolConfig::new(2.0).with_sensor_uncertainty(5.0);
        assert_eq!(d.send_threshold(), 1.0);
    }

    #[test]
    fn first_sighting_always_produces_an_initial_update() {
        let mut e = DeadReckoningEngine::new(ProtocolConfig::new(50.0), Arc::new(LinearPredictor));
        let u = e
            .decide(0.0, Point::new(0.0, 0.0), 3.0, None, || {
                ObjectState::basic(Point::new(0.0, 0.0), 10.0, 0.0, 0.0)
            })
            .expect("initial update");
        assert_eq!(u.kind, UpdateKind::Initial);
        assert_eq!(u.sequence, 0);
        assert!(e.last_reported().is_some());
    }

    #[test]
    fn no_update_while_prediction_holds() {
        let mut e = DeadReckoningEngine::new(ProtocolConfig::new(50.0), Arc::new(LinearPredictor));
        // Report: heading north at 10 m/s from the origin.
        e.decide(0.0, Point::new(0.0, 0.0), 3.0, None, || {
            ObjectState::basic(Point::new(0.0, 0.0), 10.0, 0.0, 0.0)
        });
        // Object follows the prediction: no updates.
        for t in 1..20 {
            let actual = Point::new(0.0, 10.0 * t as f64);
            assert!(e
                .decide(t as f64, actual, 3.0, None, || unreachable!("must not build a state"))
                .is_none());
        }
    }

    #[test]
    fn deviation_beyond_the_bound_triggers_an_update() {
        let mut e = DeadReckoningEngine::new(ProtocolConfig::new(50.0), Arc::new(LinearPredictor));
        e.decide(0.0, Point::new(0.0, 0.0), 3.0, None, || {
            ObjectState::basic(Point::new(0.0, 0.0), 10.0, 0.0, 0.0)
        });
        // The object actually turned east: deviation grows with time.
        let mut sent_at = None;
        for t in 1..30 {
            let actual = Point::new(10.0 * t as f64, 0.0);
            let result = e.decide(t as f64, actual, 3.0, None, || {
                ObjectState::basic(actual, 10.0, std::f64::consts::FRAC_PI_2, t as f64)
            });
            if let Some(u) = result {
                assert_eq!(u.kind, UpdateKind::DeviationBound);
                sent_at = Some(t);
                break;
            }
        }
        // Deviation after t seconds is ~14.1·t m (two perpendicular 10 m/s
        // motions); the 50 m bound (minus u_p) is crossed at t = 4.
        assert_eq!(sent_at, Some(4));
    }

    #[test]
    fn forced_updates_bypass_the_deviation_check() {
        let mut e = DeadReckoningEngine::new(ProtocolConfig::new(500.0), Arc::new(LinearPredictor));
        e.decide(0.0, Point::new(0.0, 0.0), 3.0, None, || {
            ObjectState::basic(Point::new(0.0, 0.0), 10.0, 0.0, 0.0)
        });
        let u = e
            .decide(1.0, Point::new(0.0, 10.0), 3.0, Some(UpdateKind::ModeChange), || {
                ObjectState::basic(Point::new(0.0, 10.0), 10.0, 0.0, 1.0)
            })
            .expect("forced update");
        assert_eq!(u.kind, UpdateKind::ModeChange);
        assert_eq!(u.sequence, 1);
    }

    #[test]
    fn server_prediction_matches_the_shared_predictor() {
        let mut e = DeadReckoningEngine::new(ProtocolConfig::new(50.0), Arc::new(LinearPredictor));
        assert!(e.server_prediction(10.0).is_none());
        e.decide(0.0, Point::new(0.0, 0.0), 3.0, None, || {
            ObjectState::basic(Point::new(0.0, 0.0), 10.0, 0.0, 0.0)
        });
        let p = e.server_prediction(5.0).unwrap();
        assert!((p.y - 50.0).abs() < 1e-9);
    }
}
