//! Movement-based reporting: a PCS-style baseline.
//!
//! Related-work baseline (Bar-Noy et al. \[1\]): the source reports after the
//! object has travelled a configured distance along its path (the cellular
//! analogue counts crossed cell boundaries). Unlike distance-based reporting,
//! the travelled *path length* is accumulated, so driving around the block and
//! returning to the start still triggers an update.

use crate::predictor::{Predictor, StaticPredictor};
use crate::protocol::{ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update, UpdateKind};
use mbdr_geo::Point;
use std::sync::Arc;

/// Reporting after every `distance` metres of travelled path.
#[derive(Debug, Clone)]
pub struct MovementBasedReporting {
    distance: f64,
    config: ProtocolConfig,
    predictor: Arc<StaticPredictor>,
    last_position: Option<Point>,
    travelled_since_update: f64,
    sequence: u64,
}

impl MovementBasedReporting {
    /// Creates a reporter that sends after every `distance` metres of travel.
    pub fn new(distance: f64, config: ProtocolConfig) -> Self {
        assert!(distance > 0.0, "movement threshold must be positive");
        MovementBasedReporting {
            distance,
            config,
            predictor: Arc::new(StaticPredictor),
            last_position: None,
            travelled_since_update: 0.0,
            sequence: 0,
        }
    }

    /// The movement threshold, metres.
    pub fn distance(&self) -> f64 {
        self.distance
    }
}

impl UpdateProtocol for MovementBasedReporting {
    fn name(&self) -> &str {
        "movement-based reporting"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        let kind = match self.last_position {
            None => UpdateKind::Initial,
            Some(prev) => {
                self.travelled_since_update += prev.distance(&s.position);
                self.last_position = Some(s.position);
                if self.travelled_since_update < self.distance {
                    return None;
                }
                UpdateKind::Movement
            }
        };
        self.last_position = Some(s.position);
        self.travelled_since_update = 0.0;
        let update = Update {
            sequence: self.sequence,
            state: ObjectState::basic(s.position, 0.0, 0.0, s.t),
            kind,
        };
        self.sequence += 1;
        Some(update)
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.predictor.clone()
    }

    fn config(&self) -> ProtocolConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_every_threshold_of_path_length() {
        let mut p = MovementBasedReporting::new(100.0, ProtocolConfig::new(100.0));
        let mut updates = 0;
        // 10 m per second for 100 s = 1000 m of travel.
        for t in 0..=100 {
            let s =
                Sighting { t: t as f64, position: Point::new(10.0 * t as f64, 0.0), accuracy: 3.0 };
            if p.on_sighting(s).is_some() {
                updates += 1;
            }
        }
        // Initial + one per 100 m.
        assert!((10..=11).contains(&updates), "got {updates}");
    }

    #[test]
    fn loops_still_count_as_movement() {
        // Drive around a 40 m × 40 m block: net displacement returns to zero
        // but the path length grows, so updates must still be produced.
        let mut p = MovementBasedReporting::new(100.0, ProtocolConfig::new(100.0));
        let corners = [
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(40.0, 40.0),
            Point::new(0.0, 40.0),
        ];
        let mut updates = 0;
        for lap in 0..5 {
            for (i, c) in corners.iter().enumerate() {
                let t = (lap * 4 + i) as f64;
                if p.on_sighting(Sighting { t, position: *c, accuracy: 3.0 }).is_some() {
                    updates += 1;
                }
            }
        }
        assert!(updates >= 5, "got {updates}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_is_rejected() {
        let _ = MovementBasedReporting::new(0.0, ProtocolConfig::new(100.0));
    }
}
