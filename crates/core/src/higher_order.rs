//! Higher-order (arc) prediction dead reckoning.
//!
//! The paper sketches this variant ("it is also feasible to use higher-order
//! functions (curves or splines) which, for example, could capture the
//! object's movements in a curve of the road") but does not evaluate it,
//! arguing the map-based protocol predicts curves better anyway. We implement
//! it so the ablation benches can test that argument: the reported state is
//! extended with an estimated turn rate and the shared predictor follows a
//! circular arc instead of a straight line.

use crate::predictor::{ArcPredictor, Predictor};
use crate::protocol::{DeadReckoningEngine, ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update};
use mbdr_geo::{signed_angle_between, MotionEstimator};
use std::sync::Arc;

/// Dead reckoning with circular-arc prediction (position, speed, heading and
/// turn rate).
#[derive(Debug, Clone)]
pub struct HigherOrderDeadReckoning {
    engine: DeadReckoningEngine,
    estimator: MotionEstimator,
    previous_heading: Option<(f64, f64)>, // (timestamp, heading)
    turn_rate: f64,
}

impl HigherOrderDeadReckoning {
    /// Creates the protocol with the given accuracy bound and interpolation
    /// window.
    pub fn new(config: ProtocolConfig, interpolation_window: usize) -> Self {
        HigherOrderDeadReckoning {
            engine: DeadReckoningEngine::new(config, Arc::new(ArcPredictor)),
            estimator: MotionEstimator::new(interpolation_window),
            previous_heading: None,
            turn_rate: 0.0,
        }
    }
}

impl UpdateProtocol for HigherOrderDeadReckoning {
    fn name(&self) -> &str {
        "higher-order (arc) dead reckoning"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        let estimate = self.estimator.push(s.t, s.position);
        // Exponentially smoothed turn rate from consecutive heading estimates.
        if let Some((prev_t, prev_h)) = self.previous_heading {
            let dt = s.t - prev_t;
            if dt > 1e-6 && estimate.speed > 0.5 {
                let raw = signed_angle_between(prev_h, estimate.heading) / dt;
                self.turn_rate = 0.6 * self.turn_rate + 0.4 * raw;
            } else if estimate.speed <= 0.5 {
                self.turn_rate = 0.0;
            }
        }
        self.previous_heading = Some((s.t, estimate.heading));

        let turn_rate = self.turn_rate;
        self.engine.decide(s.t, s.position, s.accuracy, None, || ObjectState {
            position: s.position,
            speed: estimate.speed,
            heading: estimate.heading,
            timestamp: s.t,
            link: None,
            arc_length: 0.0,
            towards: None,
            turn_rate,
        })
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.engine.predictor()
    }

    fn config(&self) -> ProtocolConfig {
        self.engine.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearDeadReckoning;
    use mbdr_geo::Point;

    /// Generates positions on a large circle driven at constant speed.
    fn circular_positions(n: usize, radius: f64, speed: f64) -> Vec<Point> {
        (0..n)
            .map(|t| {
                let angle = speed * t as f64 / radius;
                Point::new(radius * angle.sin(), radius * (1.0 - angle.cos()))
            })
            .collect()
    }

    fn run(protocol: &mut dyn UpdateProtocol, positions: &[Point]) -> usize {
        positions
            .iter()
            .enumerate()
            .filter(|(t, p)| {
                protocol
                    .on_sighting(Sighting { t: *t as f64, position: **p, accuracy: 3.0 })
                    .is_some()
            })
            .count()
    }

    #[test]
    fn beats_linear_prediction_on_a_long_curve() {
        // A 1.5 km radius curve driven at 25 m/s for 10 minutes.
        let positions = circular_positions(600, 1_500.0, 25.0);
        let mut arc = HigherOrderDeadReckoning::new(ProtocolConfig::new(50.0), 4);
        let mut linear = LinearDeadReckoning::new(ProtocolConfig::new(50.0), 4);
        let arc_updates = run(&mut arc, &positions);
        let linear_updates = run(&mut linear, &positions);
        assert!(
            arc_updates < linear_updates,
            "arc {arc_updates} should beat linear {linear_updates} in a constant curve"
        );
    }

    #[test]
    fn straight_motion_degenerates_gracefully() {
        let positions: Vec<Point> = (0..300).map(|t| Point::new(20.0 * t as f64, 0.0)).collect();
        let mut arc = HigherOrderDeadReckoning::new(ProtocolConfig::new(50.0), 2);
        let updates = run(&mut arc, &positions);
        // A couple of warm-up updates while the speed and turn-rate estimates
        // settle, then silence.
        assert!(updates <= 5, "got {updates}");
    }

    #[test]
    fn stationary_object_does_not_accumulate_turn_rate() {
        let mut arc = HigherOrderDeadReckoning::new(ProtocolConfig::new(50.0), 2);
        for t in 0..60 {
            arc.on_sighting(Sighting {
                t: t as f64,
                position: Point::new(5.0, 5.0),
                accuracy: 3.0,
            });
        }
        assert_eq!(arc.turn_rate, 0.0);
        assert_eq!(arc.predictor().name(), "arc");
    }
}
