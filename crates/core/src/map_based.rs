//! The map-based dead-reckoning protocol — the paper's contribution.
//!
//! At the source (Section 3):
//!
//! 1. every sensor sighting is map-matched: the sensed position `p_p` is
//!    projected onto the current link to obtain the corrected position `p_c`,
//!    with forward/backward tracking when the object leaves the link and a
//!    spatial-index re-acquisition when it is off the map;
//! 2. speed is interpolated from the last *n* sightings as in the linear
//!    protocol;
//! 3. the shared prediction function walks along the road network from the
//!    reported `(link, position)` at the reported speed, choosing the
//!    smallest-angle outgoing link at intersections;
//! 4. an update `(p_c, v, link)` is sent whenever the actual position deviates
//!    from the predicted position by more than `u_s` (minus the sensor
//!    uncertainty), or when the protocol changes mode (loses the map and falls
//!    back to linear prediction, or returns to the map).

use crate::map_predictor::{IntersectionPolicy, MapPredictor};
use crate::predictor::Predictor;
use crate::protocol::{DeadReckoningEngine, ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update, UpdateKind};
use mbdr_geo::{MotionEstimator, Vec2};
use mbdr_mapmatch::{MapMatcher, MatchResult, MatcherConfig};
use mbdr_roadnet::{LinkLocator, NodeId, RoadNetwork};
use std::sync::Arc;

/// The map-based dead-reckoning protocol.
pub struct MapBasedDeadReckoning {
    engine: DeadReckoningEngine,
    estimator: MotionEstimator,
    matcher: MapMatcher,
    network: Arc<RoadNetwork>,
    /// Whether the last transmitted state carried a link (map mode) or not
    /// (linear-prediction fallback mode).
    server_in_map_mode: Option<bool>,
}

impl std::fmt::Debug for MapBasedDeadReckoning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapBasedDeadReckoning")
            .field("engine", &self.engine)
            .field("window", &self.estimator.window())
            .field("server_in_map_mode", &self.server_in_map_mode)
            .finish()
    }
}

impl MapBasedDeadReckoning {
    /// Creates the protocol with the paper's smallest-angle intersection
    /// policy.
    pub fn new(
        network: Arc<RoadNetwork>,
        config: ProtocolConfig,
        interpolation_window: usize,
        matching_tolerance: f64,
    ) -> Self {
        Self::with_policy(
            network,
            config,
            interpolation_window,
            matching_tolerance,
            IntersectionPolicy::SmallestAngle,
        )
    }

    /// Creates the protocol with an explicit intersection policy (used by the
    /// probability-enhanced variant and by the ablation benches).
    pub fn with_policy(
        network: Arc<RoadNetwork>,
        config: ProtocolConfig,
        interpolation_window: usize,
        matching_tolerance: f64,
        policy: IntersectionPolicy,
    ) -> Self {
        let locator = Arc::new(LinkLocator::build(&network));
        Self::with_locator(
            network,
            locator,
            config,
            interpolation_window,
            matching_tolerance,
            policy,
        )
    }

    /// Creates the protocol reusing an existing [`LinkLocator`] (building the
    /// spatial index once per map and sharing it across protocol instances is
    /// what a real deployment — and the fleet simulator — does).
    pub fn with_locator(
        network: Arc<RoadNetwork>,
        locator: Arc<LinkLocator>,
        config: ProtocolConfig,
        interpolation_window: usize,
        matching_tolerance: f64,
        policy: IntersectionPolicy,
    ) -> Self {
        let predictor = Arc::new(MapPredictor::with_policy(Arc::clone(&network), policy));
        let matcher = MapMatcher::new(
            Arc::clone(&network),
            locator,
            MatcherConfig::with_tolerance(matching_tolerance),
        );
        MapBasedDeadReckoning {
            engine: DeadReckoningEngine::new(config, predictor),
            estimator: MotionEstimator::new(interpolation_window),
            matcher,
            network,
            server_in_map_mode: None,
        }
    }

    /// The map-matching tolerance `u_m` in force.
    pub fn matching_tolerance(&self) -> f64 {
        self.matcher.config().tolerance
    }

    /// Builds the reported object state from a match result and the motion
    /// estimate.
    fn build_state(
        network: &RoadNetwork,
        m: &MatchResult,
        speed: f64,
        heading: f64,
        t: f64,
    ) -> ObjectState {
        match m.link {
            Some(link_id) => {
                let link = network.link(link_id);
                // Which endpoint is the object heading towards? Compare the
                // estimated heading with the link direction at the matched
                // position.
                let link_dir = link.geometry.direction_at_arc_length(m.arc_length);
                let heading_vec = Vec2::from_heading(heading);
                let towards: NodeId =
                    if link_dir.dot(&heading_vec) >= 0.0 { link.to } else { link.from };
                ObjectState {
                    position: m.corrected,
                    speed,
                    heading,
                    timestamp: t,
                    link: Some(link_id),
                    arc_length: m.arc_length,
                    towards: Some(towards),
                    turn_rate: 0.0,
                }
            }
            None => ObjectState::basic(m.corrected, speed, heading, t),
        }
    }
}

impl UpdateProtocol for MapBasedDeadReckoning {
    fn name(&self) -> &str {
        "map-based dead reckoning"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        let estimate = self.estimator.push(s.t, s.position);
        let m = self.matcher.update(s.position);

        // Losing the map forces an update: "When after forward- or
        // back-tracking no matching link could be found, the source sends an
        // update message with an empty link to the server." Returning to the
        // map needs no forced update — the last *reported* state (with its
        // empty link) is what both ends predict from, so they stay consistent
        // and the next bound violation naturally carries the new link.
        let now_in_map_mode = m.is_matched();
        let force = match self.server_in_map_mode {
            Some(true) if !now_in_map_mode => Some(UpdateKind::ModeChange),
            _ => None,
        };

        let network = Arc::clone(&self.network);
        let update = self.engine.decide(s.t, s.position, s.accuracy, force, || {
            Self::build_state(&network, &m, estimate.speed, estimate.heading, s.t)
        });
        if update.is_some() {
            self.server_in_map_mode = Some(now_in_map_mode);
        }
        update
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.engine.predictor()
    }

    fn config(&self) -> ProtocolConfig {
        self.engine.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearDeadReckoning;
    use mbdr_geo::Point;
    use mbdr_geo::Polyline;
    use mbdr_roadnet::{NetworkBuilder, RoadClass};

    /// A curving road: 2 km of gentle S-curve with shape points every 100 m,
    /// as a single link between two nodes, followed by a straight continuation.
    fn curvy_network() -> (Arc<RoadNetwork>, Vec<Point>) {
        let mut vertices = Vec::new();
        for i in 0..=20 {
            let x = 100.0 * i as f64;
            let y = 150.0 * (x / 2_000.0 * std::f64::consts::TAU).sin();
            vertices.push(Point::new(x, y));
        }
        let mut b = NetworkBuilder::new();
        let a = b.add_node(vertices[0]);
        let c = b.add_node(*vertices.last().unwrap());
        b.add_link_with_geometry(a, c, Polyline::new(vertices.clone()), RoadClass::Trunk);
        // Straight continuation so the prediction has somewhere to go.
        let d = b.add_node(Point::new(4_000.0, 0.0));
        b.add_straight_link(c, d, RoadClass::Trunk);
        let net = Arc::new(b.build().unwrap());
        // Ground-truth drive: follow the link geometry at 20 m/s (1 sample/s).
        let poly = Polyline::new(vertices);
        let mut positions = Vec::new();
        let mut s = 0.0;
        while s < poly.length() {
            positions.push(poly.point_at_arc_length(s));
            s += 20.0;
        }
        (net, positions)
    }

    fn run(protocol: &mut dyn UpdateProtocol, positions: &[Point]) -> usize {
        positions
            .iter()
            .enumerate()
            .filter(|(t, p)| {
                protocol
                    .on_sighting(Sighting { t: *t as f64, position: **p, accuracy: 3.0 })
                    .is_some()
            })
            .count()
    }

    #[test]
    fn follows_curves_that_defeat_linear_prediction() {
        let (net, positions) = curvy_network();
        let config = ProtocolConfig::new(50.0);
        let mut map_based = MapBasedDeadReckoning::new(Arc::clone(&net), config, 2, 30.0);
        let mut linear = LinearDeadReckoning::new(config, 2);
        let map_updates = run(&mut map_based, &positions);
        let linear_updates = run(&mut linear, &positions);
        assert!(
            map_updates < linear_updates,
            "map-based {map_updates} must beat linear {linear_updates} on a curvy road"
        );
        // On a constant-speed drive along the known geometry the map-based
        // protocol needs very few updates.
        assert!(map_updates <= 3, "got {map_updates}");
    }

    #[test]
    fn update_carries_the_link_and_corrected_position() {
        let (net, positions) = curvy_network();
        let mut p =
            MapBasedDeadReckoning::new(Arc::clone(&net), ProtocolConfig::new(50.0), 2, 30.0);
        let first = p
            .on_sighting(Sighting { t: 0.0, position: positions[0], accuracy: 3.0 })
            .expect("initial update");
        assert!(first.state.link.is_some(), "map-based update must carry the link id");
        assert!(first.state.towards.is_some());
        // The corrected position lies on the link (distance ~ 0 from geometry).
        let link = net.link(first.state.link.unwrap());
        assert!(link.geometry.distance_to(&first.state.position) < 1e-6);
    }

    #[test]
    fn leaving_the_map_forces_a_mode_change_update_with_empty_link() {
        let (net, positions) = curvy_network();
        let mut p =
            MapBasedDeadReckoning::new(Arc::clone(&net), ProtocolConfig::new(500.0), 2, 30.0);
        // Start on the road…
        p.on_sighting(Sighting { t: 0.0, position: positions[0], accuracy: 3.0 });
        p.on_sighting(Sighting { t: 1.0, position: positions[1], accuracy: 3.0 });
        // …then teleport far away from every link (e.g. into a car park).
        let off = Point::new(positions[1].x, positions[1].y + 500.0);
        let u = p
            .on_sighting(Sighting { t: 2.0, position: off, accuracy: 3.0 })
            .expect("losing the map must force an update even inside the accuracy bound");
        assert_eq!(u.kind, UpdateKind::ModeChange);
        assert!(u.state.link.is_none(), "the forced update carries an empty link");
        // Returning to the road triggers no *forced* mode-change update; here
        // the teleport made the linear prediction diverge far beyond the
        // bound, so a regular deviation-bound update follows and carries the
        // re-acquired link.
        let back = p
            .on_sighting(Sighting { t: 3.0, position: positions[2], accuracy: 3.0 })
            .expect("the bogus off-road velocity makes the prediction miss by far");
        assert_eq!(back.kind, UpdateKind::DeviationBound);
        assert!(back.state.link.is_some());
    }

    #[test]
    fn stationary_object_sends_only_the_initial_update() {
        let (net, positions) = curvy_network();
        let mut p = MapBasedDeadReckoning::new(net, ProtocolConfig::new(50.0), 2, 30.0);
        let mut updates = 0;
        for t in 0..120 {
            if p.on_sighting(Sighting { t: t as f64, position: positions[0], accuracy: 3.0 })
                .is_some()
            {
                updates += 1;
            }
        }
        assert_eq!(updates, 1);
    }

    #[test]
    fn exposes_configuration() {
        let (net, _) = curvy_network();
        let p = MapBasedDeadReckoning::new(net, ProtocolConfig::new(75.0), 4, 25.0);
        assert_eq!(p.config().requested_accuracy, 75.0);
        assert_eq!(p.matching_tolerance(), 25.0);
        assert_eq!(p.predictor().name(), "map-based");
        assert!(p.name().contains("map-based"));
    }
}
