//! Time-based reporting: a PCS-style baseline.
//!
//! Related-work baseline (Bar-Noy et al. \[1\] discuss time-, movement- and
//! distance-based location updating for cellular networks): the source simply
//! reports its position every `interval` seconds. It cannot guarantee an
//! accuracy bound — the deviation between updates is `speed × interval` — but
//! it is the natural "dumb" comparison point and the ablation benches use it
//! to show what guarantee-driven protocols buy.

use crate::predictor::{Predictor, StaticPredictor};
use crate::protocol::{ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update, UpdateKind};
use std::sync::Arc;

/// Periodic position reporting.
#[derive(Debug, Clone)]
pub struct TimeBasedReporting {
    interval: f64,
    config: ProtocolConfig,
    predictor: Arc<StaticPredictor>,
    last_sent_t: Option<f64>,
    sequence: u64,
}

impl TimeBasedReporting {
    /// Creates a reporter that sends every `interval` seconds.
    pub fn new(interval: f64, config: ProtocolConfig) -> Self {
        assert!(interval > 0.0, "reporting interval must be positive");
        TimeBasedReporting {
            interval,
            config,
            predictor: Arc::new(StaticPredictor),
            last_sent_t: None,
            sequence: 0,
        }
    }

    /// The reporting interval, seconds.
    pub fn interval(&self) -> f64 {
        self.interval
    }
}

impl UpdateProtocol for TimeBasedReporting {
    fn name(&self) -> &str {
        "time-based reporting"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        let due = match self.last_sent_t {
            None => true,
            Some(last) => s.t - last >= self.interval - 1e-9,
        };
        if !due {
            return None;
        }
        let kind =
            if self.last_sent_t.is_none() { UpdateKind::Initial } else { UpdateKind::Periodic };
        self.last_sent_t = Some(s.t);
        let update = Update {
            sequence: self.sequence,
            state: ObjectState::basic(s.position, 0.0, 0.0, s.t),
            kind,
        };
        self.sequence += 1;
        Some(update)
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.predictor.clone()
    }

    fn config(&self) -> ProtocolConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_geo::Point;

    #[test]
    fn sends_exactly_once_per_interval() {
        let mut p = TimeBasedReporting::new(10.0, ProtocolConfig::new(100.0));
        let mut updates = 0;
        for t in 0..100 {
            let s = Sighting { t: t as f64, position: Point::new(t as f64, 0.0), accuracy: 3.0 };
            if p.on_sighting(s).is_some() {
                updates += 1;
            }
        }
        assert_eq!(updates, 10);
        assert_eq!(p.interval(), 10.0);
    }

    #[test]
    fn first_update_is_immediate_and_marked_initial() {
        let mut p = TimeBasedReporting::new(60.0, ProtocolConfig::new(100.0));
        let u = p
            .on_sighting(Sighting { t: 5.0, position: Point::ORIGIN, accuracy: 3.0 })
            .expect("immediate first update");
        assert_eq!(u.kind, UpdateKind::Initial);
        assert!(p
            .on_sighting(Sighting { t: 6.0, position: Point::ORIGIN, accuracy: 3.0 })
            .is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_is_rejected() {
        let _ = TimeBasedReporting::new(0.0, ProtocolConfig::new(100.0));
    }
}
