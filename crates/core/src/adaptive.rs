//! Wolfson-style adaptive threshold policies (sdr / adr / dtdr).
//!
//! The related work the paper builds on (Wolfson et al. \[12\]) studies dead
//! reckoning where the update threshold is not fixed but chosen to minimise a
//! cost that charges both for update messages and for uncertainty:
//!
//! * **sdr** (speed dead reckoning): a fixed threshold — equivalent to the
//!   plain linear protocol here;
//! * **adr** (adaptive dead reckoning): after each update the threshold is
//!   recomputed from the observed deviation growth rate, balancing the cost of
//!   an update against the cost of carrying uncertainty;
//! * **dtdr** (disconnection-detection dead reckoning): the threshold decays
//!   over time while no update is sent, so a long silence implies a tight
//!   bound on the uncertainty and a disconnected source is noticed quickly.
//!
//! These policies do not guarantee a fixed accuracy `u_s`; they are included
//! as the prior-art comparison points for the ablation benchmarks.

use crate::predictor::{LinearPredictor, Predictor};
use crate::protocol::{ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::{ObjectState, Update, UpdateKind};
use mbdr_geo::MotionEstimator;
use std::sync::Arc;

/// How the send threshold evolves over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptivePolicy {
    /// Fixed threshold (Wolfson's *speed dead reckoning*).
    Fixed,
    /// Cost-balancing threshold (Wolfson's *adaptive dead reckoning*): after
    /// each update the threshold is set to `sqrt(2 · update_cost · a /
    /// deviation_cost)`, where `a` is the observed deviation growth rate in
    /// m/s — the minimiser of `update_cost / T + deviation_cost · a · T / 2`
    /// for an inter-update interval `T`.
    CostBased {
        /// Cost charged per update message (arbitrary units).
        update_cost: f64,
        /// Cost charged per metre of deviation per second (same units).
        deviation_cost: f64,
    },
    /// Declining threshold (Wolfson's *disconnection-detection dead
    /// reckoning*): the threshold shrinks exponentially while no update is
    /// sent, with a floor.
    Declining {
        /// Fraction of the threshold lost per second of silence.
        decay_per_second: f64,
        /// Minimum threshold, metres.
        floor: f64,
    },
}

/// Linear-prediction dead reckoning with an adaptive send threshold.
pub struct AdaptiveDeadReckoning {
    policy: AdaptivePolicy,
    base_config: ProtocolConfig,
    predictor: Arc<LinearPredictor>,
    estimator: MotionEstimator,
    last_reported: Option<ObjectState>,
    current_threshold: f64,
    last_update_t: f64,
    sequence: u64,
}

impl AdaptiveDeadReckoning {
    /// Creates the protocol. `base_config.requested_accuracy` is the initial
    /// (and, for [`AdaptivePolicy::Fixed`], permanent) threshold.
    pub fn new(
        policy: AdaptivePolicy,
        base_config: ProtocolConfig,
        interpolation_window: usize,
    ) -> Self {
        AdaptiveDeadReckoning {
            policy,
            base_config,
            predictor: Arc::new(LinearPredictor),
            estimator: MotionEstimator::new(interpolation_window),
            last_reported: None,
            current_threshold: base_config.requested_accuracy,
            last_update_t: 0.0,
            sequence: 0,
        }
    }

    /// The threshold currently in force, metres.
    pub fn current_threshold(&self) -> f64 {
        self.current_threshold
    }

    fn effective_threshold(&self, t: f64) -> f64 {
        match self.policy {
            AdaptivePolicy::Fixed | AdaptivePolicy::CostBased { .. } => self.current_threshold,
            AdaptivePolicy::Declining { decay_per_second, floor } => {
                let silence = (t - self.last_update_t).max(0.0);
                (self.current_threshold * (-decay_per_second * silence).exp()).max(floor)
            }
        }
    }

    fn adapt_after_update(&mut self, deviation: f64, t: f64) {
        if let AdaptivePolicy::CostBased { update_cost, deviation_cost } = self.policy {
            let interval = (t - self.last_update_t).max(1.0);
            // Observed deviation growth rate since the previous update.
            let growth = (deviation / interval).max(0.05);
            let optimal = (2.0 * update_cost * growth / deviation_cost.max(1e-9)).sqrt();
            // Keep the threshold within a sane band around the base accuracy.
            self.current_threshold = optimal.clamp(
                self.base_config.requested_accuracy * 0.2,
                self.base_config.requested_accuracy * 5.0,
            );
        }
    }
}

impl UpdateProtocol for AdaptiveDeadReckoning {
    fn name(&self) -> &str {
        match self.policy {
            AdaptivePolicy::Fixed => "sdr (fixed-threshold dead reckoning)",
            AdaptivePolicy::CostBased { .. } => "adr (adaptive dead reckoning)",
            AdaptivePolicy::Declining { .. } => "dtdr (disconnection-detection dead reckoning)",
        }
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        let estimate = self.estimator.push(s.t, s.position);
        let (send, kind, deviation) = match &self.last_reported {
            None => (true, UpdateKind::Initial, 0.0),
            Some(last) => {
                let predicted = self.predictor.predict(last, s.t);
                let deviation = s.position.distance(&predicted) + s.accuracy;
                (deviation > self.effective_threshold(s.t), UpdateKind::DeviationBound, deviation)
            }
        };
        if !send {
            return None;
        }
        self.adapt_after_update(deviation, s.t);
        self.last_update_t = s.t;
        let state = ObjectState::basic(s.position, estimate.speed, estimate.heading, s.t);
        self.last_reported = Some(state);
        let update = Update { sequence: self.sequence, state, kind };
        self.sequence += 1;
        Some(update)
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.predictor.clone()
    }

    fn config(&self) -> ProtocolConfig {
        self.base_config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_geo::Point;

    /// A slalom drive where linear prediction keeps failing.
    fn slalom(n: usize) -> Vec<Point> {
        (0..n).map(|t| Point::new(15.0 * t as f64, 100.0 * ((t as f64) * 0.08).sin())).collect()
    }

    fn run(p: &mut dyn UpdateProtocol, positions: &[Point]) -> usize {
        positions
            .iter()
            .enumerate()
            .filter(|(t, pos)| {
                p.on_sighting(Sighting { t: *t as f64, position: **pos, accuracy: 3.0 }).is_some()
            })
            .count()
    }

    #[test]
    fn fixed_policy_matches_plain_linear_behaviour() {
        let positions = slalom(300);
        let mut fixed =
            AdaptiveDeadReckoning::new(AdaptivePolicy::Fixed, ProtocolConfig::new(50.0), 4);
        let mut linear = crate::linear::LinearDeadReckoning::new(ProtocolConfig::new(50.0), 4);
        assert_eq!(run(&mut fixed, &positions), run(&mut linear, &positions));
        assert_eq!(fixed.current_threshold(), 50.0);
    }

    #[test]
    fn cost_based_threshold_adapts_to_the_motion() {
        let positions = slalom(400);
        let mut adr = AdaptiveDeadReckoning::new(
            AdaptivePolicy::CostBased { update_cost: 500.0, deviation_cost: 1.0 },
            ProtocolConfig::new(50.0),
            4,
        );
        run(&mut adr, &positions);
        // The threshold must have moved away from its initial value.
        assert_ne!(adr.current_threshold(), 50.0);
        assert!(adr.current_threshold() >= 10.0 && adr.current_threshold() <= 250.0);
        assert!(adr.name().starts_with("adr"));
    }

    #[test]
    fn expensive_updates_mean_fewer_updates() {
        let positions = slalom(400);
        let mut cheap = AdaptiveDeadReckoning::new(
            AdaptivePolicy::CostBased { update_cost: 50.0, deviation_cost: 1.0 },
            ProtocolConfig::new(50.0),
            4,
        );
        let mut expensive = AdaptiveDeadReckoning::new(
            AdaptivePolicy::CostBased { update_cost: 5_000.0, deviation_cost: 1.0 },
            ProtocolConfig::new(50.0),
            4,
        );
        let cheap_updates = run(&mut cheap, &positions);
        let expensive_updates = run(&mut expensive, &positions);
        assert!(
            expensive_updates < cheap_updates,
            "expensive {expensive_updates} vs cheap {cheap_updates}"
        );
    }

    #[test]
    fn declining_threshold_sends_even_with_small_deviations() {
        // Nearly straight, slow drift: a fixed 100 m threshold would stay
        // silent for the whole 10 minutes, but the declining policy must emit
        // periodic liveness updates.
        let positions: Vec<Point> =
            (0..600).map(|t| Point::new(10.0 * t as f64, 0.002 * (t as f64).powi(2))).collect();
        let mut fixed =
            AdaptiveDeadReckoning::new(AdaptivePolicy::Fixed, ProtocolConfig::new(100.0), 2);
        let mut dtdr = AdaptiveDeadReckoning::new(
            AdaptivePolicy::Declining { decay_per_second: 0.02, floor: 10.0 },
            ProtocolConfig::new(100.0),
            2,
        );
        let fixed_updates = run(&mut fixed, &positions);
        let dtdr_updates = run(&mut dtdr, &positions);
        assert!(dtdr_updates > fixed_updates, "dtdr {dtdr_updates} vs fixed {fixed_updates}");
        assert!(dtdr.name().starts_with("dtdr"));
    }
}
