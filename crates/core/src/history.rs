//! History-based dead reckoning: learn the map from past traces.
//!
//! "If no map is available, it can be generated from traces of the user's past
//! movements. A user will often use routes repeatedly … If the movements are
//! observed over a long time, the result is a map, which can be used as in the
//! map-based protocols." (paper, Section 2)
//!
//! [`MapLearner`] turns one or more position traces into a [`RoadNetwork`]:
//! trace points are snapped to a coarse grid, each occupied grid cell becomes
//! a node (placed at the centroid of its points), and consecutive cells along
//! a trace become links. Repeated journeys refine the same cells, so the
//! learned map converges on the network of roads the user actually drives.
//! [`HistoryBasedDeadReckoning`] is simply the map-based protocol running on
//! such a learned map.

use crate::map_based::MapBasedDeadReckoning;
use crate::map_predictor::IntersectionPolicy;
use crate::predictor::Predictor;
use crate::protocol::{ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::Update;
use mbdr_geo::Point;
use mbdr_roadnet::{NetworkBuilder, NodeId, RoadClass, RoadNetwork};
use std::collections::HashMap;
use std::sync::Arc;

/// Learns a road network from observed position traces.
#[derive(Debug, Clone)]
pub struct MapLearner {
    /// Grid cell size used to cluster trace points into nodes, metres.
    cell_size: f64,
    /// Accumulated points per cell: (sum x, sum y, count).
    cells: HashMap<(i64, i64), (f64, f64, u64)>,
    /// Observed connections between cells (unordered pairs).
    edges: Vec<((i64, i64), (i64, i64))>,
}

impl MapLearner {
    /// Creates a learner with the given clustering cell size (typically a few
    /// times the sensor uncertainty; 40–60 m works well for road traces).
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 1.0, "cell size must be at least a metre");
        MapLearner { cell_size, cells: HashMap::new(), edges: Vec::new() }
    }

    fn cell_of(&self, p: &Point) -> (i64, i64) {
        ((p.x / self.cell_size).floor() as i64, (p.y / self.cell_size).floor() as i64)
    }

    /// Number of distinct cells (future nodes) observed so far.
    pub fn observed_cells(&self) -> usize {
        self.cells.len()
    }

    /// Feeds one journey (a time-ordered sequence of positions) into the
    /// learner.
    pub fn observe_trace<'a, I: IntoIterator<Item = &'a Point>>(&mut self, positions: I) {
        let mut previous_cell: Option<(i64, i64)> = None;
        for p in positions {
            let cell = self.cell_of(p);
            let entry = self.cells.entry(cell).or_insert((0.0, 0.0, 0));
            entry.0 += p.x;
            entry.1 += p.y;
            entry.2 += 1;
            if let Some(prev) = previous_cell {
                if prev != cell {
                    let key = if prev <= cell { (prev, cell) } else { (cell, prev) };
                    if !self.edges.contains(&key) {
                        self.edges.push(key);
                    }
                }
            }
            previous_cell = Some(cell);
        }
    }

    /// Builds the learned road network. Cells become nodes at the centroid of
    /// their observed points; observed cell-to-cell transitions become links.
    pub fn build(&self) -> RoadNetwork {
        let mut builder = NetworkBuilder::new();
        let mut node_of_cell: HashMap<(i64, i64), NodeId> = HashMap::new();
        // Deterministic ordering of cells so the learned map does not depend on
        // hash-map iteration order.
        let mut cells: Vec<_> = self.cells.iter().collect();
        cells.sort_by_key(|(key, _)| **key);
        for (key, (sx, sy, n)) in cells {
            let centroid = Point::new(sx / *n as f64, sy / *n as f64);
            node_of_cell.insert(*key, builder.add_node(centroid));
        }
        for (a, b) in &self.edges {
            let (Some(&na), Some(&nb)) = (node_of_cell.get(a), node_of_cell.get(b)) else {
                continue;
            };
            if na == nb {
                continue;
            }
            builder.add_straight_link(na, nb, RoadClass::Residential);
        }
        builder.build_unchecked()
    }
}

/// The map-based protocol running on a map learned from past traces.
pub struct HistoryBasedDeadReckoning {
    inner: MapBasedDeadReckoning,
    learned_map: Arc<RoadNetwork>,
}

impl HistoryBasedDeadReckoning {
    /// Creates the protocol from an already-trained learner.
    pub fn from_learner(
        learner: &MapLearner,
        config: ProtocolConfig,
        interpolation_window: usize,
        matching_tolerance: f64,
    ) -> Self {
        let learned_map = Arc::new(learner.build());
        HistoryBasedDeadReckoning {
            inner: MapBasedDeadReckoning::with_policy(
                Arc::clone(&learned_map),
                config,
                interpolation_window,
                matching_tolerance,
                IntersectionPolicy::SmallestAngle,
            ),
            learned_map,
        }
    }

    /// The learned map the protocol predicts on.
    pub fn learned_map(&self) -> &Arc<RoadNetwork> {
        &self.learned_map
    }
}

impl UpdateProtocol for HistoryBasedDeadReckoning {
    fn name(&self) -> &str {
        "history-based dead reckoning"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        self.inner.on_sighting(s)
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.inner.predictor()
    }

    fn config(&self) -> ProtocolConfig {
        self.inner.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearDeadReckoning;

    /// A commute along an L-shaped road, repeated several times.
    fn commute_positions() -> Vec<Point> {
        let mut out = Vec::new();
        // East for 2 km, then north for 2 km, 20 m between samples.
        for i in 0..100 {
            out.push(Point::new(20.0 * i as f64, 0.0));
        }
        for i in 0..100 {
            out.push(Point::new(2_000.0, 20.0 * i as f64));
        }
        out
    }

    #[test]
    fn learner_builds_a_connected_chain_from_a_trace() {
        let mut learner = MapLearner::new(50.0);
        learner.observe_trace(commute_positions().iter());
        let map = learner.build();
        assert!(map.node_count() > 40, "roughly one node per 50 m of the 4 km commute");
        assert!(map.link_count() >= map.node_count() - 1);
        assert!(map.is_connected());
        // The learned geometry covers the commute corridor.
        let bb = map.bounding_box().unwrap();
        assert!(bb.contains(&Point::new(1_000.0, 0.0)));
        assert!(bb.contains(&Point::new(2_000.0, 1_500.0)));
    }

    #[test]
    fn repeated_observation_does_not_blow_up_the_map() {
        let mut learner = MapLearner::new(50.0);
        for _ in 0..5 {
            learner.observe_trace(commute_positions().iter());
        }
        let cells_after_five = learner.observed_cells();
        let map = learner.build();
        assert_eq!(map.node_count(), cells_after_five, "same roads, same nodes");
    }

    #[test]
    fn history_protocol_beats_linear_on_the_learned_commute() {
        let positions = commute_positions();
        let mut learner = MapLearner::new(50.0);
        learner.observe_trace(positions.iter());
        let config = ProtocolConfig::new(60.0);
        let mut history = HistoryBasedDeadReckoning::from_learner(&learner, config, 2, 40.0);
        let mut linear = LinearDeadReckoning::new(config, 2);
        let run = |p: &mut dyn UpdateProtocol| {
            positions
                .iter()
                .enumerate()
                .filter(|(t, pos)| {
                    p.on_sighting(Sighting { t: *t as f64, position: **pos, accuracy: 3.0 })
                        .is_some()
                })
                .count()
        };
        let history_updates = run(&mut history);
        let linear_updates = run(&mut linear);
        assert!(
            history_updates <= linear_updates,
            "history {history_updates} should not lose to linear {linear_updates} on its own commute"
        );
        assert!(history.learned_map().link_count() > 0);
        assert!(history.name().contains("history"));
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn tiny_cell_size_is_rejected() {
        let _ = MapLearner::new(0.5);
    }
}
