//! Map-based dead reckoning with probability information.
//!
//! "To improve the prediction of the subsequent direction after a mobile
//! object has passed an intersection, the links in the map can be enhanced
//! with probability information. These probabilities may describe what
//! percentage of all users follows a certain link (user-independent) or how
//! many times a certain object follows this link when moving over the
//! intersection (user-specific). The prediction function then assumes that the
//! object is following the link with the highest probability." (paper,
//! Section 2)
//!
//! The protocol is the map-based protocol with the
//! [`IntersectionPolicy::HighestProbability`] policy; the transition table can
//! be trained offline from past routes ([`learn_transitions_from_route`]) —
//! the "certain effort to capture these probabilities" the paper mentions —
//! and shared user-independently or kept per object.

use crate::map_based::MapBasedDeadReckoning;
use crate::map_predictor::IntersectionPolicy;
use crate::predictor::Predictor;
use crate::protocol::{ProtocolConfig, Sighting, UpdateProtocol};
use crate::state::Update;
use mbdr_roadnet::{RoadNetwork, Route, TransitionTable};
use std::sync::Arc;

/// Map-based dead reckoning whose intersection choice follows the
/// highest-probability link.
pub struct ProbabilityMapDeadReckoning {
    inner: MapBasedDeadReckoning,
}

impl ProbabilityMapDeadReckoning {
    /// Creates the protocol with a (possibly pre-trained) transition table.
    pub fn new(
        network: Arc<RoadNetwork>,
        table: Arc<TransitionTable>,
        config: ProtocolConfig,
        interpolation_window: usize,
        matching_tolerance: f64,
    ) -> Self {
        ProbabilityMapDeadReckoning {
            inner: MapBasedDeadReckoning::with_policy(
                network,
                config,
                interpolation_window,
                matching_tolerance,
                IntersectionPolicy::HighestProbability(table),
            ),
        }
    }
}

impl UpdateProtocol for ProbabilityMapDeadReckoning {
    fn name(&self) -> &str {
        "map-based dead reckoning with probabilities"
    }

    fn on_sighting(&mut self, s: Sighting) -> Option<Update> {
        self.inner.on_sighting(s)
    }

    fn predictor(&self) -> Arc<dyn Predictor> {
        self.inner.predictor()
    }

    fn config(&self) -> ProtocolConfig {
        self.inner.config()
    }
}

/// Records every intersection transition of a route into a transition table.
///
/// Driving the same commute repeatedly and feeding each trip's route through
/// this function produces the user-specific probabilities; merging the tables
/// of many users produces the user-independent variant
/// ([`TransitionTable::merge`]).
pub fn learn_transitions_from_route(
    network: &RoadNetwork,
    route: &Route,
    table: &mut TransitionTable,
) {
    for i in 1..route.links.len() {
        let node = route.nodes[i];
        let from_link = route.links[i - 1];
        let to_link = route.links[i];
        // Only genuine decision points are informative.
        if network.degree(node) >= 3 {
            table.record(node, from_link, to_link);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_based::MapBasedDeadReckoning;
    use mbdr_geo::Point;
    use mbdr_roadnet::{NetworkBuilder, NodeId, RoadClass};

    /// A junction where the habitual route turns sharply right, so the
    /// smallest-angle heuristic systematically guesses wrong.
    ///
    /// ```text
    ///  A(0,0) ─── B(1000,0) ─── C(2000,50)    (straight on, slight left)
    ///                  │
    ///                  D(1000,-1000)          (the habitual sharp right)
    /// ```
    fn habit_network() -> (Arc<RoadNetwork>, Route) {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let bb = b.add_node(Point::new(1_000.0, 0.0));
        let c = b.add_node(Point::new(2_000.0, 50.0));
        let d = b.add_node(Point::new(1_000.0, -1_000.0));
        let approach = b.add_straight_link(a, bb, RoadClass::Arterial);
        let _straight = b.add_straight_link(bb, c, RoadClass::Arterial);
        let right = b.add_straight_link(bb, d, RoadClass::Arterial);
        let net = Arc::new(b.build().unwrap());
        let route =
            Route { nodes: vec![NodeId(0), NodeId(1), NodeId(3)], links: vec![approach, right] };
        assert!(route.is_valid(&net));
        (net, route)
    }

    /// Positions of a drive along the habitual route at 20 m/s.
    fn habitual_drive(net: &RoadNetwork, route: &Route) -> Vec<Point> {
        let poly = mbdr_geo::Polyline::new(route.path_points(net));
        let mut out = Vec::new();
        let mut s = 0.0;
        while s <= poly.length() {
            out.push(poly.point_at_arc_length(s));
            s += 20.0;
        }
        out
    }

    fn count_updates(protocol: &mut dyn UpdateProtocol, positions: &[Point]) -> usize {
        positions
            .iter()
            .enumerate()
            .filter(|(t, p)| {
                protocol
                    .on_sighting(Sighting { t: *t as f64, position: **p, accuracy: 3.0 })
                    .is_some()
            })
            .count()
    }

    #[test]
    fn learning_extracts_decision_point_transitions() {
        let (net, route) = habit_network();
        let mut table = TransitionTable::new();
        learn_transitions_from_route(&net, &route, &mut table);
        assert_eq!(table.observations(), 1);
        assert_eq!(table.most_likely(NodeId(1), route.links[0]), Some(route.links[1]));
    }

    #[test]
    fn probability_variant_beats_plain_map_based_on_habitual_routes() {
        let (net, route) = habit_network();
        let positions = habitual_drive(&net, &route);
        // Train the table from previous identical commutes.
        let mut table = TransitionTable::new();
        for _ in 0..5 {
            learn_transitions_from_route(&net, &route, &mut table);
        }
        let config = ProtocolConfig::new(80.0);
        let mut plain = MapBasedDeadReckoning::new(Arc::clone(&net), config, 2, 30.0);
        let mut prob =
            ProbabilityMapDeadReckoning::new(Arc::clone(&net), Arc::new(table), config, 2, 30.0);
        let plain_updates = count_updates(&mut plain, &positions);
        let prob_updates = count_updates(&mut prob, &positions);
        // The smallest-angle policy predicts "straight on" and must correct
        // itself after the turn; the probability policy knows the habit.
        assert!(
            prob_updates < plain_updates,
            "prob {prob_updates} should beat plain {plain_updates} at the habitual turn"
        );
    }

    #[test]
    fn untrained_table_behaves_like_plain_map_based() {
        let (net, route) = habit_network();
        let positions = habitual_drive(&net, &route);
        let config = ProtocolConfig::new(80.0);
        let mut plain = MapBasedDeadReckoning::new(Arc::clone(&net), config, 2, 30.0);
        let mut prob = ProbabilityMapDeadReckoning::new(
            Arc::clone(&net),
            Arc::new(TransitionTable::new()),
            config,
            2,
            30.0,
        );
        assert_eq!(count_updates(&mut plain, &positions), count_updates(&mut prob, &positions));
        assert!(prob.name().contains("probabilit"));
        assert_eq!(prob.predictor().name(), "map-based+prob");
    }
}
