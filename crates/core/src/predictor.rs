//! Prediction functions shared by source and server.
//!
//! "Both the source and the server use an identical function `pred()` to
//! predict a current position of the mobile object based on the last reported
//! object state" (paper, Section 2). A [`Predictor`] is exactly that function;
//! the concrete implementations here cover the non-map variants, and
//! [`crate::map_predictor::MapPredictor`] adds the map-based ones.

use crate::state::ObjectState;
use mbdr_geo::{Point, Vec2};

/// A deterministic prediction function `pred(reported_state, t) → position`.
///
/// Implementations must be pure with respect to their inputs: given the same
/// reported state and query time they must return the same position on the
/// source and on the server, otherwise the accuracy guarantee breaks.
pub trait Predictor: Send + Sync {
    /// Predicted position of the object at time `t`, based on the last
    /// reported state.
    fn predict(&self, reported: &ObjectState, t: f64) -> Point;

    /// Short human-readable name (for reports and plots).
    fn name(&self) -> &'static str;
}

/// "The object stays where it last reported": the prediction of the non-DR
/// distance-based reporting protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPredictor;

impl Predictor for StaticPredictor {
    fn predict(&self, reported: &ObjectState, _t: f64) -> Point {
        reported.position
    }
    fn name(&self) -> &'static str {
        "static"
    }
}

/// Linear prediction: the object continues on a straight line given by the
/// reported position and heading at the reported speed
/// (`pos + dir · v · (t − t₀)`, Fig. 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearPredictor;

impl Predictor for LinearPredictor {
    fn predict(&self, reported: &ObjectState, t: f64) -> Point {
        let dt = (t - reported.timestamp).max(0.0);
        let dir = Vec2::from_heading(reported.heading);
        reported.position + dir * (reported.speed * dt)
    }
    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Higher-order prediction: the object follows a circular arc determined by
/// the reported heading, speed and turn rate. With a zero turn rate this
/// degenerates to linear prediction, so it is a strict generalisation
/// ("curves or splines which, for example, could capture the object's
/// movements in a curve of the road", paper Section 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct ArcPredictor;

impl Predictor for ArcPredictor {
    fn predict(&self, reported: &ObjectState, t: f64) -> Point {
        let dt = (t - reported.timestamp).max(0.0);
        let omega = reported.turn_rate;
        if omega.abs() < 1e-6 {
            return LinearPredictor.predict(reported, t);
        }
        // Constant-speed, constant-turn-rate motion: the object moves along a
        // circle of radius v/ω. Integrate the heading analytically.
        let v = reported.speed;
        let h0 = reported.heading;
        let h1 = h0 + omega * dt;
        // Displacement = ∫ v·[sin h(t), cos h(t)] dt with h(t) = h0 + ω t.
        let dx = v / omega * (-(h1).cos() + h0.cos());
        let dy = v / omega * ((h1).sin() - h0.sin());
        reported.position + Vec2::new(dx, dy)
    }
    fn name(&self) -> &'static str {
        "arc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn state(heading: f64, speed: f64) -> ObjectState {
        ObjectState::basic(Point::new(100.0, 50.0), speed, heading, 10.0)
    }

    #[test]
    fn static_predictor_never_moves() {
        let s = state(0.0, 30.0);
        assert_eq!(StaticPredictor.predict(&s, 10.0), s.position);
        assert_eq!(StaticPredictor.predict(&s, 1_000.0), s.position);
        assert_eq!(StaticPredictor.name(), "static");
    }

    #[test]
    fn linear_predictor_moves_along_the_heading() {
        let s = state(FRAC_PI_2, 10.0); // heading east at 10 m/s
        let p = LinearPredictor.predict(&s, 15.0);
        assert!((p.x - 150.0).abs() < 1e-9);
        assert!((p.y - 50.0).abs() < 1e-9);
        // At the report time itself the prediction is the reported position.
        assert_eq!(LinearPredictor.predict(&s, 10.0), s.position);
        // Queries before the report time clamp to the reported position.
        assert_eq!(LinearPredictor.predict(&s, 5.0), s.position);
    }

    #[test]
    fn arc_predictor_with_zero_turn_rate_equals_linear() {
        let s = state(1.0, 20.0);
        for dt in [0.0, 1.0, 5.0, 30.0] {
            let a = ArcPredictor.predict(&s, 10.0 + dt);
            let l = LinearPredictor.predict(&s, 10.0 + dt);
            assert!(a.distance(&l) < 1e-9);
        }
    }

    #[test]
    fn arc_predictor_turns_at_the_requested_rate() {
        // Heading north, turning clockwise (towards east) at π/20 rad/s while
        // driving 10 m/s: after 10 s the heading is east and the object has
        // traced a quarter circle of radius v/ω = 200/π·... — just verify the
        // end point is east and north of the start and the path length is
        // correct to first order.
        let mut s = state(0.0, 10.0);
        s.turn_rate = std::f64::consts::FRAC_PI_2 / 10.0;
        let p = ArcPredictor.predict(&s, 20.0);
        assert!(p.x > s.position.x, "turned towards east");
        assert!(p.y > s.position.y, "still progressed north");
        // Chord of a quarter circle with arc length 100 → radius ≈ 63.7,
        // chord ≈ 90.0.
        let chord = p.distance(&s.position);
        assert!((chord - 90.03).abs() < 1.0, "chord {chord}");
    }

    #[test]
    fn arc_predictor_turning_left_mirrors_turning_right() {
        let mut right = state(0.0, 15.0);
        right.turn_rate = 0.05;
        let mut left = right;
        left.turn_rate = -0.05;
        let pr = ArcPredictor.predict(&right, 30.0);
        let pl = ArcPredictor.predict(&left, 30.0);
        // Same northward progress, mirrored east-west displacement.
        assert!((pr.y - pl.y).abs() < 1e-9);
        assert!((pr.x - right.position.x + (pl.x - right.position.x)).abs() < 1e-9);
    }

    #[test]
    fn predictors_are_object_safe() {
        let predictors: Vec<Box<dyn Predictor>> =
            vec![Box::new(StaticPredictor), Box::new(LinearPredictor), Box::new(ArcPredictor)];
        let s = state(0.3, 5.0);
        for p in &predictors {
            let pos = p.predict(&s, 12.0);
            assert!(pos.is_finite());
            assert!(!p.name().is_empty());
        }
    }
}
