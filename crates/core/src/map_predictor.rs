//! The map-based prediction function.
//!
//! "The prediction function assumes that the object goes on following the
//! reported link with its current speed starting from the reported position.
//! When coming to an intersection, the prediction function selects an outgoing
//! link, which it assumes the object to keep on following in the same manner.
//! In our implementation, the link with the smallest angle to the previous
//! link is selected." (paper, Section 3)
//!
//! [`MapPredictor`] implements that walk over the road network. The
//! intersection choice is pluggable ([`IntersectionPolicy`]) so the
//! probability-enhanced variant and the ablation benches (main-road priority,
//! random choice) can reuse the same walker.

use crate::predictor::{LinearPredictor, Predictor};
use crate::state::ObjectState;
use mbdr_geo::{Point, Vec2};
use mbdr_roadnet::{LinkId, NodeId, RoadNetwork, TransitionTable};
use std::sync::Arc;

/// How the predictor chooses the outgoing link at an intersection.
#[derive(Debug, Clone)]
pub enum IntersectionPolicy {
    /// The link whose departure direction has the smallest angle to the
    /// current direction of travel (the paper's choice).
    SmallestAngle,
    /// The link most frequently taken according to a transition table
    /// ("map-based with probability information"); falls back to the smallest
    /// angle when the situation has never been observed.
    HighestProbability(Arc<TransitionTable>),
    /// Prefer the link with the highest road-class priority (the paper's
    /// "ideally, the function would select the main road"); ties are broken by
    /// smallest angle.
    MainRoad,
    /// Deterministic pseudo-random choice (ablation lower bound): picks the
    /// link with the smallest id. Still deterministic so source and server
    /// agree.
    FirstLink,
}

/// Number of link transitions the predictor will walk through before giving
/// up and stopping at the last reached intersection. Bounds the work per
/// prediction; 64 links is far more than any realistic inter-update horizon.
const MAX_LINK_HOPS: usize = 64;

/// Map-based prediction function over a shared road network.
#[derive(Debug, Clone)]
pub struct MapPredictor {
    network: Arc<RoadNetwork>,
    policy: IntersectionPolicy,
}

impl MapPredictor {
    /// Creates a predictor with the paper's smallest-angle policy.
    pub fn new(network: Arc<RoadNetwork>) -> Self {
        MapPredictor { network, policy: IntersectionPolicy::SmallestAngle }
    }

    /// Creates a predictor with an explicit intersection policy.
    pub fn with_policy(network: Arc<RoadNetwork>, policy: IntersectionPolicy) -> Self {
        MapPredictor { network, policy }
    }

    /// The underlying network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.network
    }

    /// Chooses the outgoing link at `node`, arriving over `arriving` with the
    /// given direction of travel. Returns `None` when the node is a dead end.
    ///
    /// Allocation-free: candidates are drawn from the network's adjacency
    /// slice via [`RoadNetwork::outgoing_links_iter`] and re-iterated for
    /// multi-pass policies instead of being collected — this runs once per
    /// link hop inside every map-based prediction, so a fresh `Vec` here
    /// would put malloc on the predict hot path.
    fn choose_outgoing(
        &self,
        node: NodeId,
        arriving: LinkId,
        arrival_direction: Vec2,
    ) -> Option<LinkId> {
        let candidates = || self.network.outgoing_links_iter(node, Some(arriving));
        let smallest_angle = |iter: &mut dyn Iterator<Item = LinkId>| -> Option<LinkId> {
            iter.min_by(|&a, &b| {
                let da = self.departure_angle(a, node, arrival_direction);
                let db = self.departure_angle(b, node, arrival_direction);
                da.partial_cmp(&db).expect("angles are finite").then(a.cmp(&b))
            })
        };
        match &self.policy {
            IntersectionPolicy::SmallestAngle => smallest_angle(&mut candidates()),
            IntersectionPolicy::HighestProbability(table) => table
                .most_likely(node, arriving)
                .filter(|&l| candidates().any(|c| c == l))
                .or_else(|| smallest_angle(&mut candidates())),
            IntersectionPolicy::MainRoad => {
                let best_priority =
                    candidates().map(|l| self.network.link(l).class.priority()).max()?;
                smallest_angle(
                    &mut candidates()
                        .filter(|&l| self.network.link(l).class.priority() == best_priority),
                )
            }
            IntersectionPolicy::FirstLink => candidates().min(),
        }
    }

    /// Angle between the arrival direction and the departure direction of a
    /// candidate link at `node`.
    fn departure_angle(&self, link: LinkId, node: NodeId, arrival_direction: Vec2) -> f64 {
        let departure = self.network.link(link).departure_direction(node).unwrap_or(Vec2::NORTH);
        arrival_direction.angle_to(&departure)
    }
}

impl Predictor for MapPredictor {
    fn predict(&self, reported: &ObjectState, t: f64) -> Point {
        // Off the map (or a non-map update): fall back to linear prediction,
        // exactly as the protocol does ("In this case, the linear prediction
        // protocol is used as a fall-back").
        let Some(link_id) = reported.link else {
            return LinearPredictor.predict(reported, t);
        };
        let Some(link) = self.network.get_link(link_id) else {
            return LinearPredictor.predict(reported, t);
        };

        let dt = (t - reported.timestamp).max(0.0);
        let mut remaining = reported.speed * dt;

        // Current position along the current link and the endpoint we walk
        // towards. If the update did not carry a direction, derive it from the
        // reported heading relative to the link geometry.
        let mut current_link = link_id;
        let mut towards = reported.towards.unwrap_or_else(|| {
            let dir_at = link.geometry.direction_at_arc_length(reported.arc_length);
            let heading_vec = Vec2::from_heading(reported.heading);
            if dir_at.dot(&heading_vec) >= 0.0 {
                link.to
            } else {
                link.from
            }
        });
        // Distance from the reported position to the end of the link in the
        // direction of travel.
        let link_ref = link;
        let mut distance_to_end = if towards == link_ref.to {
            link_ref.length() - reported.arc_length
        } else {
            reported.arc_length
        }
        .max(0.0);

        let mut hops = 0usize;
        loop {
            if remaining <= distance_to_end || hops >= MAX_LINK_HOPS {
                // The predicted position lies on the current link.
                let l = self.network.link(current_link);
                let walk = remaining.min(distance_to_end);
                let arc = if towards == l.to {
                    // Moving towards `to`: arc length increases.
                    (l.length() - distance_to_end) + walk
                } else {
                    // Moving towards `from`: arc length decreases.
                    distance_to_end - walk
                };
                return l.geometry.point_at_arc_length(arc);
            }
            // Consume the rest of this link and cross the intersection.
            remaining -= distance_to_end;
            hops += 1;
            let l = self.network.link(current_link);
            let node = towards;
            // Direction of arrival at the node: the link's direction at the
            // node, oriented in travel direction.
            let arrival_direction = match l.departure_direction(node) {
                // `departure_direction(node)` points *away* from the node along
                // the link, i.e. back where we came from — negate it.
                Some(d) => -d,
                None => Vec2::NORTH,
            };
            match self.choose_outgoing(node, current_link, arrival_direction) {
                Some(next) => {
                    let next_link = self.network.link(next);
                    towards = next_link.other_end(node).unwrap_or(next_link.to);
                    distance_to_end = next_link.length();
                    current_link = next;
                }
                None => {
                    // Dead end: the prediction stops at the node.
                    return self.network.node(node).position;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.policy {
            IntersectionPolicy::SmallestAngle => "map-based",
            IntersectionPolicy::HighestProbability(_) => "map-based+prob",
            IntersectionPolicy::MainRoad => "map-based+mainroad",
            IntersectionPolicy::FirstLink => "map-based+first",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_roadnet::{NetworkBuilder, RoadClass};

    /// A Y-junction: approach road heading east, then a slight-left branch
    /// (continues roughly east-northeast) and a sharp-right branch (south).
    ///
    /// ```text
    ///  A(0,0) ──── B(500,0) ──── C(1000,120)   (slight left, arterial)
    ///                   \
    ///                    D(520,-500)           (sharp right, residential)
    /// ```
    fn y_junction() -> (Arc<RoadNetwork>, LinkId, LinkId, LinkId) {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let bb = b.add_node(Point::new(500.0, 0.0));
        let c = b.add_node(Point::new(1000.0, 120.0));
        let d = b.add_node(Point::new(520.0, -500.0));
        let approach = b.add_straight_link(a, bb, RoadClass::Arterial);
        let left = b.add_straight_link(bb, c, RoadClass::Arterial);
        let right = b.add_straight_link(bb, d, RoadClass::Residential);
        (Arc::new(b.build().unwrap()), approach, left, right)
    }

    fn reported_on(link: LinkId, arc: f64, speed: f64, towards: NodeId) -> ObjectState {
        ObjectState {
            position: Point::new(arc, 0.0),
            speed,
            heading: std::f64::consts::FRAC_PI_2,
            timestamp: 0.0,
            link: Some(link),
            arc_length: arc,
            towards: Some(towards),
            turn_rate: 0.0,
        }
    }

    #[test]
    fn prediction_walks_along_the_current_link() {
        let (net, approach, _, _) = y_junction();
        let pred = MapPredictor::new(net);
        let state = reported_on(approach, 100.0, 10.0, NodeId(1));
        // After 20 s at 10 m/s the object should be 200 m farther along.
        let p = pred.predict(&state, 20.0);
        assert!((p.x - 300.0).abs() < 1e-6);
        assert!(p.y.abs() < 1e-6);
        // At t = report time: exactly the reported position.
        assert!(pred.predict(&state, 0.0).distance(&Point::new(100.0, 0.0)) < 1e-9);
    }

    #[test]
    fn smallest_angle_policy_goes_straight_on_at_the_junction() {
        let (net, approach, left, _) = y_junction();
        let pred = MapPredictor::new(Arc::clone(&net));
        let state = reported_on(approach, 400.0, 10.0, NodeId(1));
        // 30 s → 300 m: 100 m to the junction, 200 m onto the slight-left
        // branch (the smallest-angle continuation).
        let p = pred.predict(&state, 30.0);
        let expected = net.link(left).geometry.point_at_arc_length(200.0);
        assert!(p.distance(&expected) < 1e-6, "got {p}, expected {expected}");
    }

    #[test]
    fn probability_policy_overrides_geometry() {
        let (net, approach, _, right) = y_junction();
        // The object habitually turns right at this junction.
        let mut table = TransitionTable::new();
        for _ in 0..5 {
            table.record(NodeId(1), approach, right);
        }
        let pred = MapPredictor::with_policy(
            Arc::clone(&net),
            IntersectionPolicy::HighestProbability(Arc::new(table)),
        );
        let state = reported_on(approach, 400.0, 10.0, NodeId(1));
        let p = pred.predict(&state, 30.0);
        let expected = net.link(right).geometry.point_at_arc_length(200.0);
        assert!(p.distance(&expected) < 1e-6, "got {p}, expected {expected}");
        assert_eq!(pred.name(), "map-based+prob");
    }

    #[test]
    fn unobserved_situations_fall_back_to_smallest_angle() {
        let (net, approach, left, _) = y_junction();
        let pred = MapPredictor::with_policy(
            Arc::clone(&net),
            IntersectionPolicy::HighestProbability(Arc::new(TransitionTable::new())),
        );
        let state = reported_on(approach, 400.0, 10.0, NodeId(1));
        let p = pred.predict(&state, 30.0);
        let expected = net.link(left).geometry.point_at_arc_length(200.0);
        assert!(p.distance(&expected) < 1e-6);
    }

    #[test]
    fn main_road_policy_prefers_the_higher_class() {
        // Make the sharp-right branch a trunk road; main-road policy must take
        // it even though the angle is worse.
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let bb = b.add_node(Point::new(500.0, 0.0));
        let c = b.add_node(Point::new(1000.0, 120.0));
        let d = b.add_node(Point::new(520.0, -500.0));
        let approach = b.add_straight_link(a, bb, RoadClass::Arterial);
        let _left = b.add_straight_link(bb, c, RoadClass::Residential);
        let right = b.add_straight_link(bb, d, RoadClass::Trunk);
        let net = Arc::new(b.build().unwrap());
        let pred = MapPredictor::with_policy(Arc::clone(&net), IntersectionPolicy::MainRoad);
        let state = reported_on(approach, 400.0, 10.0, NodeId(1));
        let p = pred.predict(&state, 30.0);
        let expected = net.link(right).geometry.point_at_arc_length(200.0);
        assert!(p.distance(&expected) < 1e-6);
    }

    #[test]
    fn dead_end_stops_the_prediction_at_the_node() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let e = b.add_node(Point::new(300.0, 0.0));
        let l = b.add_straight_link(a, e, RoadClass::Residential);
        let net = Arc::new(b.build().unwrap());
        let pred = MapPredictor::new(Arc::clone(&net));
        let state = reported_on(l, 100.0, 20.0, NodeId(1));
        // 60 s at 20 m/s = 1200 m, but the road ends after 300 m.
        let p = pred.predict(&state, 60.0);
        assert!(p.distance(&Point::new(300.0, 0.0)) < 1e-6);
    }

    #[test]
    fn off_map_state_uses_linear_prediction() {
        let (net, _, _, _) = y_junction();
        let pred = MapPredictor::new(net);
        let state =
            ObjectState::basic(Point::new(0.0, 0.0), 10.0, std::f64::consts::FRAC_PI_2, 0.0);
        let p = pred.predict(&state, 10.0);
        assert!((p.x - 100.0).abs() < 1e-9);
    }

    #[test]
    fn travelling_towards_the_from_node_walks_backwards() {
        let (net, approach, _, _) = y_junction();
        let pred = MapPredictor::new(Arc::clone(&net));
        let mut state = reported_on(approach, 400.0, 10.0, NodeId(0));
        state.heading = 1.5 * std::f64::consts::PI; // west
        let p = pred.predict(&state, 20.0);
        assert!((p.x - 200.0).abs() < 1e-6, "got {p}");
    }

    #[test]
    fn zero_speed_prediction_stays_put() {
        let (net, approach, _, _) = y_junction();
        let pred = MapPredictor::new(net);
        let state = reported_on(approach, 250.0, 0.0, NodeId(1));
        let p = pred.predict(&state, 500.0);
        assert!(p.distance(&Point::new(250.0, 0.0)) < 1e-9);
    }
}
