//! The torn-write corruption suite: every way a crash (or a hostile editor)
//! can mangle journal files must recover with typed errors and counted
//! truncation — never a panic, never silent acceptance of bad records.

use mbdr_journal::{
    FsyncPolicy, Journal, JournalConfig, JournalError, JOURNAL_VERSION, SEGMENT_MAGIC,
};
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("mbdr-journal-corruption-{}-{tag}-{seq}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> JournalConfig {
    JournalConfig {
        dir: dir.to_path_buf(),
        segment_max_bytes: 8 * 1024 * 1024,
        fsync: FsyncPolicy::PerBatch(4),
        snapshot_every_frames: 0,
    }
}

/// Appends `n` deterministic frames and closes the journal.
fn seed_journal(config: &JournalConfig, n: u8) {
    let journal = Journal::open(config.clone()).expect("seed open");
    for i in 0..n {
        journal.append_frame(&[i, 0xAB, i, 0xCD, i]).expect("seed append");
    }
    journal.flush().expect("seed flush");
}

fn segment_paths(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "mbdrj"))
        .collect();
    out.sort();
    out
}

fn replay_count(journal: &Journal) -> u64 {
    journal.replay(|_, _| {}).expect("replay")
}

#[test]
fn truncated_record_is_repaired_and_counted() {
    let dir = temp_dir("truncated");
    let config = config(&dir);
    seed_journal(&config, 10);
    let segment = segment_paths(&dir).pop().expect("segment exists");
    let len = fs::metadata(&segment).expect("meta").len();
    // Chop into the middle of the last record: a torn write.
    let file = OpenOptions::new().write(true).open(&segment).expect("open");
    file.set_len(len - 3).expect("truncate");
    drop(file);

    let journal = Journal::open(config).expect("recovery open");
    assert_eq!(journal.frames_appended(), 9, "last record was torn away");
    assert_eq!(replay_count(&journal), 9);
    let stats = journal.stats();
    assert!(stats.truncated_bytes > 0, "repair must be visible: {stats:?}");
    // The repaired journal accepts appends again.
    journal.append_frame(b"post-repair").expect("append after repair");
    assert_eq!(journal.frames_appended(), 10);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_checksum_byte_drops_the_record() {
    let dir = temp_dir("crc");
    let config = config(&dir);
    seed_journal(&config, 10);
    let segment = segment_paths(&dir).pop().expect("segment exists");
    let mut bytes = fs::read(&segment).expect("read");
    // Flip one payload byte of the final record: its CRC no longer matches.
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&segment, &bytes).expect("write back");

    let journal = Journal::open(config).expect("recovery open");
    assert_eq!(journal.frames_appended(), 9, "checksum failure truncates there");
    assert_eq!(replay_count(&journal), 9);
    assert!(journal.stats().truncated_bytes > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_tail_is_truncated_without_losing_valid_records() {
    let dir = temp_dir("garbage-tail");
    let config = config(&dir);
    seed_journal(&config, 10);
    let segment = segment_paths(&dir).pop().expect("segment exists");
    let mut file = OpenOptions::new().append(true).open(&segment).expect("open");
    file.write_all(&[0xFFu8; 64]).expect("garbage");
    drop(file);

    let journal = Journal::open(config).expect("recovery open");
    assert_eq!(journal.frames_appended(), 10, "every valid record survives");
    assert_eq!(replay_count(&journal), 10);
    assert_eq!(journal.stats().truncated_bytes, 64);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_partial_header_segments_are_discarded() {
    let dir = temp_dir("bad-segment");
    let config = config(&dir);
    seed_journal(&config, 5);
    // Two bogus later segments: one pure junk, one cut off mid-header —
    // both what a crash during segment creation can leave behind.
    fs::write(dir.join("seg-00000000000000000005.mbdrj"), b"not a journal segment").unwrap();
    fs::write(dir.join("seg-00000000000000000099.mbdrj"), &SEGMENT_MAGIC[..5]).unwrap();

    let journal = Journal::open(config).expect("recovery open");
    assert_eq!(journal.frames_appended(), 5);
    assert_eq!(replay_count(&journal), 5);
    assert!(journal.stats().truncated_bytes > 0);
    assert_eq!(segment_paths(&dir).len(), 1, "bogus segments deleted");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corruption_in_an_early_segment_discards_everything_after_it() {
    let dir = temp_dir("mid-log");
    let mut config = config(&dir);
    config.segment_max_bytes = 64; // many small segments
    seed_journal(&config, 20);
    let segments = segment_paths(&dir);
    assert!(segments.len() > 2, "need a multi-segment log, got {}", segments.len());
    // Corrupt a record in the SECOND segment: everything from that point on
    // is unreachable (records only become durable in order).
    let victim = &segments[1];
    let mut bytes = fs::read(victim).expect("read");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(victim, &bytes).expect("write back");

    let journal = Journal::open(config).expect("recovery open");
    let survivors = replay_count(&journal);
    assert!(survivors < 20, "later segments must not be replayed");
    assert_eq!(journal.frames_appended(), survivors);
    assert!(journal.stats().truncated_bytes > 0);
    // New appends continue from the repaired tail and survive a reopen.
    journal.append_frame(b"after-mid-log-repair").expect("append");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn future_format_version_is_a_typed_refusal_not_a_repair() {
    let dir = temp_dir("version");
    let config = config(&dir);
    fs::create_dir_all(&dir).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&SEGMENT_MAGIC);
    header.extend_from_slice(&(JOURNAL_VERSION + 1).to_be_bytes());
    header.extend_from_slice(&0u64.to_be_bytes());
    let path = dir.join("seg-00000000000000000000.mbdrj");
    fs::write(&path, &header).unwrap();

    let err = match Journal::open(config) {
        Ok(_) => panic!("newer format must refuse"),
        Err(err) => err,
    };
    assert!(
        matches!(err, JournalError::UnsupportedVersion { version, .. } if version == JOURNAL_VERSION + 1),
        "wrong error: {err}"
    );
    // Crucially the file was NOT deleted or truncated: a newer build's data
    // is never destructively "repaired" by an older one.
    assert_eq!(fs::read(&path).unwrap(), header);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_ignored_in_favor_of_the_log() {
    let dir = temp_dir("snapshot");
    let mut config = config(&dir);
    config.snapshot_every_frames = 4;
    let journal = Journal::open(config.clone()).expect("open");
    for i in 0..6u8 {
        journal.append_frame(&[i; 12]).expect("append");
    }
    let frames = journal.begin_snapshot().expect("snapshot due");
    journal.install_snapshot(frames, b"tracker-state").expect("install");
    drop(journal);
    // Flip a byte inside the snapshot body: checksum now fails.
    let snap: PathBuf = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "mbdrs"))
        .expect("snapshot file");
    let mut bytes = fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    fs::write(&snap, &bytes).unwrap();

    let journal = Journal::open(config).expect("recovery open");
    assert!(journal.load_snapshot().expect("no error").is_none(), "corrupt snapshot ignored");
    assert_eq!(journal.recovered_snapshot_frames(), None);
    // The un-compacted tail still replays.
    assert!(replay_count(&journal) > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn errors_render_human_readable_messages() {
    let io = JournalError::Io(std::io::Error::other("disk on fire"));
    assert!(format!("{io}").contains("disk on fire"));
    let record = JournalError::RecordTooLarge { len: 7 };
    assert!(format!("{record}").contains('7'));
}
