//! Seeded fault-injection suite: every corruption shape the hand-built
//! `corruption.rs` tests construct by editing bytes on disk is reproduced
//! here *from a seed alone*, by letting [`FaultFs`] strike the journal's own
//! writes at exact operation counts. The one exception is the future
//! format-version refusal — that is a format shape (bytes a newer build
//! wrote), not an I/O fault, so it stays hand-built in `corruption.rs`.
//!
//! Operation-index arithmetic (see the `vfs` module docs for what counts):
//! a fresh open consumes ops 0 (`create_new_append`) and 1 (segment header
//! `write_all`); with a large `PerBatch` fsync budget each append then
//! consumes exactly two ops — record header, then payload.

use mbdr_journal::{FaultFs, FaultKind, FsyncPolicy, Journal, JournalConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// Ops consumed by opening a journal in a fresh directory.
const OPEN_OPS: u64 = 2;
/// Ops consumed per append under a never-firing `PerBatch` fsync policy.
const APPEND_OPS: u64 = 2;

fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("mbdr-journal-faults-{}-{tag}-{seq}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> JournalConfig {
    JournalConfig {
        dir: dir.to_path_buf(),
        segment_max_bytes: 8 * 1024 * 1024,
        fsync: FsyncPolicy::PerBatch(1000),
        snapshot_every_frames: 0,
    }
}

/// Op index of append `i`'s record-header write (0-based appends).
fn header_write_op(i: u64) -> u64 {
    OPEN_OPS + APPEND_OPS * i
}

/// Op index of append `i`'s payload write.
fn payload_write_op(i: u64) -> u64 {
    header_write_op(i) + 1
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn replay_payloads(journal: &Journal) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    journal.replay(|_, payload| out.push(payload.to_vec())).expect("replay");
    out
}

/// `truncated_record_is_repaired_and_counted`, from a seed: the last append's
/// payload write tears mid-record and the rollback fails with it.
#[test]
fn seeded_torn_payload_write_is_repaired_at_reopen() {
    let seed = 42u64;
    let mut rng = seed;
    let appends = 6 + splitmix64(&mut rng) % 8; // 6..=13
    let payload = [0xA5u8; 12];
    let keep = (splitmix64(&mut rng) % (payload.len() as u64 - 1)) as usize; // < len

    let dir = temp_dir("torn");
    let faults = FaultFs::over_real();
    faults.schedule_fault(payload_write_op(appends - 1), FaultKind::TornWrite { keep });
    let journal = Journal::open_with_vfs(config(&dir), Arc::new(faults.clone())).expect("open");
    for i in 0..appends - 1 {
        journal.append_frame(&payload).unwrap_or_else(|e| panic!("append {i}: {e}"));
    }
    assert!(journal.append_frame(&payload).is_err(), "torn append reports failure");
    assert_eq!(journal.frames_appended(), appends - 1);
    assert_eq!(faults.pending_faults(), 0, "the scheduled fault fired");
    drop(journal);

    let journal = Journal::open(config(&dir)).expect("recovery open");
    assert_eq!(journal.frames_appended(), appends - 1, "torn record truncated away");
    assert_eq!(replay_payloads(&journal).len() as u64, appends - 1);
    assert!(journal.stats().truncated_bytes > 0, "repair is visible in stats");
    journal.append_frame(b"post-repair").expect("appends flow again");
    let _ = fs::remove_dir_all(&dir);
}

/// `flipped_checksum_byte_drops_the_record`, from a seed: the disk silently
/// corrupts the last payload byte (BitFlip reports success), so the journal
/// believes the append landed — only the reopen checksum catches it.
#[test]
fn seeded_bit_flip_drops_exactly_the_corrupted_record() {
    let seed = 7u64;
    let mut rng = seed;
    let appends = 5 + splitmix64(&mut rng) % 6; // 5..=10
    let mask = (splitmix64(&mut rng) as u8) | 1; // nonzero

    let dir = temp_dir("bitflip");
    let faults = FaultFs::over_real();
    faults.schedule_fault(payload_write_op(appends - 1), FaultKind::BitFlip { mask });
    let journal = Journal::open_with_vfs(config(&dir), Arc::new(faults.clone())).expect("open");
    for i in 0..appends {
        journal.append_frame(&[i as u8; 9]).expect("silent corruption still reports Ok");
    }
    assert_eq!(journal.frames_appended(), appends, "the writer was lied to");
    drop(journal);

    let journal = Journal::open(config(&dir)).expect("recovery open");
    assert_eq!(journal.frames_appended(), appends - 1, "checksum failure truncates there");
    assert_eq!(replay_payloads(&journal).len() as u64, appends - 1);
    assert!(journal.stats().truncated_bytes > 0);
    let _ = fs::remove_dir_all(&dir);
}

/// ENOSPC strikes a payload write: the append fails, its own rollback removes
/// the already-written record header, and the log stays byte-clean — later
/// appends and the reopen see no damage at all.
#[test]
fn seeded_enospc_fails_cleanly_without_torn_bytes() {
    let seed = 11u64;
    let mut rng = seed;
    let victim = 2 + splitmix64(&mut rng) % 4; // append 2..=5 of 8

    let dir = temp_dir("enospc");
    let faults = FaultFs::over_real();
    faults.schedule_fault(payload_write_op(victim), FaultKind::NoSpace);
    let journal = Journal::open_with_vfs(config(&dir), Arc::new(faults.clone())).expect("open");
    let mut ok = 0u64;
    for i in 0..8u8 {
        match journal.append_frame(&[i; 10]) {
            Ok(()) => ok += 1,
            Err(err) => assert!(
                format!("{err}").contains("no space"),
                "expected the injected ENOSPC, got: {err}"
            ),
        }
    }
    assert_eq!(ok, 7, "exactly the victim append failed");
    assert_eq!(journal.frames_appended(), 7);
    journal.flush().expect("flush");
    drop(journal);

    let journal = Journal::open(config(&dir)).expect("recovery open");
    assert_eq!(journal.frames_appended(), 7);
    assert_eq!(journal.stats().truncated_bytes, 0, "the rollback left no torn bytes");
    let _ = fs::remove_dir_all(&dir);
}

/// An fsync failure *after* the record bytes landed: the append reports an
/// error (conservative — the caller must not assume durability), yet the
/// record is on disk and survives the reopen. The frame counter and the disk
/// agree; nothing is double-counted.
#[test]
fn seeded_fsync_failure_is_conservative_but_loses_nothing() {
    let seed = 3u64;
    let mut rng = seed;
    let victim = 1 + splitmix64(&mut rng) % 4; // append 1..=4 of 6
                                               // PerFrame: each append consumes header, payload, sync → 3 ops.
    let sync_op = OPEN_OPS + 3 * victim + 2;

    let dir = temp_dir("fsync");
    let mut config = config(&dir);
    config.fsync = FsyncPolicy::PerFrame;
    let faults = FaultFs::over_real();
    faults.schedule_fault(sync_op, FaultKind::FailFsync);
    let journal = Journal::open_with_vfs(config.clone(), Arc::new(faults.clone())).expect("open");
    let mut failures = 0u64;
    for i in 0..6u8 {
        if journal.append_frame(&[i; 8]).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 1, "only the victim append reported the fsync failure");
    assert_eq!(journal.frames_appended(), 6, "the bytes were written before the sync");
    drop(journal);

    let journal = Journal::open(config).expect("recovery open");
    assert_eq!(journal.frames_appended(), 6, "no record was actually lost");
    assert_eq!(journal.stats().truncated_bytes, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// `corrupt_snapshot_is_ignored_in_favor_of_the_log`, from a seed: the disk
/// flips a bit in the snapshot body on its way down; install reports success,
/// and the reopen discards the snapshot while the log still replays.
#[test]
fn seeded_snapshot_bit_flip_is_ignored_in_favor_of_the_log() {
    let seed = 19u64;
    let mut rng = seed;
    let appends = 4 + splitmix64(&mut rng) % 5; // 4..=8
    let mask = (splitmix64(&mut rng) as u8) | 1;
    // Install ops: create, header write, body write, sync_all, rename.
    let body_write_op = OPEN_OPS + APPEND_OPS * appends + 2;

    let dir = temp_dir("snap-flip");
    let faults = FaultFs::over_real();
    faults.schedule_fault(body_write_op, FaultKind::BitFlip { mask });
    let journal = Journal::open_with_vfs(config(&dir), Arc::new(faults.clone())).expect("open");
    for i in 0..appends {
        journal.append_frame(&[i as u8; 11]).expect("append");
    }
    let frames = journal.begin_forced_snapshot().expect("slot free");
    journal.install_snapshot(frames, b"tracker-state").expect("install believes the disk");
    journal.flush().expect("flush");
    drop(journal);

    let journal = Journal::open(config(&dir)).expect("recovery open");
    assert!(journal.load_snapshot().expect("no error").is_none(), "corrupt snapshot ignored");
    assert_eq!(journal.recovered_snapshot_frames(), None);
    assert_eq!(replay_payloads(&journal).len() as u64, appends, "the log still covers it");
    let _ = fs::remove_dir_all(&dir);
}

/// A rename failure during snapshot install: the install reports a typed
/// error, the temp file is swept at the next open, and no snapshot shadows
/// the log.
#[test]
fn seeded_rename_failure_aborts_snapshot_install() {
    let appends = 5u64;
    let rename_op = OPEN_OPS + APPEND_OPS * appends + 4;

    let dir = temp_dir("rename");
    let faults = FaultFs::over_real();
    faults.schedule_fault(rename_op, FaultKind::FailRename);
    let journal = Journal::open_with_vfs(config(&dir), Arc::new(faults.clone())).expect("open");
    for i in 0..appends {
        journal.append_frame(&[i as u8; 7]).expect("append");
    }
    let frames = journal.begin_forced_snapshot().expect("slot free");
    assert!(journal.install_snapshot(frames, b"body").is_err(), "rename fault surfaces");
    assert_eq!(journal.stats().snapshots, 0);
    journal.flush().expect("flush");
    drop(journal);

    let tmp_count = fs::read_dir(&dir)
        .expect("read dir")
        .filter(|e| e.as_ref().is_ok_and(|e| e.path().extension().is_some_and(|ext| ext == "tmp")))
        .count();
    assert_eq!(tmp_count, 1, "the orphaned temp file is on disk before reopen");
    let journal = Journal::open(config(&dir)).expect("recovery open");
    assert!(journal.load_snapshot().expect("no error").is_none());
    assert_eq!(replay_payloads(&journal).len() as u64, appends);
    let tmp_count = fs::read_dir(&dir)
        .expect("read dir")
        .filter(|e| e.as_ref().is_ok_and(|e| e.path().extension().is_some_and(|ext| ext == "tmp")))
        .count();
    assert_eq!(tmp_count, 0, "reopen swept the temp file");
    let _ = fs::remove_dir_all(&dir);
}

/// `garbage_and_partial_header_segments_are_discarded`, from a seed: a torn
/// write during rotation's segment-header write — with the best-effort
/// cleanup blocked too — leaves a partial-header orphan segment, exactly what
/// a crash mid-creation leaves. `repair_and_sync` (the degraded-mode probe's
/// disk half) removes it without a restart.
#[test]
fn seeded_partial_header_segment_from_failed_rotation_is_repaired() {
    let dir = temp_dir("rotation");
    let mut config = config(&dir);
    config.segment_max_bytes = 64; // 18-byte header + 24-byte records: rotate on append 1
    let faults = FaultFs::over_real();
    // Append 0: ops 2 (header), 3 (payload). Append 1 rotates first:
    // sync_data=4, create_new_append=5, segment-header write=6 (torn), then
    // the cleanup remove_file=7 (blocked so the orphan persists on disk).
    faults.schedule_fault(6, FaultKind::TornWrite { keep: 5 });
    faults.schedule_fault(7, FaultKind::FailRename);
    let journal = Journal::open_with_vfs(config.clone(), Arc::new(faults.clone())).expect("open");
    journal.append_frame(&[1u8; 16]).expect("append 0");
    assert!(journal.append_frame(&[2u8; 16]).is_err(), "rotation fault surfaces");
    assert_eq!(journal.frames_appended(), 1);
    let orphans = fs::read_dir(&dir)
        .expect("read dir")
        .filter(|e| {
            e.as_ref().is_ok_and(|e| e.path().extension().is_some_and(|ext| ext == "mbdrj"))
        })
        .count();
    assert_eq!(orphans, 2, "the partial-header orphan segment is on disk");

    // The live repair path removes the orphan and re-syncs the tail.
    journal.repair_and_sync().expect("repair");
    assert_eq!(journal.stats().truncated_bytes, 5, "orphan bytes counted");
    journal.append_frame(&[3u8; 16]).expect("appends flow again");
    journal.flush().expect("flush");
    drop(journal);

    let journal = Journal::open(config).expect("recovery open");
    assert_eq!(replay_payloads(&journal).len(), 2, "both real frames survive");
    let _ = fs::remove_dir_all(&dir);
}

/// The determinism contract itself: an arbitrary seed-derived schedule run
/// twice produces byte-identical logs, identical counters, and identical
/// injected-fault counts.
#[test]
fn seeded_schedules_replay_byte_identically() {
    fn run(seed: u64, dir: &Path) -> (Vec<Vec<u8>>, u64, u64) {
        let faults = FaultFs::over_real();
        faults.schedule_from_seed(seed, OPEN_OPS, 40, 6);
        let journal = Journal::open_with_vfs(config(dir), Arc::new(faults.clone())).expect("open");
        for i in 0..24u8 {
            // record_frame: the availability-over-durability wrapper.
            let _ = journal.record_frame(&[i; 13]);
        }
        let _ = journal.flush();
        let frames = journal.frames_appended();
        let injected = faults.injected_faults();
        drop(journal);
        let journal = Journal::open(config(dir)).expect("reopen");
        (replay_payloads(&journal), frames, injected)
    }

    let dir_a = temp_dir("det-a");
    let dir_b = temp_dir("det-b");
    let (log_a, frames_a, injected_a) = run(0xDEAD_BEEF, &dir_a);
    let (log_b, frames_b, injected_b) = run(0xDEAD_BEEF, &dir_b);
    assert_eq!(log_a, log_b, "same seed, same surviving records");
    assert_eq!(frames_a, frames_b);
    assert_eq!(injected_a, injected_b);
    assert!(injected_a > 0, "the schedule actually fired");

    let dir_c = temp_dir("det-c");
    let (log_c, _, _) = run(0xFEED_FACE, &dir_c);
    assert!(log_a != log_c || replay_is_trivial(&log_a), "a different seed takes a different path");
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
    let _ = fs::remove_dir_all(&dir_c);
}

fn replay_is_trivial(log: &[Vec<u8>]) -> bool {
    log.len() == 24 // every fault missed the write path; nothing to compare
}
