//! Segmented append-only frame log with snapshots, torn-tail repair, and
//! compaction. See the crate docs and `docs/WIRE.md` for the byte layouts.
//!
//! Every disk operation goes through the [`Vfs`] storage seam, so the same
//! code runs against the real filesystem ([`crate::RealFs`], the default) or
//! a deterministic fault injector ([`crate::FaultFs`]) in tests and the
//! `faults` benchmark workload.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::JournalError;
use crate::stats::{JournalStats, JournalStatsSnapshot};
use crate::vfs::{RealFs, Vfs, VfsFile};

/// First eight bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"MBDRJRNL";
/// First eight bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MBDRSNAP";
/// On-disk format version written into segment and snapshot headers. Readers
/// accept any version `<=` their own and refuse (typed error, no destructive
/// repair) anything newer.
pub const JOURNAL_VERSION: u16 = 1;
/// Segment header: magic (8) + version (`u16`) + base frame index (`u64`).
pub const SEGMENT_HEADER_LEN: usize = 18;
/// Record header: payload length (`u32`) + CRC-32 of the payload (`u32`).
pub const RECORD_HEADER_LEN: usize = 8;
/// Snapshot header: magic (8) + version (`u16`) + covered frame count (`u64`)
/// + body length (`u32`) + CRC-32 of the body (`u32`).
pub const SNAPSHOT_HEADER_LEN: usize = 26;
/// Upper bound on a single record payload; longer claimed lengths are treated
/// as corruption during open-time scanning.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;
/// File-name suffix for segment files (`seg-<base, 20 digits>.mbdrj`).
pub const SEGMENT_FILE_SUFFIX: &str = ".mbdrj";
/// File-name suffix for snapshot files (`snap-<frames, 20 digits>.mbdrs`).
pub const SNAPSHOT_FILE_SUFFIX: &str = ".mbdrs";

const SEGMENT_FILE_PREFIX: &str = "seg-";
const SNAPSHOT_FILE_PREFIX: &str = "snap-";

const CRC32_POLY: u32 = 0xEDB8_8320;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC32_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC-32 (the zlib/zip polynomial) of `bytes`. Allocation-free; used for
/// every record and snapshot checksum in the journal format.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in bytes {
        let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = CRC_TABLE[index] ^ (crc >> 8);
    }
    !crc
}

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended frame. Maximum durability, slowest.
    PerFrame,
    /// `fdatasync` once every `n` appended frames (`n` is clamped to `>= 1`).
    /// Bounds loss to the last `n - 1` frames on power failure.
    PerBatch(u32),
    /// `fdatasync` when at least this much time has passed since the last
    /// sync, checked on each append. Bounds loss by time, not frame count.
    /// Time is read through [`Vfs::now_nanos`], so tests can drive this
    /// branch with [`crate::FaultFs`]'s deterministic clock.
    Timer(Duration),
}

/// Configuration for [`Journal::open`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding segment and snapshot files; created if missing.
    pub dir: PathBuf,
    /// Rotate to a new segment once the active one would exceed this size.
    pub segment_max_bytes: u64,
    /// Flush-to-disk policy for appended frames.
    pub fsync: FsyncPolicy,
    /// Propose a snapshot once this many frames accumulate past the previous
    /// snapshot's floor; `0` disables snapshot proposals entirely.
    pub snapshot_every_frames: u64,
}

impl JournalConfig {
    /// Defaults: 8 MiB segments, fsync every 64 frames, snapshots disabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            segment_max_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::PerBatch(64),
            snapshot_every_frames: 0,
        }
    }
}

/// A validated snapshot read back from disk: the frame count it covers and the
/// opaque body (encoded by the caller, e.g. `mbdr-core`'s snapshot codec).
#[derive(Debug, Clone)]
pub struct SnapshotBlob {
    /// Number of journal frames the snapshot covers (its compaction floor).
    pub frames: u64,
    /// Caller-encoded snapshot body; the journal treats it as opaque bytes.
    pub body: Vec<u8>,
}

struct Writer {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Frame index of the active segment's first record; file names and
    /// frame counts past this base are derived from `segment_bytes`.
    base: u64,
    /// Bytes of the active segment known to hold complete records (header
    /// included). Only advanced after a fully successful append, so it is
    /// always a safe truncation point for [`Journal::repair_and_sync`].
    segment_bytes: u64,
    unsynced: u32,
    last_sync_nanos: u64,
}

/// A segmented write-ahead log of already-encoded wire frames.
///
/// [`Journal::open`] repairs any torn tail left by a crash (truncating the
/// first invalid record and discarding unreachable later segments), selects
/// the newest valid snapshot, and positions the writer at the end of the log.
/// Appends are serialized by an internal mutex; all observability counters are
/// atomic and readable through [`Journal::stats`] without locking.
pub struct Journal {
    config: JournalConfig,
    stats: JournalStats,
    vfs: Arc<dyn Vfs>,
    writer: Mutex<Writer>,
    /// Total frames ever appended (monotonic across restarts and compaction).
    frames: AtomicU64,
    /// Frame count covered by the newest installed snapshot.
    snapshot_floor: AtomicU64,
    snapshot_active: AtomicBool,
    recovered_snapshot: Option<(u64, PathBuf)>,
}

impl Journal {
    /// Opens (or creates) the journal in `config.dir` on the real filesystem,
    /// repairing any torn tail.
    ///
    /// Repair policy: segments are scanned in frame order; the first record
    /// with a bad length or checksum truncates its segment at that point, and
    /// every later segment is deleted (records only become durable in order,
    /// so nothing after a torn write is trustworthy). All discarded bytes are
    /// counted in [`JournalStatsSnapshot::truncated_bytes`]. Files written by
    /// a newer format version produce [`JournalError::UnsupportedVersion`]
    /// and are never modified.
    pub fn open(config: JournalConfig) -> Result<Journal, JournalError> {
        Journal::open_with_vfs(config, Arc::new(RealFs))
    }

    /// [`Journal::open`] against an explicit storage implementation — the
    /// entry point for fault-injection tests and the `faults` workload, which
    /// pass a [`crate::FaultFs`].
    pub fn open_with_vfs(
        config: JournalConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Journal, JournalError> {
        vfs.create_dir_all(&config.dir)?;
        let stats = JournalStats::default();
        remove_tmp_files(vfs.as_ref(), &config.dir)?;

        let segments =
            list_numbered(vfs.as_ref(), &config.dir, SEGMENT_FILE_PREFIX, SEGMENT_FILE_SUFFIX)?;
        let mut retained: Vec<(u64, PathBuf)> = Vec::new();
        let mut frames: u64 = 0;
        let mut truncated: u64 = 0;
        let mut unreachable = false;
        for (_, path) in segments {
            if unreachable {
                truncated += vfs.file_len(&path)?;
                vfs.remove_file(&path)?;
                continue;
            }
            match scan_segment(vfs.as_ref(), &path)? {
                SegmentScan::Unreadable { file_len } => {
                    truncated += file_len;
                    vfs.remove_file(&path)?;
                    unreachable = true;
                }
                SegmentScan::Valid { base, records, valid_end, file_len, torn } => {
                    if !retained.is_empty() && base != frames {
                        // Frame indices must be contiguous across segments.
                        truncated += file_len;
                        vfs.remove_file(&path)?;
                        unreachable = true;
                        continue;
                    }
                    if retained.is_empty() {
                        frames = base;
                    }
                    frames += records;
                    if torn {
                        vfs.truncate(&path, valid_end)?;
                        truncated += file_len - valid_end;
                        unreachable = true;
                    }
                    retained.push((base, path));
                }
            }
        }
        if truncated > 0 {
            stats.truncated_bytes.fetch_add(truncated, Ordering::Relaxed);
        }

        let mut recovered_snapshot: Option<(u64, PathBuf)> = None;
        let snapshots =
            list_numbered(vfs.as_ref(), &config.dir, SNAPSHOT_FILE_PREFIX, SNAPSHOT_FILE_SUFFIX)?;
        for (snap_frames, path) in snapshots.into_iter().rev() {
            if recovered_snapshot.is_none() && validate_snapshot(vfs.as_ref(), &path, snap_frames)?
            {
                recovered_snapshot = Some((snap_frames, path));
            } else {
                // Stale (older than the newest valid one) or corrupt: corrupt
                // snapshots are simply ignored — the retained log still covers
                // everything — and removed so they cannot shadow future ones.
                vfs.remove_file(&path)?;
            }
        }
        let snapshot_floor = recovered_snapshot.as_ref().map_or(0, |(n, _)| *n);
        let frames = frames.max(snapshot_floor);

        let writer = match retained.last() {
            Some((base, path)) => {
                let file = vfs.open_append(path)?;
                let segment_bytes = vfs.file_len(path)?;
                Writer {
                    file,
                    path: path.clone(),
                    base: *base,
                    segment_bytes,
                    unsynced: 0,
                    last_sync_nanos: vfs.now_nanos(),
                }
            }
            None => create_segment(vfs.as_ref(), &config.dir, frames)?,
        };

        Ok(Journal {
            config,
            stats,
            vfs,
            writer: Mutex::new(writer),
            frames: AtomicU64::new(frames),
            snapshot_floor: AtomicU64::new(snapshot_floor),
            snapshot_active: AtomicBool::new(false),
            recovered_snapshot,
        })
    }

    /// Appends one already-encoded wire frame as a journal record.
    ///
    /// Steady-state cost is two buffered writes (stack-built 8-byte header +
    /// the borrowed payload slice) with zero heap allocation; segment rotation
    /// and fsyncs are amortized per [`JournalConfig`]. On an I/O error the
    /// segment is truncated back to the last complete record so a partial
    /// header can never be followed by further appends. If that rollback
    /// itself fails (dead disk), the torn bytes stay behind and
    /// [`Journal::repair_and_sync`] removes them once the disk heals.
    pub fn append_frame(&self, bytes: &[u8]) -> Result<(), JournalError> {
        let len = bytes.len();
        if len == 0 || len > MAX_RECORD_BYTES {
            return Err(JournalError::RecordTooLarge { len });
        }
        let mut header = [0u8; RECORD_HEADER_LEN];
        let (len_part, crc_part) = header.split_at_mut(4);
        len_part.copy_from_slice(&(len as u32).to_be_bytes());
        crc_part.copy_from_slice(&crc32(bytes).to_be_bytes());

        let mut writer = self.writer.lock();
        let record_len = (RECORD_HEADER_LEN + len) as u64;
        if writer.segment_bytes + record_len > self.config.segment_max_bytes
            && writer.segment_bytes > SEGMENT_HEADER_LEN as u64
        {
            self.rotate(&mut writer)?;
        }
        if let Err(err) = write_record(&mut *writer.file, &header, bytes) {
            let keep = writer.segment_bytes;
            let _ = writer.file.set_len(keep);
            return Err(JournalError::Io(err));
        }
        writer.segment_bytes += record_len;
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.maybe_sync(&mut writer)
    }

    /// Infallible wrapper around [`Journal::append_frame`] for the ingest hot
    /// path: an append failure is counted in
    /// [`JournalStatsSnapshot::append_errors`] and otherwise dropped, trading
    /// strict durability for availability of the live service (the design
    /// trade-off is documented in `docs/ARCHITECTURE.md`). Returns whether
    /// the append succeeded so callers can track durability state.
    pub fn record_frame(&self, bytes: &[u8]) -> bool {
        let ok = self.append_frame(bytes).is_ok();
        if !ok {
            self.stats.append_errors.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Counts a caller-side durability failure (e.g. a snapshot body that
    /// failed to encode) in [`JournalStatsSnapshot::append_errors`].
    pub fn note_write_error(&self) {
        self.stats.append_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Forces an `fdatasync` of the active segment if any appended frames are
    /// not yet known-durable. Called by graceful shutdown paths.
    pub fn flush(&self) -> Result<(), JournalError> {
        let mut writer = self.writer.lock();
        if writer.unsynced > 0 {
            writer.file.sync_data()?;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            writer.unsynced = 0;
            writer.last_sync_nanos = self.vfs.now_nanos();
        }
        Ok(())
    }

    /// Restores the active segment to a clean, appendable, known-synced state
    /// after append failures: the disk-side half of a degraded-mode re-probe.
    ///
    /// Three messes a dying disk can leave are undone here once it heals:
    /// torn bytes a failed append's own rollback could not remove (the file
    /// is truncated back to the last complete record — `segment_bytes` only
    /// advances on fully successful appends, so it is always the safe
    /// boundary), orphan later segments left by a failed rotation (deleted),
    /// and an unknown sync state (an `fdatasync` is forced). All removed
    /// bytes are counted in [`JournalStatsSnapshot::truncated_bytes`]; none
    /// of them were ever acknowledged. Returns `Ok` only if the disk accepted
    /// every repair write, so a success means appends can flow again.
    pub fn repair_and_sync(&self) -> Result<(), JournalError> {
        let mut writer = self.writer.lock();
        let segments = list_numbered(
            self.vfs.as_ref(),
            &self.config.dir,
            SEGMENT_FILE_PREFIX,
            SEGMENT_FILE_SUFFIX,
        )?;
        for (base, path) in segments {
            if base > writer.base {
                let len = self.vfs.file_len(&path).unwrap_or(0);
                self.vfs.remove_file(&path)?;
                self.stats.truncated_bytes.fetch_add(len, Ordering::Relaxed);
            }
        }
        let on_disk = self.vfs.file_len(&writer.path)?;
        if on_disk > writer.segment_bytes {
            self.vfs.truncate(&writer.path, writer.segment_bytes)?;
            self.stats.truncated_bytes.fetch_add(on_disk - writer.segment_bytes, Ordering::Relaxed);
        }
        writer.file.sync_data()?;
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        writer.unsynced = 0;
        writer.last_sync_nanos = self.vfs.now_nanos();
        Ok(())
    }

    /// Streams every retained record, in frame order, into `sink(index,
    /// payload)` and returns the number delivered. Intended to be called once
    /// at boot, after [`Journal::open`] and the snapshot restore, before live
    /// appends begin; the writer lock is held for the whole replay. Records
    /// were validated at open, so a failure here is a typed
    /// [`JournalError::Corrupt`] indicating external modification.
    pub fn replay(&self, mut sink: impl FnMut(u64, &[u8])) -> Result<u64, JournalError> {
        let _writer = self.writer.lock();
        let segments = list_numbered(
            self.vfs.as_ref(),
            &self.config.dir,
            SEGMENT_FILE_PREFIX,
            SEGMENT_FILE_SUFFIX,
        )?;
        let mut delivered = 0u64;
        for (_, path) in segments {
            let bytes = self.vfs.read(&path)?;
            let Some(base) = bytes.get(10..).and_then(be_u64) else {
                return Err(corrupt(&path, 0, "segment header failed revalidation"));
            };
            let mut at = SEGMENT_HEADER_LEN;
            let mut index = base;
            while at < bytes.len() {
                let Some((len, crc)) = record_header(&bytes, at) else {
                    return Err(corrupt(&path, at as u64, "record header failed revalidation"));
                };
                let start = at + RECORD_HEADER_LEN;
                let Some(payload) = bytes.get(start..start + len) else {
                    return Err(corrupt(&path, at as u64, "record body failed revalidation"));
                };
                if crc32(payload) != crc {
                    return Err(corrupt(&path, at as u64, "record checksum failed revalidation"));
                }
                sink(index, payload);
                delivered += 1;
                index += 1;
                at = start + len;
            }
        }
        self.stats.recovered_frames.fetch_add(delivered, Ordering::Relaxed);
        Ok(delivered)
    }

    /// Reads back the newest valid snapshot found at open, if any. The body is
    /// revalidated against its checksum before being returned.
    pub fn load_snapshot(&self) -> Result<Option<SnapshotBlob>, JournalError> {
        let Some((frames, path)) = &self.recovered_snapshot else {
            return Ok(None);
        };
        let bytes = self.vfs.read(path)?;
        match parse_snapshot(&bytes) {
            Some((snap_frames, body)) if snap_frames == *frames => {
                Ok(Some(SnapshotBlob { frames: *frames, body: body.to_vec() }))
            }
            _ => Err(corrupt(path, 0, "snapshot failed revalidation")),
        }
    }

    /// Cheap, lock-free check used once per ingested frame: is a snapshot
    /// worth proposing? True only when snapshots are enabled, none is already
    /// in progress, and at least `snapshot_every_frames` frames have
    /// accumulated past the current floor.
    pub fn snapshot_pending(&self) -> bool {
        let every = self.config.snapshot_every_frames;
        if every == 0 || self.snapshot_active.load(Ordering::Relaxed) {
            return false;
        }
        let frames = self.frames.load(Ordering::Relaxed);
        frames.saturating_sub(self.snapshot_floor.load(Ordering::Relaxed)) >= every
    }

    /// Claims the snapshot-in-progress slot and returns the frame count the
    /// snapshot must cover, or `None` if another snapshot is running or the
    /// threshold is not actually met. Every successful `begin_snapshot` must
    /// be paired with [`Journal::install_snapshot`] or
    /// [`Journal::abort_snapshot`].
    pub fn begin_snapshot(&self) -> Option<u64> {
        if self.config.snapshot_every_frames == 0 {
            return None;
        }
        if self
            .snapshot_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let frames = self.frames.load(Ordering::Relaxed);
        let floor = self.snapshot_floor.load(Ordering::Relaxed);
        if frames.saturating_sub(floor) < self.config.snapshot_every_frames {
            self.snapshot_active.store(false, Ordering::Release);
            return None;
        }
        Some(frames)
    }

    /// Claims the snapshot-in-progress slot *unconditionally* — ignoring the
    /// `snapshot_every_frames` threshold, and available even when periodic
    /// snapshots are disabled. Used by degraded-mode recovery to re-establish
    /// a durability floor from live tracker state. Returns `None` only while
    /// another snapshot is in progress; the same pairing rules as
    /// [`Journal::begin_snapshot`] apply.
    pub fn begin_forced_snapshot(&self) -> Option<u64> {
        if self
            .snapshot_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        Some(self.frames.load(Ordering::Relaxed))
    }

    /// Releases the snapshot-in-progress slot after a failed snapshot attempt.
    pub fn abort_snapshot(&self) {
        self.snapshot_active.store(false, Ordering::Release);
    }

    /// Durably installs a snapshot body covering `frames` journal frames:
    /// write to a temp file, fsync, rename into place, then compact — older
    /// snapshots and every segment lying entirely below `frames` are deleted.
    /// Releases the slot claimed by [`Journal::begin_snapshot`].
    pub fn install_snapshot(&self, frames: u64, body: &[u8]) -> Result<(), JournalError> {
        let result = self.install_snapshot_inner(frames, body);
        self.snapshot_active.store(false, Ordering::Release);
        result
    }

    /// Total frames ever appended to this journal (monotonic across restarts;
    /// compaction does not decrease it).
    pub fn frames_appended(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Frame count covered by the newest installed snapshot (0 if none).
    pub fn snapshot_floor(&self) -> u64 {
        self.snapshot_floor.load(Ordering::Relaxed)
    }

    /// Frame count of the snapshot selected at open, if one was found.
    pub fn recovered_snapshot_frames(&self) -> Option<u64> {
        self.recovered_snapshot.as_ref().map(|(frames, _)| *frames)
    }

    /// Point-in-time copy of the journal's counters.
    pub fn stats(&self) -> JournalStatsSnapshot {
        self.stats.snapshot()
    }

    /// Directory holding the journal's segment and snapshot files.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The configuration this journal was opened with.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    fn maybe_sync(&self, writer: &mut Writer) -> Result<(), JournalError> {
        writer.unsynced = writer.unsynced.saturating_add(1);
        let due = match self.config.fsync {
            FsyncPolicy::PerFrame => true,
            FsyncPolicy::PerBatch(n) => writer.unsynced >= n.max(1),
            FsyncPolicy::Timer(interval) => {
                let elapsed = self.vfs.now_nanos().saturating_sub(writer.last_sync_nanos);
                u128::from(elapsed) >= interval.as_nanos()
            }
        };
        if due {
            writer.file.sync_data()?;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            writer.unsynced = 0;
            writer.last_sync_nanos = self.vfs.now_nanos();
        }
        Ok(())
    }

    fn rotate(&self, writer: &mut Writer) -> Result<(), JournalError> {
        writer.file.sync_data()?;
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        let base = self.frames.load(Ordering::Relaxed);
        *writer = create_segment(self.vfs.as_ref(), &self.config.dir, base)?;
        Ok(())
    }

    fn install_snapshot_inner(&self, frames: u64, body: &[u8]) -> Result<(), JournalError> {
        if body.len() > u32::MAX as usize {
            return Err(JournalError::RecordTooLarge { len: body.len() });
        }
        let final_path = self
            .config
            .dir
            .join(format!("{SNAPSHOT_FILE_PREFIX}{frames:020}{SNAPSHOT_FILE_SUFFIX}"));
        let tmp_path = final_path.with_extension("tmp");
        let mut header = Vec::with_capacity(SNAPSHOT_HEADER_LEN);
        header.extend_from_slice(&SNAPSHOT_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_be_bytes());
        header.extend_from_slice(&frames.to_be_bytes());
        header.extend_from_slice(&(body.len() as u32).to_be_bytes());
        header.extend_from_slice(&crc32(body).to_be_bytes());
        {
            let mut file = self.vfs.create(&tmp_path)?;
            file.write_all(&header)?;
            file.write_all(body)?;
            file.sync_all()?;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.vfs.rename(&tmp_path, &final_path)?;
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        self.snapshot_floor.store(frames, Ordering::Relaxed);
        self.compact(frames, &final_path)
    }

    fn compact(&self, floor: u64, keep_snapshot: &Path) -> Result<(), JournalError> {
        for (_, path) in list_numbered(
            self.vfs.as_ref(),
            &self.config.dir,
            SNAPSHOT_FILE_PREFIX,
            SNAPSHOT_FILE_SUFFIX,
        )? {
            if path != *keep_snapshot {
                let _ = self.vfs.remove_file(&path);
            }
        }
        // A segment is dead iff the NEXT segment starts at or below the floor
        // (all of its records are then covered by the snapshot). The active
        // segment is always last and therefore never removed; the writer lock
        // is held so rotation cannot race the deletions.
        let writer = self.writer.lock();
        let segments = list_numbered(
            self.vfs.as_ref(),
            &self.config.dir,
            SEGMENT_FILE_PREFIX,
            SEGMENT_FILE_SUFFIX,
        )?;
        for pair in segments.windows(2) {
            let (Some((_, path)), Some((next_base, _))) = (pair.first(), pair.get(1)) else {
                continue;
            };
            if *next_base <= floor && *path != writer.path {
                let _ = self.vfs.remove_file(path);
            }
        }
        drop(writer);
        Ok(())
    }
}

fn write_record(file: &mut dyn VfsFile, header: &[u8], payload: &[u8]) -> io::Result<()> {
    file.write_all(header)?;
    file.write_all(payload)
}

enum SegmentScan {
    /// Header missing, short, or wrong magic: the file (and everything after
    /// it) is treated as an unreachable torn tail.
    Unreadable {
        file_len: u64,
    },
    Valid {
        base: u64,
        records: u64,
        valid_end: u64,
        file_len: u64,
        torn: bool,
    },
}

fn scan_segment(vfs: &dyn Vfs, path: &Path) -> Result<SegmentScan, JournalError> {
    let bytes = vfs.read(path)?;
    let file_len = bytes.len() as u64;
    if bytes.len() < SEGMENT_HEADER_LEN || bytes.get(..8) != Some(&SEGMENT_MAGIC[..]) {
        return Ok(SegmentScan::Unreadable { file_len });
    }
    let Some(version) = bytes.get(8..).and_then(be_u16) else {
        return Ok(SegmentScan::Unreadable { file_len });
    };
    if version > JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
            supported: JOURNAL_VERSION,
        });
    }
    let Some(base) = bytes.get(10..).and_then(be_u64) else {
        return Ok(SegmentScan::Unreadable { file_len });
    };
    let mut at = SEGMENT_HEADER_LEN;
    let mut records = 0u64;
    let mut torn = false;
    while at < bytes.len() {
        let Some((len, crc)) = record_header(&bytes, at) else {
            torn = true;
            break;
        };
        let start = at + RECORD_HEADER_LEN;
        let Some(payload) = bytes.get(start..start + len) else {
            torn = true;
            break;
        };
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        records += 1;
        at = start + len;
    }
    Ok(SegmentScan::Valid { base, records, valid_end: at as u64, file_len, torn })
}

fn record_header(bytes: &[u8], at: usize) -> Option<(usize, u32)> {
    let header = bytes.get(at..at + RECORD_HEADER_LEN)?;
    let len = be_u32(header)? as usize;
    let crc = header.get(4..).and_then(be_u32)?;
    if len == 0 || len > MAX_RECORD_BYTES {
        return None;
    }
    Some((len, crc))
}

fn validate_snapshot(vfs: &dyn Vfs, path: &Path, expect_frames: u64) -> Result<bool, JournalError> {
    let bytes = vfs.read(path)?;
    if bytes.get(..8) != Some(&SNAPSHOT_MAGIC[..]) {
        return Ok(false);
    }
    let Some(version) = bytes.get(8..).and_then(be_u16) else {
        return Ok(false);
    };
    if version > JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
            supported: JOURNAL_VERSION,
        });
    }
    Ok(matches!(parse_snapshot(&bytes), Some((frames, _)) if frames == expect_frames))
}

/// Parses and checksum-validates a snapshot file image, returning the covered
/// frame count and the body slice.
fn parse_snapshot(bytes: &[u8]) -> Option<(u64, &[u8])> {
    if bytes.get(..8) != Some(&SNAPSHOT_MAGIC[..]) {
        return None;
    }
    let version = bytes.get(8..).and_then(be_u16)?;
    if version > JOURNAL_VERSION {
        return None;
    }
    let frames = bytes.get(10..).and_then(be_u64)?;
    let len = bytes.get(18..).and_then(be_u32)? as usize;
    let crc = bytes.get(22..).and_then(be_u32)?;
    let body = bytes.get(SNAPSHOT_HEADER_LEN..SNAPSHOT_HEADER_LEN + len)?;
    if SNAPSHOT_HEADER_LEN + len != bytes.len() || crc32(body) != crc {
        return None;
    }
    Some((frames, body))
}

fn create_segment(vfs: &dyn Vfs, dir: &Path, base: u64) -> Result<Writer, JournalError> {
    let path = dir.join(format!("{SEGMENT_FILE_PREFIX}{base:020}{SEGMENT_FILE_SUFFIX}"));
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
    header.extend_from_slice(&SEGMENT_MAGIC);
    header.extend_from_slice(&JOURNAL_VERSION.to_be_bytes());
    header.extend_from_slice(&base.to_be_bytes());
    let mut file = vfs.create_new_append(&path)?;
    if let Err(err) = file.write_all(&header) {
        // Best effort: do not leave a partial-header segment behind. If even
        // the remove fails (dead disk), open-time scanning or
        // `repair_and_sync` will discard it later.
        drop(file);
        let _ = vfs.remove_file(&path);
        return Err(JournalError::Io(err));
    }
    Ok(Writer {
        file,
        path,
        base,
        segment_bytes: SEGMENT_HEADER_LEN as u64,
        unsynced: 0,
        last_sync_nanos: vfs.now_nanos(),
    })
}

fn list_numbered(
    vfs: &dyn Vfs,
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut out = Vec::new();
    for name in vfs.read_dir_names(dir)? {
        let Some(stem) = name.strip_prefix(prefix).and_then(|s| s.strip_suffix(suffix)) else {
            continue;
        };
        let Ok(value) = stem.parse::<u64>() else { continue };
        out.push((value, dir.join(&name)));
    }
    out.sort_unstable_by_key(|(value, _)| *value);
    Ok(out)
}

fn remove_tmp_files(vfs: &dyn Vfs, dir: &Path) -> Result<(), JournalError> {
    for name in vfs.read_dir_names(dir)? {
        if name.ends_with(".tmp") {
            let _ = vfs.remove_file(&dir.join(&name));
        }
    }
    Ok(())
}

fn corrupt(path: &Path, offset: u64, reason: &'static str) -> JournalError {
    JournalError::Corrupt { path: path.to_path_buf(), offset, reason }
}

fn be_u16(bytes: &[u8]) -> Option<u16> {
    let arr: [u8; 2] = bytes.get(..2)?.try_into().ok()?;
    Some(u16::from_be_bytes(arr))
}

fn be_u32(bytes: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_be_bytes(arr))
}

fn be_u64(bytes: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultFs, FaultKind};
    use std::fs;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("mbdr-journal-unit-{}-{tag}-{seq}", std::process::id()))
    }

    fn cleanup(dir: &Path) {
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_replay_roundtrip() {
        let dir = temp_dir("roundtrip");
        let config = JournalConfig::new(&dir);
        let journal = Journal::open(config.clone()).expect("open");
        for i in 0u8..10 {
            journal.append_frame(&[i, i, i]).expect("append");
        }
        journal.flush().expect("flush");
        assert_eq!(journal.frames_appended(), 10);
        drop(journal);

        let journal = Journal::open(config).expect("reopen");
        assert_eq!(journal.frames_appended(), 10);
        let mut seen = Vec::new();
        let n =
            journal.replay(|index, payload| seen.push((index, payload.to_vec()))).expect("replay");
        assert_eq!(n, 10);
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], (0, vec![0, 0, 0]));
        assert_eq!(seen[9], (9, vec![9, 9, 9]));
        assert_eq!(journal.stats().recovered_frames, 10);
        cleanup(&dir);
    }

    #[test]
    fn rotation_keeps_frames_contiguous() {
        let dir = temp_dir("rotate");
        let mut config = JournalConfig::new(&dir);
        config.segment_max_bytes = 64; // force frequent rotation
        let journal = Journal::open(config.clone()).expect("open");
        for i in 0u8..20 {
            journal.append_frame(&[i; 16]).expect("append");
        }
        drop(journal);
        let journal = Journal::open(config).expect("reopen");
        let mut indices = Vec::new();
        journal.replay(|index, _| indices.push(index)).expect("replay");
        assert_eq!(indices, (0..20).collect::<Vec<_>>());
        cleanup(&dir);
    }

    #[test]
    fn snapshot_install_compacts_old_segments() {
        let dir = temp_dir("compact");
        let mut config = JournalConfig::new(&dir);
        config.segment_max_bytes = 64;
        config.snapshot_every_frames = 8;
        let journal = Journal::open(config.clone()).expect("open");
        for i in 0u8..10 {
            journal.append_frame(&[i; 16]).expect("append");
        }
        let frames = journal.begin_snapshot().expect("snapshot due");
        journal.install_snapshot(frames, b"snapshot-body").expect("install");
        assert_eq!(journal.stats().snapshots, 1);
        assert_eq!(journal.snapshot_floor(), frames);
        drop(journal);

        let journal = Journal::open(config).expect("reopen");
        let blob = journal.load_snapshot().expect("load").expect("present");
        assert_eq!(blob.frames, frames);
        assert_eq!(blob.body, b"snapshot-body");
        let mut first = None;
        journal
            .replay(|index, _| {
                if first.is_none() {
                    first = Some(index);
                }
            })
            .expect("replay");
        // Everything before the retained segment's base was compacted away.
        let first = first.expect("tail survives");
        assert!(first <= frames, "tail starts at {first}, floor {frames}");
        assert!(journal.frames_appended() >= frames);
        cleanup(&dir);
    }

    #[test]
    fn oversized_and_empty_records_are_rejected() {
        let dir = temp_dir("reject");
        let journal = Journal::open(JournalConfig::new(&dir)).expect("open");
        assert!(matches!(journal.append_frame(&[]), Err(JournalError::RecordTooLarge { len: 0 })));
        assert_eq!(journal.stats().appends, 0);
        cleanup(&dir);
    }

    #[test]
    fn forced_snapshot_ignores_threshold_and_disabled_config() {
        let dir = temp_dir("forced-snap");
        // Snapshots disabled entirely: begin_snapshot refuses...
        let journal = Journal::open(JournalConfig::new(&dir)).expect("open");
        for i in 0u8..3 {
            journal.append_frame(&[i; 4]).expect("append");
        }
        assert_eq!(journal.begin_snapshot(), None);
        // ...but a forced snapshot still claims the slot and installs.
        let frames = journal.begin_forced_snapshot().expect("forced");
        assert_eq!(frames, 3);
        assert_eq!(journal.begin_forced_snapshot(), None, "slot is exclusive");
        journal.install_snapshot(frames, b"forced-floor").expect("install");
        assert_eq!(journal.snapshot_floor(), 3);
        drop(journal);
        let journal = Journal::open(JournalConfig::new(&dir)).expect("reopen");
        assert_eq!(journal.load_snapshot().expect("load").expect("present").frames, 3);
        cleanup(&dir);
    }

    #[test]
    fn timer_policy_syncs_only_at_or_past_the_interval() {
        let dir = temp_dir("timer");
        let mut config = JournalConfig::new(&dir);
        let interval = Duration::from_millis(100);
        config.fsync = FsyncPolicy::Timer(interval);
        let faults = FaultFs::over_real();
        let journal = Journal::open_with_vfs(config, Arc::new(faults.clone())).expect("open");
        // last_sync was initialized at clock 0; elapsed is 0 < interval.
        journal.append_frame(b"t0").expect("append");
        assert_eq!(journal.stats().fsyncs, 0, "elapsed 0 is below the interval");
        // One nanosecond short of the boundary: still no sync.
        faults.advance_clock(interval - Duration::from_nanos(1));
        journal.append_frame(b"t1").expect("append");
        assert_eq!(journal.stats().fsyncs, 0, "interval - 1ns is below the boundary");
        // Exactly at the boundary: the policy is `>=`, so this syncs.
        faults.advance_clock(Duration::from_nanos(1));
        journal.append_frame(b"t2").expect("append");
        assert_eq!(journal.stats().fsyncs, 1, "exactly the interval fires the sync");
        // The sync reset the reference point: the next append is not due.
        journal.append_frame(b"t3").expect("append");
        assert_eq!(journal.stats().fsyncs, 1);
        // Far past the interval: due again.
        faults.advance_clock(interval * 3);
        journal.append_frame(b"t4").expect("append");
        assert_eq!(journal.stats().fsyncs, 2);
        cleanup(&dir);
    }

    #[test]
    fn timer_reference_point_also_resets_on_explicit_flush() {
        let dir = temp_dir("timer-flush");
        let mut config = JournalConfig::new(&dir);
        let interval = Duration::from_millis(50);
        config.fsync = FsyncPolicy::Timer(interval);
        let faults = FaultFs::over_real();
        let journal = Journal::open_with_vfs(config, Arc::new(faults.clone())).expect("open");
        journal.append_frame(b"a").expect("append");
        faults.advance_clock(interval - Duration::from_nanos(1));
        journal.flush().expect("flush");
        assert_eq!(journal.stats().fsyncs, 1, "flush always syncs pending frames");
        // flush() moved last_sync to now; the boundary is a full interval away.
        faults.advance_clock(interval - Duration::from_nanos(1));
        journal.append_frame(b"b").expect("append");
        assert_eq!(journal.stats().fsyncs, 1, "not due after the flush reset");
        faults.advance_clock(Duration::from_nanos(1));
        journal.append_frame(b"c").expect("append");
        assert_eq!(journal.stats().fsyncs, 2);
        cleanup(&dir);
    }

    #[test]
    fn repair_and_sync_removes_torn_bytes_and_orphan_segments() {
        let dir = temp_dir("repair");
        let faults = FaultFs::over_real();
        let journal = Journal::open_with_vfs(JournalConfig::new(&dir), Arc::new(faults.clone()))
            .expect("open");
        journal.append_frame(b"good-frame").expect("append");
        // Tear the next append's record header (4 of 8 bytes land) and let
        // the rollback fail too — the crash-consistent torn shape. Ops so
        // far: create=0, segment header=1, append writes=2,3 → next is 4.
        faults.schedule_fault(4, FaultKind::TornWrite { keep: 4 });
        assert!(journal.append_frame(b"lost-frame").is_err());
        // While the disk is dead, repair itself fails cleanly.
        faults.set_dead(true);
        assert!(journal.repair_and_sync().is_err(), "repair needs a live disk");
        faults.set_dead(false);
        journal.repair_and_sync().expect("repair after heal");
        assert!(journal.stats().truncated_bytes > 0, "torn bytes were counted");
        // The journal accepts appends again and a reopen agrees on content.
        journal.append_frame(b"post-repair").expect("append");
        journal.flush().expect("flush");
        assert_eq!(journal.frames_appended(), 2);
        drop(journal);
        let journal = Journal::open(JournalConfig::new(&dir)).expect("reopen");
        let mut seen = Vec::new();
        journal.replay(|_, payload| seen.push(payload.to_vec())).expect("replay");
        assert_eq!(seen, vec![b"good-frame".to_vec(), b"post-repair".to_vec()]);
        assert_eq!(journal.stats().truncated_bytes, 0, "nothing left to repair");
        cleanup(&dir);
    }
}
