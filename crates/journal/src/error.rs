//! Typed errors for journal open/append/replay/snapshot paths.
//!
//! The journal never panics on corrupt input: torn tails are repaired by
//! truncation during [`crate::Journal::open`], and everything that cannot be
//! repaired safely (I/O failures, format versions from the future,
//! inconsistencies discovered after open) surfaces as a [`JournalError`].

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Error type for all fallible journal operations.
#[derive(Debug)]
pub enum JournalError {
    /// An operating-system I/O error (open, read, write, fsync, rename).
    Io(io::Error),
    /// A segment or snapshot file carries a format version newer than this
    /// build understands. The file is left untouched: deleting or truncating
    /// data written by a newer build would destroy state we cannot interpret.
    UnsupportedVersion {
        /// File that declared the version.
        path: PathBuf,
        /// Version found in the file header.
        version: u16,
        /// Highest version this build supports.
        supported: u16,
    },
    /// A structural inconsistency was found after open-time repair, e.g. a
    /// record that validated at open fails its checksum during replay. This
    /// indicates concurrent external modification or hardware corruption.
    Corrupt {
        /// File in which the inconsistency was found.
        path: PathBuf,
        /// Byte offset of the first bad byte.
        offset: u64,
        /// Human-readable description of the failed check.
        reason: &'static str,
    },
    /// `append_frame` was handed a frame larger than
    /// [`crate::MAX_RECORD_BYTES`]; nothing was written.
    RecordTooLarge {
        /// Length of the rejected frame in bytes.
        len: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(err) => write!(f, "journal i/o error: {err}"),
            JournalError::UnsupportedVersion { path, version, supported } => write!(
                f,
                "{} has format version {version} but this build supports <= {supported}",
                path.display()
            ),
            JournalError::Corrupt { path, offset, reason } => {
                write!(f, "{} corrupt at byte {offset}: {reason}", path.display())
            }
            JournalError::RecordTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the journal record limit")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(err: io::Error) -> Self {
        JournalError::Io(err)
    }
}

impl From<JournalError> for io::Error {
    fn from(err: JournalError) -> Self {
        match err {
            JournalError::Io(inner) => inner,
            other => io::Error::other(other),
        }
    }
}
