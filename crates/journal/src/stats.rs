//! Journal observability counters.
//!
//! [`JournalStats`] is the live, atomically updated counter block owned by a
//! [`crate::Journal`]; [`JournalStatsSnapshot`] is the plain-value copy handed
//! to callers (and surfaced through `mbdr-net`'s `ServerStatsSnapshot`).
//! Counters only ever increase; a snapshot is a consistent-enough point-in-time
//! read for monitoring (individual fields are loaded independently).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live monotonic counters for one journal instance.
///
/// All fields are updated with relaxed atomics from the append/recovery paths
/// in `journal.rs` and read via [`JournalStats::snapshot`].
#[derive(Debug, Default)]
pub struct JournalStats {
    /// Frame records durably appended to the active segment.
    pub(crate) appends: AtomicU64,
    /// Number of `fsync`/`fdatasync` calls issued on segment or snapshot files.
    pub(crate) fsyncs: AtomicU64,
    /// Frame records streamed out of retained segments during recovery replay.
    pub(crate) recovered_frames: AtomicU64,
    /// Bytes discarded by torn-tail repair at open (truncated partial records
    /// plus any unreachable later segments).
    pub(crate) truncated_bytes: AtomicU64,
    /// Snapshots successfully installed (written, fsynced, renamed into place).
    pub(crate) snapshots: AtomicU64,
    /// Append or snapshot attempts that failed with an I/O error and were
    /// dropped by the infallible `record_frame` wrapper.
    pub(crate) append_errors: AtomicU64,
}

impl JournalStats {
    /// Copies every counter into a plain-value [`JournalStatsSnapshot`].
    pub fn snapshot(&self) -> JournalStatsSnapshot {
        let get = |field: &AtomicU64| field.load(Ordering::Relaxed);
        JournalStatsSnapshot {
            appends: get(&self.appends),
            fsyncs: get(&self.fsyncs),
            recovered_frames: get(&self.recovered_frames),
            truncated_bytes: get(&self.truncated_bytes),
            snapshots: get(&self.snapshots),
            append_errors: get(&self.append_errors),
        }
    }
}

/// Point-in-time copy of [`JournalStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStatsSnapshot {
    /// Frame records durably appended to the active segment.
    pub appends: u64,
    /// Number of `fsync`/`fdatasync` calls issued on segment or snapshot files.
    pub fsyncs: u64,
    /// Frame records streamed out of retained segments during recovery replay.
    pub recovered_frames: u64,
    /// Bytes discarded by torn-tail repair at open.
    pub truncated_bytes: u64,
    /// Snapshots successfully installed.
    pub snapshots: u64,
    /// Appends or snapshots dropped after an I/O error.
    pub append_errors: u64,
}
