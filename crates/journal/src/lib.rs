//! Segmented write-ahead frame journal with snapshots and crash recovery.
//!
//! The MBDR serving stack treats the dead-reckoning **wire frame** as the
//! authoritative record of fleet state, which makes it the natural durability
//! unit: this crate persists the exact bytes the network reactor already
//! parsed, so steady-state journaling is an append of a borrowed slice — no
//! re-encode, no hot-path allocation.
//!
//! # On-disk layout
//!
//! A journal directory holds two kinds of files (byte-level spec in
//! `docs/WIRE.md`):
//!
//! * **Segments** (`seg-<base>.mbdrj`): an 18-byte header
//!   ([`SEGMENT_MAGIC`], format version, base frame index) followed by
//!   length-prefixed, CRC-32-checksummed records, one wire frame each.
//!   Segments rotate at [`JournalConfig::segment_max_bytes`].
//! * **Snapshots** (`snap-<frames>.mbdrs`): a single checksummed blob encoding
//!   full tracker state (via `mbdr-core`'s snapshot codec) as of a frame
//!   count. Installing a snapshot compacts every segment that lies entirely
//!   below it.
//!
//! # Crash safety
//!
//! [`Journal::open`] repairs a torn tail by truncating at the first invalid
//! record and discarding unreachable later segments (counted in
//! [`JournalStatsSnapshot::truncated_bytes`]); corrupt snapshots are ignored
//! in favor of replaying the retained log. Recovery is
//! snapshot-restore-then-replay, and replayed frames pass through the same
//! staleness-aware apply rules as live traffic, so duplicates are harmless.
//! All failure modes are typed [`JournalError`]s — the crate never panics on
//! corrupt input.
//!
//! Durability is tunable via [`FsyncPolicy`] (per-frame, per-batch, or
//! timer-based fsync). The crate is std-only.
//!
//! # Fault injection
//!
//! All disk access goes through the [`Vfs`] storage seam. Production code
//! uses the passthrough [`RealFs`]; tests and the `faults` benchmark workload
//! open the journal with [`Journal::open_with_vfs`] over a [`FaultFs`] — a
//! seeded, schedule-driven wrapper that injects fsync failures, torn writes,
//! `ENOSPC`, and rename failures at exact operation counts, making every
//! corruption shape reproducible from a seed. [`Journal::repair_and_sync`]
//! is the disk-side half of degraded-mode recovery: it restores a clean,
//! synced, appendable tail once a dying disk heals.

mod error;
mod journal;
mod stats;
mod vfs;

pub use error::JournalError;
pub use journal::{
    crc32, FsyncPolicy, Journal, JournalConfig, SnapshotBlob, JOURNAL_VERSION, MAX_RECORD_BYTES,
    RECORD_HEADER_LEN, SEGMENT_FILE_SUFFIX, SEGMENT_HEADER_LEN, SEGMENT_MAGIC,
    SNAPSHOT_FILE_SUFFIX, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC,
};
pub use stats::{JournalStats, JournalStatsSnapshot};
pub use vfs::{FaultFs, FaultKind, RealFs, Vfs, VfsFile};
