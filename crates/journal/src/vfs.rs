//! The storage seam: a minimal virtual-filesystem trait the journal performs
//! every disk operation through, with a passthrough [`RealFs`] (the default —
//! behavior and the zero-allocation append hot path are unchanged) and a
//! seeded, schedule-driven [`FaultFs`] that injects fsync failures, torn
//! writes, `ENOSPC`, and rename failures at exact operation counts.
//!
//! Determinism contract: [`FaultFs`] assigns one monotonically increasing
//! *operation index* to every disk-mutating call (`write_all`, `sync_data`,
//! `sync_all`, `set_len`, `create`, `create_new_append`, `rename`,
//! `remove_file`, `truncate`) in the order they happen. A schedule maps
//! indices to [`FaultKind`]s, so a fault schedule derived from a seed replays
//! byte-identically on every run. Read-side operations (`read`,
//! `read_dir_names`, `file_len`, `open_append`, `create_dir_all`,
//! `now_nanos`) never consume indices and never fail by injection: this
//! models a disk whose write path is failing while already-written data still
//! reads back, which keeps recovery scans well-defined mid-schedule.
//!
//! The clock also lives on the seam: [`Vfs::now_nanos`] backs
//! [`crate::FsyncPolicy::Timer`], so [`FaultFs::advance_clock`] can drive the
//! timer branch deterministically in tests.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// An open, append-positioned file handle behind the storage seam.
pub trait VfsFile: Send {
    /// Writes the whole buffer at the current position (append semantics).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`: flushes file data (not necessarily metadata) to disk.
    fn sync_data(&self) -> io::Result<()>;
    /// `fsync`: flushes file data and metadata to disk.
    fn sync_all(&self) -> io::Result<()>;
    /// Truncates (or extends) the file to exactly `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
}

/// The set of filesystem operations the journal is allowed to perform. Object
/// safe so a [`crate::Journal`] can hold `Arc<dyn Vfs>`.
pub trait Vfs: Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Opens an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates a new file for appending; fails if it already exists.
    fn create_new_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates (truncating if present) a file for writing, e.g. a snapshot
    /// temp file that is later renamed into place.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads the whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Returns the file names (not paths) of `dir`'s entries, in whatever
    /// order the OS yields them; callers sort.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Truncates the file at `path` to `len` bytes via a fresh handle.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Size of the file at `path` in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Monotonic clock reading in nanoseconds; backs
    /// [`crate::FsyncPolicy::Timer`].
    fn now_nanos(&self) -> u64;
}

/// The production implementation: thin passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

struct RealFile(std::fs::File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }
    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

fn real_now_nanos() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let elapsed = START.get_or_init(Instant::now).elapsed();
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

impl Vfs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create_new_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new().create_new(true).append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn now_nanos(&self) -> u64 {
        real_now_nanos()
    }
}

/// One injectable failure shape, applied at an exact operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The targeted `sync_data`/`sync_all` fails; already-buffered writes stay
    /// on disk. On a non-sync operation this degenerates to a clean failure
    /// with no bytes written.
    FailFsync,
    /// A `write_all` persists only the first `keep` bytes, then fails — and
    /// the *next* `set_len` on that file fails once too, so the journal's
    /// rollback cannot hide the torn bytes (the crash-consistent shape).
    TornWrite {
        /// Bytes of the buffer that do reach the disk.
        keep: usize,
    },
    /// A `write_all` silently persists the buffer with its last byte XORed by
    /// `mask` and reports success: lying firmware / in-flight bit rot. The
    /// corruption is only discovered by checksums at reopen.
    BitFlip {
        /// XOR mask applied to the final byte (use a nonzero mask).
        mask: u8,
    },
    /// The operation fails with [`io::ErrorKind::StorageFull`] before writing
    /// anything.
    NoSpace,
    /// The targeted `rename` fails; on other operations this degenerates to a
    /// clean failure with no bytes written.
    FailRename,
}

struct FaultState {
    ops: AtomicU64,
    schedule: Mutex<Vec<(u64, FaultKind)>>,
    dead: AtomicBool,
    injected: AtomicU64,
    clock_nanos: AtomicU64,
    torn_rollback: AtomicBool,
}

impl FaultState {
    fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::Relaxed)
    }

    fn take_fault(&self, op: u64) -> Option<FaultKind> {
        let mut schedule = self.schedule.lock();
        let at = schedule.iter().position(|(when, _)| *when == op)?;
        Some(schedule.remove(at).1)
    }

    fn inject(&self, what: &'static str) -> io::Error {
        self.injected.fetch_add(1, Ordering::Relaxed);
        io::Error::other(what)
    }

    fn inject_full(&self) -> io::Error {
        self.injected.fetch_add(1, Ordering::Relaxed);
        io::Error::new(io::ErrorKind::StorageFull, "injected: no space left on device")
    }

    /// Injection decision for an operation that, when faulted, simply fails
    /// cleanly (no partial effects): returns the error to report, if any.
    fn gate(&self, op: u64, what: &'static str) -> Option<io::Error> {
        match self.take_fault(op) {
            Some(FaultKind::NoSpace) => Some(self.inject_full()),
            Some(_) => Some(self.inject(what)),
            None if self.dead.load(Ordering::Relaxed) => Some(self.inject(what)),
            None => None,
        }
    }
}

/// A seeded, schedule-driven fault-injecting [`Vfs`] wrapper.
///
/// Clone handles share one schedule and operation counter, so a test can keep
/// a control handle while the journal owns the `Arc<dyn Vfs>` view:
///
/// ```
/// use mbdr_journal::{FaultFs, FaultKind, Journal, JournalConfig, RealFs};
/// use std::sync::Arc;
///
/// let dir = std::env::temp_dir().join(format!("mbdr-vfs-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let faults = FaultFs::new(Arc::new(RealFs));
/// faults.set_dead(true); // every mutating operation now fails cleanly
/// let journal = Journal::open_with_vfs(JournalConfig::new(&dir), Arc::new(faults.clone()));
/// assert!(journal.is_err(), "creating the first segment needs a live disk");
/// let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Clone)]
pub struct FaultFs {
    inner: Arc<dyn Vfs>,
    state: Arc<FaultState>,
}

impl FaultFs {
    /// Wraps `inner`, starting with an empty schedule, a live disk, and the
    /// deterministic clock at zero.
    pub fn new(inner: Arc<dyn Vfs>) -> FaultFs {
        FaultFs {
            inner,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                schedule: Mutex::new(Vec::new()),
                dead: AtomicBool::new(false),
                injected: AtomicU64::new(0),
                clock_nanos: AtomicU64::new(0),
                torn_rollback: AtomicBool::new(false),
            }),
        }
    }

    /// Convenience constructor over [`RealFs`].
    pub fn over_real() -> FaultFs {
        FaultFs::new(Arc::new(RealFs))
    }

    /// Arms `kind` to fire at exactly the `op`-th mutating operation
    /// (0-based; see the module docs for which operations count).
    pub fn schedule_fault(&self, op: u64, kind: FaultKind) {
        self.state.schedule.lock().push((op, kind));
    }

    /// Derives `count` faults from `seed` alone, each at an operation index in
    /// `[first_op, first_op + span)`, cycling through every [`FaultKind`]
    /// shape. The same seed always produces the same schedule.
    pub fn schedule_from_seed(&self, seed: u64, first_op: u64, span: u64, count: u32) {
        let mut state = seed;
        let span = span.max(1);
        let mut schedule = self.state.schedule.lock();
        for _ in 0..count {
            let op = first_op + splitmix64(&mut state) % span;
            let draw = splitmix64(&mut state);
            let kind = match draw % 5 {
                0 => FaultKind::FailFsync,
                1 => FaultKind::TornWrite { keep: ((draw >> 3) % 17) as usize },
                2 => FaultKind::BitFlip { mask: (((draw >> 11) as u8) | 1) },
                3 => FaultKind::NoSpace,
                _ => FaultKind::FailRename,
            };
            schedule.push((op, kind));
        }
    }

    /// Kills (`true`) or heals (`false`) the write path: while dead, every
    /// mutating operation fails cleanly; reads still succeed.
    pub fn set_dead(&self, dead: bool) {
        self.state.dead.store(dead, Ordering::Relaxed);
    }

    /// Operation indices consumed so far (the next mutating call gets this
    /// index).
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far (scheduled hits plus dead-disk refusals).
    pub fn injected_faults(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Scheduled faults that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        self.state.schedule.lock().len()
    }

    /// Advances the deterministic clock read by [`Vfs::now_nanos`].
    pub fn advance_clock(&self, by: Duration) {
        let nanos = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        self.state.clock_nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let op = self.state.next_op();
        match self.state.take_fault(op) {
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                self.state.torn_rollback.store(true, Ordering::Relaxed);
                Err(self.state.inject("injected: torn write"))
            }
            Some(FaultKind::BitFlip { mask }) => {
                let mut copy = buf.to_vec();
                if let Some(last) = copy.last_mut() {
                    *last ^= mask;
                }
                self.state.injected.fetch_add(1, Ordering::Relaxed);
                self.inner.write_all(&copy)
            }
            Some(FaultKind::NoSpace) => Err(self.state.inject_full()),
            Some(_) => Err(self.state.inject("injected: write failure")),
            None if self.state.dead.load(Ordering::Relaxed) => {
                Err(self.state.inject("injected: write failure (disk dead)"))
            }
            None => self.inner.write_all(buf),
        }
    }

    fn sync_data(&self) -> io::Result<()> {
        let op = self.state.next_op();
        if let Some(err) = self.state.gate(op, "injected: fsync failure") {
            return Err(err);
        }
        self.inner.sync_data()
    }

    fn sync_all(&self) -> io::Result<()> {
        let op = self.state.next_op();
        if let Some(err) = self.state.gate(op, "injected: fsync failure") {
            return Err(err);
        }
        self.inner.sync_all()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        let op = self.state.next_op();
        if self.state.torn_rollback.swap(false, Ordering::Relaxed) {
            return Err(self.state.inject("injected: rollback failed after torn write"));
        }
        if let Some(err) = self.state.gate(op, "injected: set_len failure") {
            return Err(err);
        }
        self.inner.set_len(len)
    }
}

impl Vfs for FaultFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultFile { inner, state: Arc::clone(&self.state) }))
    }

    fn create_new_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let op = self.state.next_op();
        if let Some(err) = self.state.gate(op, "injected: create failure") {
            return Err(err);
        }
        let inner = self.inner.create_new_append(path)?;
        Ok(Box::new(FaultFile { inner, state: Arc::clone(&self.state) }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let op = self.state.next_op();
        if let Some(err) = self.state.gate(op, "injected: create failure") {
            return Err(err);
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile { inner, state: Arc::clone(&self.state) }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let op = self.state.next_op();
        if let Some(err) = self.state.gate(op, "injected: rename failure") {
            return Err(err);
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let op = self.state.next_op();
        if let Some(err) = self.state.gate(op, "injected: remove failure") {
            return Err(err);
        }
        self.inner.remove_file(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let op = self.state.next_op();
        if self.state.torn_rollback.swap(false, Ordering::Relaxed) {
            return Err(self.state.inject("injected: rollback failed after torn write"));
        }
        if let Some(err) = self.state.gate(op, "injected: truncate failure") {
            return Err(err);
        }
        self.inner.truncate(path, len)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn now_nanos(&self) -> u64 {
        self.state.clock_nanos.load(Ordering::Relaxed)
    }
}

/// SplitMix64: the seed-expansion step used for fault schedules (and by the
/// retry-jitter and fault-plan generators elsewhere in the workspace).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_indices_count_only_mutating_calls() {
        let dir = std::env::temp_dir().join(format!("mbdr-vfs-ops-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultFs::over_real();
        faults.create_dir_all(&dir).expect("mkdir");
        assert_eq!(faults.ops(), 0, "create_dir_all is not counted");
        let path = dir.join("probe.bin");
        let mut file = faults.create(&path).expect("create");
        assert_eq!(faults.ops(), 1);
        file.write_all(b"abc").expect("write");
        assert_eq!(faults.ops(), 2);
        assert_eq!(faults.read(&path).expect("read"), b"abc");
        assert_eq!(faults.file_len(&path).expect("len"), 3);
        assert_eq!(faults.ops(), 2, "reads are not counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scheduled_faults_fire_at_exact_indices_and_only_once() {
        let dir = std::env::temp_dir().join(format!("mbdr-vfs-sched-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultFs::over_real();
        faults.create_dir_all(&dir).expect("mkdir");
        faults.schedule_fault(1, FaultKind::NoSpace);
        let mut file = faults.create(&dir.join("a.bin")).expect("op 0 clean");
        let err = file.write_all(b"boom").expect_err("op 1 faulted");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        file.write_all(b"fine").expect("op 2 clean again");
        assert_eq!(faults.injected_faults(), 1);
        assert_eq!(faults.pending_faults(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_persists_prefix_and_blocks_one_rollback() {
        let dir = std::env::temp_dir().join(format!("mbdr-vfs-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultFs::over_real();
        faults.create_dir_all(&dir).expect("mkdir");
        let path = dir.join("torn.bin");
        let mut file = faults.create(&path).expect("create");
        faults.schedule_fault(1, FaultKind::TornWrite { keep: 2 });
        assert!(file.write_all(b"abcdef").is_err(), "torn write reports failure");
        assert_eq!(faults.read(&path).expect("read"), b"ab", "prefix persisted");
        assert!(file.set_len(0).is_err(), "rollback right after the tear fails");
        file.set_len(0).expect("later set_len works");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_disk_fails_writes_but_serves_reads() {
        let dir = std::env::temp_dir().join(format!("mbdr-vfs-dead-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultFs::over_real();
        faults.create_dir_all(&dir).expect("mkdir");
        let path = dir.join("data.bin");
        let mut file = faults.create(&path).expect("create");
        file.write_all(b"durable").expect("write while alive");
        faults.set_dead(true);
        assert!(file.write_all(b"lost").is_err());
        assert!(file.sync_data().is_err());
        assert!(faults.rename(&path, &dir.join("other.bin")).is_err());
        assert_eq!(faults.read(&path).expect("read"), b"durable");
        faults.set_dead(false);
        file.write_all(b"-again").expect("write after heal");
        assert_eq!(faults.read(&path).expect("read"), b"durable-again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultFs::over_real();
        let b = FaultFs::over_real();
        a.schedule_from_seed(7, 10, 100, 8);
        b.schedule_from_seed(7, 10, 100, 8);
        assert_eq!(*a.state.schedule.lock(), *b.state.schedule.lock());
        let c = FaultFs::over_real();
        c.schedule_from_seed(8, 10, 100, 8);
        assert_ne!(*a.state.schedule.lock(), *c.state.schedule.lock());
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let faults = FaultFs::over_real();
        assert_eq!(faults.now_nanos(), 0);
        faults.advance_clock(Duration::from_millis(5));
        assert_eq!(faults.now_nanos(), 5_000_000);
    }
}
