//! Doc-sync: the committed documentation must stay true to the code.
//!
//! Two contracts are enforced here:
//!
//! * `docs/WIRE.md` names (in backticks) every wire/format constant defined
//!   by `mbdr-core`'s wire modules and by `mbdr-journal`, and names no
//!   constant that does not exist — renaming a wire constant without
//!   updating the spec fails `cargo test`, as does documenting a ghost.
//! * `README.md` and `docs/OPERATIONS.md` mention every `reproduce`
//!   command in [`mbdr_bench::REPRODUCE_COMMANDS`] (the same list the
//!   binary's parser and usage string are tested against), and every
//!   `reproduce -- <word>` invocation they show names a real command.
//!
//! The scans are deliberately lexical — no rustc, no syn — matching the
//! workspace's std-only analysis style (`mbdr-analyze`).

use mbdr_bench::REPRODUCE_COMMANDS;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Repo root, resolved from this crate's manifest dir (`crates/bench`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root resolves")
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|err| panic!("read {}: {err}", path.display()))
}

/// Is `name` a wire/format constant the spec must cover? The patterns pick
/// out protocol kinds, flags, layout sizes, magics, versions and file-name
/// pieces while ignoring implementation details (lookup tables, loop bounds).
fn is_wire_constant(name: &str) -> bool {
    const PREFIXES: [&str; 4] = ["REQ_", "RESP_", "KIND_", "FLAG_"];
    const SUFFIXES: [&str; 7] =
        ["_LEN", "_MAGIC", "_VERSION", "_BYTES", "_SUFFIX", "_PREFIX", "_POLY"];
    name == "TOWARDS_NONE_WIRE"
        || PREFIXES.iter().any(|p| name.starts_with(p))
        || SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Every `const` identifier in `source` that [`is_wire_constant`] selects.
/// Lexical scan: doc/line comments are skipped, visibility does not matter
/// (private constants still define the format).
fn wire_constants_in(source: &str) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for line in source.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        let Some(at) = trimmed.find("const ") else { continue };
        let rest = &trimmed[at + "const ".len()..];
        let ident: String =
            rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if is_wire_constant(&ident) {
            found.insert(ident);
        }
    }
    found
}

/// The files whose constants define the wire and on-disk formats.
fn wire_source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("crates/core/src/wire/mod.rs"),
        root.join("crates/core/src/wire/query.rs"),
        root.join("crates/core/src/wire/snapshot.rs"),
    ];
    let journal_src = root.join("crates/journal/src");
    let entries = fs::read_dir(&journal_src)
        .unwrap_or_else(|err| panic!("read_dir {}: {err}", journal_src.display()));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    files.sort();
    files
}

/// All backtick-quoted spans in a markdown document.
fn backticked_spans(doc: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = doc;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        spans.push(&after[..close]);
        rest = &after[close + 1..];
    }
    spans
}

#[test]
fn wire_doc_names_every_wire_constant() {
    let root = repo_root();
    let doc = read(&root.join("docs/WIRE.md"));
    let spans: BTreeSet<&str> = backticked_spans(&doc).into_iter().collect();

    let mut missing = Vec::new();
    let mut total = 0usize;
    for file in wire_source_files(&root) {
        for name in wire_constants_in(&read(&file)) {
            total += 1;
            if !spans.contains(name.as_str()) {
                missing.push(format!("{} (from {})", name, file.display()));
            }
        }
    }
    // The format has real breadth; a scan that found almost nothing would
    // mean the extraction broke, not that the code lost its constants.
    assert!(total >= 30, "wire-constant scan looks broken: only {total} constants found");
    assert!(
        missing.is_empty(),
        "docs/WIRE.md does not mention these wire constants (add them to the \
         spec, in backticks):\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn wire_doc_constants_all_exist() {
    let root = repo_root();
    let doc = read(&root.join("docs/WIRE.md"));

    let mut defined: BTreeSet<String> = BTreeSet::new();
    for file in wire_source_files(&root) {
        defined.extend(wire_constants_in(&read(&file)));
    }

    let mut ghosts = Vec::new();
    for span in backticked_spans(&doc) {
        let is_const_token = !span.is_empty()
            && span.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && span.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
        if is_const_token && is_wire_constant(span) && !defined.contains(span) {
            ghosts.push(span.to_string());
        }
    }
    assert!(
        ghosts.is_empty(),
        "docs/WIRE.md names wire constants that do not exist in \
         mbdr-core/mbdr-journal:\n  {}",
        ghosts.join("\n  ")
    );
}

/// Words that may legitimately follow `reproduce -- ` in a doc besides
/// command names: nothing. Flags always follow a command, so a bare flag
/// directly after `--` would itself be a doc bug the test should catch.
fn invoked_commands(doc: &str) -> BTreeSet<String> {
    let mut commands = BTreeSet::new();
    let mut rest = doc;
    while let Some(at) = rest.find("reproduce -- ") {
        let after = &rest[at + "reproduce -- ".len()..];
        let word: String = after
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-')
            .collect();
        if !word.is_empty() {
            commands.insert(word);
        }
        rest = after;
    }
    commands
}

#[test]
fn docs_and_usage_agree_on_the_reproduce_command_list() {
    let root = repo_root();
    let expected: BTreeSet<&str> = REPRODUCE_COMMANDS.iter().copied().collect();

    for doc_path in ["README.md", "docs/OPERATIONS.md"] {
        let doc = read(&root.join(doc_path));

        // Direction A — coverage: every command the binary accepts is shown
        // in the doc, either as a full `reproduce -- <cmd>` invocation or as
        // inline `reproduce <cmd>` prose.
        let mut undocumented = Vec::new();
        for cmd in &expected {
            let invoked = doc.contains(&format!("reproduce -- {cmd}"));
            let prose = doc.contains(&format!("reproduce {cmd}"));
            if !invoked && !prose {
                undocumented.push(*cmd);
            }
        }
        assert!(
            undocumented.is_empty(),
            "{doc_path} does not document these reproduce commands: \
             {undocumented:?} (REPRODUCE_COMMANDS is the source of truth)"
        );

        // Direction B — no ghosts: every `reproduce -- <word>` invocation
        // the doc shows names a command the parser actually accepts.
        let shown = invoked_commands(&doc);
        let ghosts: Vec<&String> =
            shown.iter().filter(|w| !expected.contains(w.as_str())).collect();
        assert!(
            ghosts.is_empty(),
            "{doc_path} shows `reproduce -- <cmd>` invocations for commands \
             the binary does not accept: {ghosts:?}"
        );
    }
}
