//! The zero-allocation regression test: steady-state ingest, rect/nearest
//! queries and map prediction must perform **no** heap allocations per
//! operation. An accidental `clone()` or `Vec` on any of those paths fails
//! this test in `cargo test`, not just the bench gate.
//!
//! This file holds exactly one `#[test]` on purpose: the counting allocator
//! is process-global, and a sibling test allocating concurrently would bleed
//! into the measured deltas.

use mbdr_bench::alloccount::{counting_allocator_installed, CountingAllocator};
use mbdr_bench::hotpath::hotpath_report;
use mbdr_bench::DEFAULT_SEED;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_ingest_and_queries_do_not_allocate() {
    assert!(counting_allocator_installed(), "the counting allocator must be active");
    let report = hotpath_report(0.02, DEFAULT_SEED);
    assert!(report.counting_allocator);
    assert_eq!(
        report.allocs_per_update, 0.0,
        "steady-state apply_frame_bytes ingest must not allocate"
    );
    assert_eq!(
        report.allocs_per_journaled_update, 0.0,
        "journaled ingest must not add hot-path allocations (stack record \
         header + pre-opened segment file)"
    );
    assert_eq!(
        report.allocs_per_rect_query, 0.0,
        "steady-state objects_in_rect_into must not allocate"
    );
    assert_eq!(
        report.allocs_per_nearest_query, 0.0,
        "steady-state nearest_objects_into must not allocate"
    );
    assert_eq!(
        report.allocs_per_predict, 0.0,
        "steady-state MapPredictor::predict must not allocate"
    );
    // The throughput side of the report stays sane.
    assert!(report.updates_per_sec > 0.0 && report.queries_per_sec > 0.0);
    assert_eq!(report.rect_hits, (report.objects * report.queries) as u64);
}
