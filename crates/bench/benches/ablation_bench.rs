//! Criterion bench for the ablation studies (intersection policy, prediction
//! order, prior-art comparison) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use mbdr_bench::{ablations, DEFAULT_SEED};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("all_three_studies", |b| {
        b.iter(|| {
            let results = ablations(0.03, DEFAULT_SEED);
            assert_eq!(results.len(), 3);
            results
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
