//! Criterion sweep of the synthetic large-N workload: N ∈ {10⁴, 10⁵, 10⁶}
//! objects × uniform / Zipf-hotspot placement, through the full
//! ingest-then-query pipeline of `mbdr_sim::run_scale_workload`.
//!
//! The CI regression gate (`reproduce scale --check`) carries the same grid
//! up to 10⁵ objects; this bench is where the 10⁶ point lives — it is too
//! slow for the smoke job but exactly the regime the cache-conscious index
//! layout is built for, so run it locally when touching the spatial storage.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mbdr_sim::{run_scale_workload, ScaleConfig};

fn bench_scale(c: &mut Criterion) {
    for objects in [10_000usize, 100_000, 1_000_000] {
        let mut group = c.benchmark_group(&format!("scale_workload_{objects}"));
        // Each iteration ingests (rounds+1)·N updates and runs the query
        // batch — seconds at 10⁶ — so take the minimum sample count.
        group.sample_size(10);
        for hotspot in [false, true] {
            let mut config = ScaleConfig::standard(objects, hotspot, 2001);
            // Keep the query batch small enough that one iteration stays
            // ingest+query balanced instead of query-dominated at 10⁶.
            config.rect_queries = 50;
            config.nearest_queries = 50;
            let label = if hotspot { "hotspot" } else { "uniform" };
            group.bench_function(label, |b| {
                b.iter(|| black_box(run_scale_workload(black_box(&config))))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
