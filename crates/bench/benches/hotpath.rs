//! Criterion micro-benches of the allocation-free hot paths, each next to
//! the allocating variant it replaced so the win stays measurable:
//!
//! * ingest — `apply_frame_bytes` (borrowed `FrameView`, zero-alloc) vs the
//!   owned `Frame::decode` + `apply_frame` pipeline it used to be;
//! * rect / nearest queries — `*_into` with reused `QueryScratch` + result
//!   buffers vs the `Vec`-returning wrappers;
//! * map prediction — the arc-length-indexed, collect-free predictor walk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mbdr_core::{Frame, LinearPredictor, MapPredictor, ObjectState, Predictor, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, QueryScratch, ServiceConfig};
use mbdr_roadnet::{NetworkBuilder, NodeId, RoadClass};
use std::sync::Arc;

const OBJECTS: u64 = 256;
const UPDATES_PER_FRAME: usize = 8;

fn update_at(step: usize) -> Update {
    let phase = (step % 4) as f64;
    Update {
        sequence: step as u64,
        state: ObjectState::basic(
            Point::new(4_000.0 + phase * 40.0, 4_000.0 - phase * 25.0),
            10.0,
            1.0,
            step as f64 * 0.125,
        ),
        kind: UpdateKind::DeviationBound,
    }
}

/// A service with every object reported once, plus pre-encoded frames for
/// `rounds` further ingest rounds (timestamps keep increasing per round so
/// every benched apply is a fresh update, never a stale-rejected one).
fn fixture(rounds: usize) -> (LocationService, Vec<Vec<u8>>) {
    let service = LocationService::with_config(ServiceConfig { shards: 8, ..Default::default() });
    for object in 0..OBJECTS {
        service.register(ObjectId(object), Arc::new(LinearPredictor));
        service.apply_update(ObjectId(object), &update_at(0));
    }
    let mut frames = Vec::with_capacity(rounds * OBJECTS as usize);
    for round in 1..=rounds {
        for object in 0..OBJECTS {
            let mut frame = Frame::new(object);
            for j in 0..UPDATES_PER_FRAME {
                frame.push(update_at(round * UPDATES_PER_FRAME + j));
            }
            frames.push(frame.encode().expect("fixture encodes"));
        }
    }
    (service, frames)
}

fn bench_hotpath(c: &mut Criterion) {
    let mut ingest = c.benchmark_group("hotpath_ingest_frame");
    {
        // When the pre-encoded pool wraps, re-register every object: that
        // resets the trackers' sequence/timestamp state, so replayed frames
        // are fresh applies again instead of silently measured stale
        // rejections. The reset costs one registration pass per
        // `rounds * OBJECTS` frames — noise. The assert keeps the bench
        // honest: every iteration really applies a full frame.
        let rounds = 64;
        let (service, frames) = fixture(rounds);
        let mut next = 0usize;
        ingest.bench_function("frame_view_zero_copy", |b| {
            b.iter(|| {
                if next == frames.len() {
                    next = 0;
                    for object in 0..OBJECTS {
                        service.register(ObjectId(object), Arc::new(LinearPredictor));
                    }
                }
                let bytes = &frames[next];
                next += 1;
                let applied = service.apply_frame_bytes(black_box(bytes)).expect("decodes");
                assert_eq!(applied, UPDATES_PER_FRAME, "stale-rejected frame in the bench loop");
                applied
            })
        });
        let (service, frames) = fixture(rounds);
        let mut next = 0usize;
        ingest.bench_function("owned_decode_then_apply", |b| {
            b.iter(|| {
                if next == frames.len() {
                    next = 0;
                    for object in 0..OBJECTS {
                        service.register(ObjectId(object), Arc::new(LinearPredictor));
                    }
                }
                let bytes = &frames[next];
                next += 1;
                // The pre-view pipeline: materialise a Vec<Update>, then
                // apply it under one lock.
                let frame = Frame::decode(black_box(bytes)).expect("decodes");
                let applied = service.apply_frame(&frame);
                assert_eq!(applied, UPDATES_PER_FRAME, "stale-rejected frame in the bench loop");
                applied
            })
        });
    }
    ingest.finish();

    let mut query = c.benchmark_group("hotpath_queries_256_objects");
    {
        let (service, _) = fixture(1);
        let area = Aabb::around(Point::new(4_050.0, 3_980.0), 600.0);
        let from = Point::new(4_050.0, 3_980.0);
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        query.bench_function("rect_into_reused_buffers", |b| {
            b.iter(|| {
                service.objects_in_rect_into(&area, 1.0, &mut scratch, &mut out);
                out.len()
            })
        });
        query.bench_function("rect_allocating", |b| {
            b.iter(|| black_box(service.objects_in_rect(&area, 1.0)).len())
        });
        query.bench_function("nearest_into_reused_buffers", |b| {
            b.iter(|| {
                service.nearest_objects_into(&from, 1.0, 5, &mut scratch, &mut out);
                out.len()
            })
        });
        query.bench_function("nearest_allocating", |b| {
            b.iter(|| black_box(service.nearest_objects(&from, 1.0, 5)).len())
        });
    }
    query.finish();

    let mut predict = c.benchmark_group("hotpath_map_predict");
    {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let junction = b.add_node(Point::new(500.0, 0.0));
        let c2 = b.add_node(Point::new(1000.0, 120.0));
        let d = b.add_node(Point::new(520.0, -500.0));
        let approach = b.add_straight_link(a, junction, RoadClass::Arterial);
        b.add_straight_link(junction, c2, RoadClass::Arterial);
        b.add_straight_link(junction, d, RoadClass::Residential);
        let network = Arc::new(b.build().expect("valid network"));
        let predictor = MapPredictor::new(network);
        let state = ObjectState {
            position: Point::new(100.0, 0.0),
            speed: 12.0,
            heading: std::f64::consts::FRAC_PI_2,
            timestamp: 0.0,
            link: Some(approach),
            arc_length: 100.0,
            towards: Some(NodeId(1)),
            turn_rate: 0.0,
        };
        let mut t = 0usize;
        predict.bench_function("y_junction_walk", |b| {
            b.iter(|| {
                t += 1;
                predictor.predict(black_box(&state), (t % 64) as f64)
            })
        });
    }
    predict.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
