//! Criterion micro-bench comparing the two spatial indexes on the
//! candidate-link query the map matcher issues once per second.

use criterion::{criterion_group, criterion_main, Criterion};
use mbdr_geo::{Aabb, Point};
use mbdr_roadnet::gen::city_grid;
use mbdr_spatial::{GridIndex, RTree, SpatialIndex};

fn link_boxes() -> Vec<(Aabb, u32)> {
    let net = city_grid::generate_default(7);
    net.links()
        .iter()
        .flat_map(|l| {
            l.geometry
                .segments()
                .map(move |s| (Aabb::from_points([s.a, s.b]).expect("two points"), l.id.0))
        })
        .collect()
}

fn bench_spatial(c: &mut Criterion) {
    let items = link_boxes();
    let rtree = RTree::bulk_load(items.clone());
    let grid = GridIndex::bulk_load(50.0, items.clone());
    let queries: Vec<Point> =
        (0..256).map(|i| Point::new((i * 17 % 3000) as f64, (i * 31 % 3000) as f64)).collect();

    let mut group = c.benchmark_group("spatial_query_within_30m");
    group.bench_function("rtree", |b| {
        b.iter(|| queries.iter().map(|q| rtree.query_within(q, 30.0).len()).sum::<usize>())
    });
    group.bench_function("grid", |b| {
        b.iter(|| queries.iter().map(|q| grid.query_within(q, 30.0).len()).sum::<usize>())
    });
    group.finish();

    let mut build = c.benchmark_group("spatial_build");
    build.sample_size(20);
    build.bench_function("rtree_bulk_load", |b| b.iter(|| RTree::bulk_load(items.clone()).len()));
    build.bench_function("grid_bulk_load", |b| {
        b.iter(|| GridIndex::bulk_load(50.0, items.clone()).len())
    });
    build.finish();
}

criterion_group!(benches, bench_spatial);
criterion_main!(benches);
