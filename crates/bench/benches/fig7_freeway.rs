//! Criterion bench regenerating the workload of Figure 7 (freeway scenario):
//! one full protocol sweep (distance-based, linear DR, map-based DR) at a
//! reduced trace scale, so `cargo bench` both times the simulator and checks
//! the figure's qualitative shape on every run.

use criterion::{criterion_group, criterion_main, Criterion};
use mbdr_bench::{scenario_data, DEFAULT_SEED};
use mbdr_sim::runner::RunConfig;
use mbdr_sim::{sweep_scenario, ProtocolKind};
use mbdr_trace::ScenarioKind;

fn bench_figure(c: &mut Criterion) {
    let data = scenario_data(ScenarioKind::Freeway, 0.05, DEFAULT_SEED);
    let accuracies = [50.0, 250.0];
    let mut group = c.benchmark_group("fig7_freeway");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| {
            let result =
                sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
            assert_eq!(result.points.len(), 6);
            result
        })
    });
    group.finish();

    // Shape check recorded once per bench run (not timed): dead reckoning must
    // not lose to the distance-based baseline.
    let result = sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
    for &a in &accuracies {
        let base = result.point(ProtocolKind::DistanceBased, a).unwrap().metrics.updates_per_hour;
        let map = result.point(ProtocolKind::MapBased, a).unwrap().metrics.updates_per_hour;
        assert!(map <= base, "figure 7 shape violated at u_s = {a}");
    }
}

criterion_group!(benches, bench_figure);
criterion_main!(benches);
