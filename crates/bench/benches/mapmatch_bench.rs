//! Criterion micro-bench for the map matcher: matching throughput over a full
//! city trace (the per-fix cost the source pays for running the map-based
//! protocol).

use criterion::{criterion_group, criterion_main, Criterion};
use mbdr_bench::{scenario_data, DEFAULT_SEED};
use mbdr_mapmatch::{MapMatcher, MatcherConfig};
use mbdr_trace::ScenarioKind;
use std::sync::Arc;

fn bench_mapmatch(c: &mut Criterion) {
    let data = scenario_data(ScenarioKind::City, 0.05, DEFAULT_SEED);
    let network = Arc::new(data.network.clone());
    let mut group = c.benchmark_group("mapmatch");
    group.sample_size(20);
    group.bench_function("full_city_trace", |b| {
        b.iter(|| {
            let mut matcher = MapMatcher::for_network(
                Arc::clone(&network),
                MatcherConfig::with_tolerance(data.matching_tolerance),
            );
            let mut matched = 0usize;
            for fix in &data.trace.fixes {
                if matcher.update(fix.position).is_matched() {
                    matched += 1;
                }
            }
            assert!(matched > 0);
            matched
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mapmatch);
criterion_main!(benches);
