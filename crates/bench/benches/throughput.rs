//! Criterion micro-benches of the sharded location service's hot paths:
//! update ingestion (index re-anchor included) and the two motivating
//! queries, at 1 vs. 16 shards so lock striping and index pruning stay
//! visible in the numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mbdr_core::{LinearPredictor, ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig};
use std::sync::Arc;

const OBJECTS: u64 = 512;

fn update_for(object: u64, step: u64) -> Update {
    // A deterministic swirl of vehicles over a ~8 km square.
    let phase = (object * 37 + step * 11) % 8_000;
    Update {
        sequence: step,
        state: ObjectState::basic(
            Point::new((object * 16 % 8_000) as f64, phase as f64),
            12.0,
            (object % 6) as f64,
            step as f64,
        ),
        kind: UpdateKind::DeviationBound,
    }
}

fn populated(shards: usize) -> LocationService {
    let service = LocationService::with_config(ServiceConfig::with_shards(shards));
    for object in 0..OBJECTS {
        service.register(ObjectId(object), Arc::new(LinearPredictor));
        service.apply_update(ObjectId(object), &update_for(object, 0));
    }
    service
}

fn bench_throughput(c: &mut Criterion) {
    let mut ingest = c.benchmark_group("service_ingest_4096_updates");
    for shards in [1usize, 16] {
        let service = populated(shards);
        ingest.bench_function(&format!("one_at_a_time/shards_{shards}"), |b| {
            let mut step = 0u64;
            b.iter(|| {
                step += 1;
                for object in 0..4_096u64 {
                    service.apply_update(ObjectId(object % OBJECTS), &update_for(object, step));
                }
                service.total_updates()
            })
        });
        // The same traffic through apply_batch: each stripe lock is taken
        // once per batch instead of once per update.
        let service = populated(shards);
        ingest.bench_function(&format!("batched_256/shards_{shards}"), |b| {
            let mut step = 0u64;
            let mut batch = Vec::with_capacity(256);
            b.iter(|| {
                step += 1;
                for chunk_start in (0..4_096u64).step_by(256) {
                    batch.clear();
                    batch.extend(
                        (chunk_start..chunk_start + 256)
                            .map(|object| (ObjectId(object % OBJECTS), update_for(object, step))),
                    );
                    black_box(service.apply_batch(&batch));
                }
                service.total_updates()
            })
        });
    }
    ingest.finish();

    let mut query = c.benchmark_group("service_queries_512_objects");
    for shards in [1usize, 16] {
        let service = populated(shards);
        query.bench_function(&format!("rect_600m/shards_{shards}"), |b| {
            b.iter(|| {
                let area = Aabb::around(Point::new(4_000.0, 4_000.0), 600.0);
                black_box(service.objects_in_rect(&area, 1.0)).len()
            })
        });
        query.bench_function(&format!("nearest_5/shards_{shards}"), |b| {
            b.iter(|| black_box(service.nearest_objects(&Point::new(4_000.0, 4_000.0), 1.0, 5)))
        });
    }
    query.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
