//! Criterion bench for Table 1: generating the four scenario traces
//! (map generation + trip planning + motion simulation + GPS noise).

use criterion::{criterion_group, criterion_main, Criterion};
use mbdr_bench::{scenario_data, DEFAULT_SEED};
use mbdr_trace::{ScenarioKind, TraceStats};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_traces");
    group.sample_size(10);
    for kind in ScenarioKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let data = scenario_data(kind, 0.05, DEFAULT_SEED);
                let stats = TraceStats::of(&data.trace);
                assert!(stats.length_km > 0.0);
                stats
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
