//! Criterion micro-benches of the TCP serving layer over loopback: the
//! ingest round trip (frame encode → socket → decode → sharded apply →
//! flush barrier) and the two motivating queries as full request–response
//! round trips, next to the in-process calls they wrap so the network tax
//! stays visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mbdr_core::{Frame, LinearPredictor, ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig};
use mbdr_net::{NetClient, NetServer, ServerConfig};
use std::sync::Arc;

const OBJECTS: u64 = 256;

fn update_for(object: u64, step: u64) -> Update {
    let phase = (object * 37 + step * 11) % 8_000;
    Update {
        sequence: step,
        state: ObjectState::basic(
            Point::new((object * 16 % 8_000) as f64, phase as f64),
            12.0,
            (object % 6) as f64,
            step as f64,
        ),
        kind: UpdateKind::DeviationBound,
    }
}

fn populated_server() -> NetServer {
    let service = Arc::new(LocationService::with_config(ServiceConfig::with_shards(16)));
    for object in 0..OBJECTS {
        service.register(ObjectId(object), Arc::new(LinearPredictor));
        service.apply_update(ObjectId(object), &update_for(object, 0));
    }
    NetServer::bind(service, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback")
}

fn bench_net(c: &mut Criterion) {
    let server = populated_server();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let service = Arc::clone(server.service());

    let mut group = c.benchmark_group("net_serving_layer");
    group.bench_function("ingest_16_update_frame_with_flush", |b| {
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            let mut frame = Frame::new(step % OBJECTS);
            for i in 0..16u64 {
                frame.push(update_for(frame.source, step * 16 + i));
            }
            client.send_frame(&frame).expect("send");
            client.flush().expect("flush").updates_applied
        })
    });
    group.bench_function("rect_query_roundtrip", |b| {
        let area = Aabb::around(Point::new(4_000.0, 4_000.0), 600.0);
        b.iter(|| black_box(client.objects_in_rect(&area, 1.0).expect("rect")).len())
    });
    group.bench_function("rect_query_in_process", |b| {
        let area = Aabb::around(Point::new(4_000.0, 4_000.0), 600.0);
        b.iter(|| black_box(service.objects_in_rect(&area, 1.0)).len())
    });
    group.bench_function("nearest_5_roundtrip", |b| {
        b.iter(|| {
            black_box(client.nearest_objects(&Point::new(4_000.0, 4_000.0), 1.0, 5))
                .expect("nearest")
                .len()
        })
    });
    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
