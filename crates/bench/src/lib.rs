//! # mbdr-bench — the experiment harness
//!
//! One function per paper artefact: [`table1`] regenerates Table 1,
//! [`figure`] regenerates the data behind Figures 7–10, [`summary`] computes
//! the headline reduction percentages, [`updates_along_route`] reproduces the
//! Fig. 3 / Fig. 6 comparison (where along the route each protocol had to send
//! an update), and [`ablations`] runs the additional design-choice studies
//! DESIGN.md lists. The `reproduce` binary is a thin CLI over these functions,
//! and the Criterion benches reuse them at reduced scale. Beyond the paper's
//! artefacts, [`throughput`] sweeps the concurrent fleet workload over the
//! sharded location service (objects × shards × query mix) as the service's
//! perf baseline, [`wire`] sweeps the lossy-uplink channel model over loss
//! rates as the wire protocol's accuracy/overhead baseline, and [`netbase`]
//! drives the TCP serving layer over loopback as the end-to-end network
//! baseline, and [`scale`] sweeps the synthetic million-object workload
//! (uniform and Zipf-hotspot placement) over the spatial data plane as the
//! large-N baseline. [`check`] is the regression gate: it parses the committed
//! `baselines/BENCH_*.json` files and compares fresh output against them
//! with per-metric tolerances (`reproduce <cmd> --check`). [`hotpath`]
//! measures the steady-state ingest/query/predict pipeline under the
//! counting allocator ([`alloccount`]) and pins its allocations-per-
//! operation at zero. [`recovery`] is the durability baseline: journaled
//! ingest, kill-and-recover bit-identity against an uninterrupted twin, and
//! torn-tail repair arithmetic, all strict-gated. [`faults`] is the
//! degraded-mode baseline: a seeded disk outage mid-stream
//! ([`mbdr_sim::FaultPlan`]), probe-driven self-healing, then a crash whose
//! recovery must lose nothing acknowledged — exact degraded-frame
//! accounting and `bit_identical_acknowledged`, all strict-gated.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod alloccount;
pub mod check;
pub mod faults;
pub mod hotpath;
pub mod netbase;
pub mod recovery;
pub mod scale;
pub mod throughput;
pub mod wire;

use mbdr_geo::Point;
use mbdr_sim::protocols::ProtocolContext;
use mbdr_sim::runner::{run_protocol, RunConfig};
use mbdr_sim::{sweep_scenario, ProtocolKind, SweepResult};
use mbdr_trace::{Scenario, ScenarioData, ScenarioKind, TraceStats};

/// Default random seed used by all experiments (fixed for reproducibility).
pub const DEFAULT_SEED: u64 = 2001;

/// Every `reproduce` subcommand, in the order the usage string lists them.
/// The binary's parser, its usage output, and the operations runbook
/// (`docs/OPERATIONS.md`) are all tested against this one list, so a command
/// cannot be added or renamed without the documentation following.
pub const REPRODUCE_COMMANDS: [&str; 20] = [
    "table1",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "figures",
    "summary",
    "updates-trace",
    "ablations",
    "json",
    "throughput",
    "wire",
    "net",
    "connscale",
    "hotpath",
    "scale",
    "recovery",
    "faults",
    "analyze",
    "all",
];

/// Builds the scenario data for one movement pattern at the given scale
/// (1.0 = the paper's full trace length).
pub fn scenario_data(kind: ScenarioKind, scale: f64, seed: u64) -> ScenarioData {
    Scenario { kind, scale, seed }.build()
}

/// One row of Table 1: the scenario label and the trace statistics.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Scenario label ("car, freeway", …).
    pub label: &'static str,
    /// Statistics of the synthetic trace.
    pub stats: TraceStats,
    /// The paper's reported values for comparison (length km, duration s,
    /// average km/h, maximum km/h).
    pub paper: (f64, f64, f64, f64),
}

/// Regenerates Table 1 (characteristics of the four traces) at the given
/// scale.
pub fn table1(scale: f64, seed: u64) -> Vec<Table1Row> {
    let paper = |kind: ScenarioKind| match kind {
        ScenarioKind::Freeway => (163.0, 1.0 * 3600.0 + 35.0 * 60.0, 103.0, 155.0),
        ScenarioKind::Interurban => (99.0, 1.0 * 3600.0 + 39.0 * 60.0, 60.0, 116.0),
        ScenarioKind::City => (89.0, 2.0 * 3600.0 + 25.0 * 60.0, 34.0, 65.0),
        ScenarioKind::Walking => (10.0, 2.0 * 3600.0 + 8.0 * 60.0, 4.6, 7.2),
    };
    ScenarioKind::ALL
        .iter()
        .map(|&kind| {
            let data = scenario_data(kind, scale, seed);
            Table1Row { label: kind.name(), stats: TraceStats::of(&data.trace), paper: paper(kind) }
        })
        .collect()
}

/// The figure each scenario corresponds to in the paper.
pub fn figure_number(kind: ScenarioKind) -> u32 {
    match kind {
        ScenarioKind::Freeway => 7,
        ScenarioKind::Interurban => 8,
        ScenarioKind::City => 9,
        ScenarioKind::Walking => 10,
    }
}

/// Regenerates the data behind one of Figures 7–10: updates per hour
/// (absolute and relative to distance-based reporting) for every requested
/// accuracy in the paper's sweep.
pub fn figure(kind: ScenarioKind, scale: f64, seed: u64) -> SweepResult {
    let data = scenario_data(kind, scale, seed);
    sweep_scenario(&data, &ProtocolKind::PAPER_SET, &kind.accuracy_sweep(), RunConfig::default())
}

/// Headline reductions derived from the four figures: the paper reports up to
/// 83 % reduction for linear DR vs. distance-based reporting (freeway), a
/// further up to 60 % for map-based vs. linear, and up to 91 % overall.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// Scenario label.
    pub scenario: String,
    /// Maximum reduction of linear DR vs. distance-based reporting, percent.
    pub linear_vs_distance_pct: f64,
    /// Maximum reduction of map-based DR vs. linear DR, percent.
    pub map_vs_linear_pct: f64,
    /// Maximum reduction of map-based DR vs. distance-based reporting, percent.
    pub map_vs_distance_pct: f64,
}

/// Computes the headline reduction percentages from already-computed figures.
pub fn summary(figures: &[SweepResult]) -> Vec<SummaryRow> {
    figures
        .iter()
        .map(|f| SummaryRow {
            scenario: f.scenario.clone(),
            linear_vs_distance_pct: f
                .max_reduction_pct(ProtocolKind::Linear, ProtocolKind::DistanceBased)
                .unwrap_or(0.0),
            map_vs_linear_pct: f
                .max_reduction_pct(ProtocolKind::MapBased, ProtocolKind::Linear)
                .unwrap_or(0.0),
            map_vs_distance_pct: f
                .max_reduction_pct(ProtocolKind::MapBased, ProtocolKind::DistanceBased)
                .unwrap_or(0.0),
        })
        .collect()
}

/// Update positions along one route for one protocol — the data behind the
/// Fig. 3 (linear) vs. Fig. 6 (map-based) screenshots: "9 position updates
/// with a linear prediction protocol" vs. "3 position updates with a map-based
/// protocol on the same route".
pub fn updates_along_route(
    data: &ScenarioData,
    protocol: ProtocolKind,
    requested_accuracy: f64,
) -> Vec<Point> {
    let ctx = ProtocolContext::for_scenario(data);
    let outcome =
        run_protocol(&data.trace, protocol.build(&ctx, requested_accuracy), RunConfig::default());
    outcome.updates.iter().map(|u| u.state.position).collect()
}

/// An ablation study: a named sweep with a non-default protocol set.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What the study varies.
    pub name: String,
    /// The sweep result.
    pub result: SweepResult,
}

/// Runs the ablation studies listed in DESIGN.md:
///
/// 1. **Intersection policy** — smallest angle (paper) vs. probability-trained
///    vs. main-road priority vs. first-link, on the city scenario, where
///    intersections are frequent.
/// 2. **Prediction order** — linear vs. higher-order (arc) vs. map-based, on
///    the inter-urban scenario (long curves).
/// 3. **Prior-art comparison** — known-route and Wolfson-style adaptive
///    policies against the paper set, on the freeway scenario.
pub fn ablations(scale: f64, seed: u64) -> Vec<Ablation> {
    let accuracy_subset = [50.0, 100.0, 250.0];
    let city = scenario_data(ScenarioKind::City, scale, seed);
    let interurban = scenario_data(ScenarioKind::Interurban, scale, seed);
    let freeway = scenario_data(ScenarioKind::Freeway, scale, seed);
    vec![
        Ablation {
            name: "intersection policy (city)".into(),
            result: sweep_scenario(
                &city,
                &[
                    ProtocolKind::MapBased,
                    ProtocolKind::MapProbability,
                    ProtocolKind::MapMainRoad,
                    ProtocolKind::MapFirstLink,
                    ProtocolKind::DistanceBased,
                ],
                &accuracy_subset,
                RunConfig::default(),
            ),
        },
        Ablation {
            name: "prediction order (inter-urban)".into(),
            result: sweep_scenario(
                &interurban,
                &[
                    ProtocolKind::Linear,
                    ProtocolKind::HigherOrder,
                    ProtocolKind::MapBased,
                    ProtocolKind::DistanceBased,
                ],
                &accuracy_subset,
                RunConfig::default(),
            ),
        },
        Ablation {
            name: "prior art (freeway)".into(),
            result: sweep_scenario(
                &freeway,
                &[
                    ProtocolKind::MapBased,
                    ProtocolKind::KnownRoute,
                    ProtocolKind::Adaptive,
                    ProtocolKind::DisconnectionDetection,
                    ProtocolKind::DistanceBased,
                ],
                &accuracy_subset,
                RunConfig::default(),
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_in_paper_order() {
        let rows = table1(0.03, DEFAULT_SEED);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "car, freeway");
        assert_eq!(rows[3].label, "walking person");
        for row in &rows {
            assert!(row.stats.length_km > 0.0);
            assert!(row.stats.max_speed_kmh >= row.stats.average_speed_kmh);
        }
    }

    #[test]
    fn figure_numbers_match_the_paper() {
        assert_eq!(figure_number(ScenarioKind::Freeway), 7);
        assert_eq!(figure_number(ScenarioKind::Walking), 10);
    }

    #[test]
    fn updates_along_route_shows_the_fig3_fig6_effect() {
        let data = scenario_data(ScenarioKind::Freeway, 0.05, DEFAULT_SEED);
        let linear = updates_along_route(&data, ProtocolKind::Linear, 100.0);
        let map = updates_along_route(&data, ProtocolKind::MapBased, 100.0);
        assert!(!map.is_empty());
        assert!(
            map.len() <= linear.len(),
            "map-based ({}) must not need more updates than linear ({})",
            map.len(),
            linear.len()
        );
    }
}
