//! The service-throughput experiment: the concurrent fleet workload of
//! [`mbdr_sim::service_workload`] swept over a grid of
//! (objects × shards × query mix), emitted as JSON so the ingest and query
//! throughput of the sharded location service is tracked as a perf baseline
//! from this change on (`reproduce throughput`).

use mbdr_sim::{run_service_workload, QueryMix, WorkloadConfig, WorkloadReport};

/// The workload grid at the given scale — every combination of fleet size,
/// shard count, query mix and ingest mode (per-update vs per-round
/// `apply_batch`), so the batching win stays visible next to the lock-striping
/// win. `scale` shrinks fleet size, trip length and query counts together, so
/// `--scale 0.02` is a seconds-long smoke run while `--scale 1.0` is the full
/// measurement.
pub fn throughput_grid(scale: f64, seed: u64) -> Vec<WorkloadReport> {
    let objects_axis = [64usize, 192];
    let shards_axis = [1usize, 16];
    let mix_axis = [QueryMix::RECT_HEAVY, QueryMix::NEAREST_HEAVY];
    let ingest_axis = [false, true];
    let mut reports = Vec::new();
    for &objects_base in &objects_axis {
        for &shards in &shards_axis {
            for &query_mix in &mix_axis {
                for &batched_ingest in &ingest_axis {
                    let config = WorkloadConfig {
                        objects: ((objects_base as f64 * scale).round() as usize).max(8),
                        shards,
                        producers: 4,
                        query_threads: 4,
                        queries_per_thread: ((600.0 * scale) as usize).max(40),
                        query_mix,
                        trip_length_m: (3_000.0 * scale).max(400.0),
                        requested_accuracy: 100.0,
                        protocol: mbdr_sim::ProtocolKind::MapBased,
                        batched_ingest,
                        seed,
                    };
                    reports.push(run_service_workload(&config));
                }
            }
        }
    }
    reports
}

/// Renders the grid as one JSON document (schema `mbdr-throughput/1`).
pub fn render_throughput_json(scale: f64, seed: u64, reports: &[WorkloadReport]) -> String {
    let mut out = format!(
        "{{\"schema\":\"mbdr-throughput/1\",\"scale\":{scale},\"seed\":{seed},\"points\":["
    );
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report.to_json());
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_produces_json_with_throughput_fields() {
        // Tiny smoke scale: the same path CI exercises.
        let reports = throughput_grid(0.02, 7);
        assert_eq!(reports.len(), 16, "2 fleet sizes x 2 shard counts x 2 mixes x 2 ingest modes");
        assert_eq!(reports.iter().filter(|r| r.batched_ingest).count(), 8);
        for r in &reports {
            assert!(r.updates_per_sec > 0.0);
            assert!(r.queries_per_sec > 0.0);
            assert_eq!(r.updates_applied, r.updates_sent);
        }
        let json = render_throughput_json(0.02, 7, &reports);
        assert!(json.contains("\"schema\":\"mbdr-throughput/1\""));
        assert!(json.contains("\"batched_ingest\":true"));
        assert!(json.contains("\"updates_per_sec\":"));
        assert!(json.contains("\"queries_per_sec\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
