//! The million-object-scale baseline behind `reproduce scale`: the
//! [`mbdr_sim::scale_workload`] grid over N × {uniform, hotspot}, emitted as
//! JSON and gated against `baselines/BENCH_scale.json`.
//!
//! The committed baseline runs the CI-sized axis (N up to 10⁵ at
//! `--scale 1.0`); the criterion bench (`benches/scale_bench.rs`) carries
//! the 10⁶ point for local runs. Result counts, occupancy diagnostics and
//! the candidate-dedup counters are single-threaded and seed-determined, so
//! the gate compares them strictly; wall clocks and throughputs ride along
//! as machine-dependent sanity checks.

use mbdr_sim::{run_scale_workload, ScaleConfig, ScaleReport};
use std::fmt::Write as _;

/// The N axis of the committed baseline (scaled by `--scale`, floored so a
/// smoke run still exercises a multi-cell, multi-shard fleet).
pub const SCALE_N_AXIS: [usize; 2] = [10_000, 100_000];

/// Runs the baseline grid: every N in [`SCALE_N_AXIS`] (multiplied by
/// `scale`) in uniform and hotspot mode.
pub fn scale_grid(scale: f64, seed: u64) -> Vec<ScaleReport> {
    let mut points = Vec::new();
    for &n in &SCALE_N_AXIS {
        let objects = ((n as f64 * scale).round() as usize).max(500);
        for hotspot in [false, true] {
            points.push(run_scale_workload(&ScaleConfig::standard(objects, hotspot, seed)));
        }
    }
    points
}

/// Renders the grid as one JSON document (schema `mbdr-scale/1`).
pub fn render_scale_json(scale: f64, seed: u64, points: &[ScaleReport]) -> String {
    let mut out = String::from("{\"schema\":\"mbdr-scale/1\"");
    let _ = write!(out, ",\"scale\":{scale},\"seed\":{seed},\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"objects\":{},\"hotspot\":{},\"updates_applied\":{},\
             \"ingest_wall_s\":{:.4},\"updates_per_sec\":{:.1},\
             \"rect_queries\":{},\"nearest_queries\":{},\
             \"rect_hits\":{},\"nearest_hits\":{},\
             \"rect_wall_s\":{:.4},\"nearest_wall_s\":{:.4},\
             \"rect_per_sec\":{:.1},\"nearest_per_sec\":{:.1},\
             \"indexed\":{},\"occupied_cells\":{},\"max_cell_occupancy\":{},\
             \"candidates_inspected\":{},\"candidates_unique\":{}}}",
            p.objects,
            p.hotspot,
            p.updates_applied,
            p.ingest_wall_s,
            p.updates_per_sec,
            p.rect_queries,
            p.nearest_queries,
            p.rect_hits,
            p.nearest_hits,
            p.rect_wall_s,
            p.nearest_wall_s,
            p.rect_per_sec,
            p.nearest_per_sec,
            p.indexed,
            p.occupied_cells,
            p.max_cell_occupancy,
            p.candidates_inspected,
            p.candidates_unique,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_renders_valid_deterministic_json() {
        let points = scale_grid(0.01, 7);
        assert_eq!(points.len(), 4, "two N points x two placement modes");
        assert!(points.iter().all(|p| p.indexed == p.objects));
        let json = render_scale_json(0.01, 7, &points);
        assert!(json.contains("\"schema\":\"mbdr-scale/1\""));
        assert!(json.contains("\"max_cell_occupancy\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let doc = crate::check::parse_json(&json).expect("scale JSON parses");
        let again = render_scale_json(0.01, 7, &scale_grid(0.01, 7));
        let report = crate::check::compare_baseline(
            &doc,
            &crate::check::parse_json(&again).expect("parses"),
        );
        assert!(report.passed(), "{:?}", report.mismatches);
    }
}
