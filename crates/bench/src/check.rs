//! The regression gate behind `reproduce <cmd> --check`: a dependency-free
//! JSON parser plus a baseline comparator with per-metric tolerances.
//!
//! The baselines (`baselines/BENCH_<cmd>.json`) are committed outputs of the
//! JSON-emitting reproduce commands at CI's smoke scales. A check run
//! regenerates the document and walks both trees in parallel:
//!
//! * **strict** metrics — counts, config echoes, byte totals, the
//!   single-threaded deviation sweeps — must match the baseline to within a
//!   tiny relative tolerance (they are fully determined by the seed);
//! * **timing** metrics (wall clocks, throughputs, latencies) are machine-
//!   dependent: they are only required to be finite and non-negative (a
//!   sub-resolution wall clock legitimately renders as zero);
//! * **loose** metrics (anything under an `accuracy` object, the query
//!   result counts of the thread-skewed in-process workload, and the
//!   readiness-loop diagnostics of the TCP documents) depend on thread
//!   interleaving or kernel scheduling: they are only required to be finite
//!   and non-negative.
//!
//! Any structural difference — missing key, extra key, array length change,
//! schema string change — fails the check outright: schema evolution must go
//! through `--write-baseline`, not slip past the gate.

use std::fmt::Write as _;

/// A parsed JSON value (only what the baselines need — no escapes beyond
/// `\"` and `\\` ever appear in the hand-written documents).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; the baselines stay far below 2^53).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns a message with the byte offset on
/// malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let value = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing content at byte {at}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && bytes[*at].is_ascii_whitespace() {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*at) == Some(&byte) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {at}", byte as char, at = *at))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        Some(b'{') => parse_object(bytes, at),
        Some(b'[') => parse_array(bytes, at),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, at)?)),
        Some(b't') => parse_literal(bytes, at, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, at, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, at, "null", Json::Null),
        Some(_) => parse_number(bytes, at),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], at: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {at}", at = *at))
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    let start = *at;
    while *at < bytes.len() && matches!(bytes[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *at += 1;
    }
    std::str::from_utf8(&bytes[start..*at])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    expect(bytes, at, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                let escaped = *bytes.get(*at + 1).ok_or("unterminated escape")?;
                match escaped {
                    b'"' | b'\\' | b'/' => out.push(escaped as char),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                }
                *at += 2;
            }
            Some(&b) => {
                // The baselines are ASCII, but pass UTF-8 bytes through so a
                // future label does not break the parser.
                out.push(b as char);
                *at += 1;
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_array(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    expect(bytes, at, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, at)?);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {at}", at = *at)),
        }
    }
}

fn parse_object(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    expect(bytes, at, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        expect(bytes, at, b':')?;
        fields.push((key, parse_value(bytes, at)?));
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {at}", at = *at)),
        }
    }
}

/// How a numeric leaf is judged against its baseline value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricClass {
    /// Deterministic for a fixed seed: relative tolerance `1e-6`.
    Strict,
    /// Machine-dependent wall clock / rate: finite and non-negative.
    Timing,
    /// Thread-interleaving-dependent: finite and non-negative.
    Loose,
}

/// Wall-clock and rate metrics, judged by name wherever they appear. The
/// scale baseline splits each document cleanly along this line: result
/// counts, occupancy diagnostics and dedup counters are seed-deterministic
/// (strict), while every wall clock and throughput below is machine-
/// dependent (sanity-only).
const TIMING_KEYS: [&str; 19] = [
    "wall_ms",
    "ingest_wall_s",
    "open_wall_s",
    "opens_per_sec",
    "query_wall_s",
    "rect_wall_s",
    "nearest_wall_s",
    "recover_wall_s",
    "updates_per_sec",
    "journaled_updates_per_sec",
    "queries_per_sec",
    "predicts_per_sec",
    "rect_per_sec",
    "nearest_per_sec",
    "replay_per_sec",
    "latency_p50_ms",
    "latency_p99_ms",
    "p50_ms",
    "p99_ms",
];

/// Query result counts whose determinism depends on the document: in the
/// in-process throughput workload they depend on producer/query thread skew
/// (loose), while the TCP workload pins its query instant to one post-flush
/// moment, making them fully seed-determined (strict).
const SKEW_DEPENDENT_KEYS: [&str; 3] = ["rect_results", "nearest_results", "zone_events"];

/// Readiness-loop diagnostics: how many times a reactor woke, how often a
/// wakeup found nothing to do, how often ingest admission pushed back. They
/// depend on kernel scheduling and batching, never on the seed, so they are
/// loose in every document that carries them.
const SCHEDULING_KEYS: [&str; 3] = ["readiness_wakeups", "spurious_wakeups", "backpressure_stalls"];

fn classify(path: &[String], skewed_results: bool) -> MetricClass {
    let last = path.last().map(String::as_str).unwrap_or("");
    // Everything under the thread-skewed `accuracy` object is loose; the
    // single-threaded `deviation` sweeps stay strict.
    if path.iter().any(|segment| segment == "accuracy") {
        return MetricClass::Loose;
    }
    if TIMING_KEYS.contains(&last) {
        return MetricClass::Timing;
    }
    if SCHEDULING_KEYS.contains(&last) {
        return MetricClass::Loose;
    }
    if skewed_results && SKEW_DEPENDENT_KEYS.contains(&last) {
        return MetricClass::Loose;
    }
    MetricClass::Strict
}

/// Outcome of one baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Human-readable mismatch descriptions (empty means the check passed).
    pub mismatches: Vec<String>,
    /// Leaves compared strictly.
    pub strict_compared: usize,
    /// Leaves only sanity-checked (timing + loose).
    pub sanity_checked: usize,
}

impl CheckReport {
    /// Whether the current document is within tolerance of the baseline.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    fn fail(&mut self, path: &[String], message: String) {
        let mut where_ = String::new();
        for (i, segment) in path.iter().enumerate() {
            if i > 0 {
                where_.push('.');
            }
            let _ = write!(where_, "{segment}");
        }
        if where_.is_empty() {
            where_.push_str("<root>");
        }
        self.mismatches.push(format!("{where_}: {message}"));
    }
}

/// Compares a freshly generated document against its committed baseline.
pub fn compare_baseline(baseline: &Json, current: &Json) -> CheckReport {
    // Whether this document's query-result counts are thread-skew dependent
    // (see SKEW_DEPENDENT_KEYS): true for the in-process throughput
    // workload, false for the pinned-instant TCP workloads (`mbdr-net/1`
    // and `mbdr-connscale/1`), whose result counts are gated strictly.
    let skewed_results = !matches!(
        baseline.get("schema"),
        Some(Json::Str(s)) if s == "mbdr-net/1" || s == "mbdr-connscale/1"
    );
    let mut report = CheckReport::default();
    walk(baseline, current, &mut Vec::new(), skewed_results, &mut report);
    report
}

fn walk(
    baseline: &Json,
    current: &Json,
    path: &mut Vec<String>,
    skewed_results: bool,
    report: &mut CheckReport,
) {
    match (baseline, current) {
        (Json::Obj(base_fields), Json::Obj(cur_fields)) => {
            for (key, base_value) in base_fields {
                match current.get(key) {
                    Some(cur_value) => {
                        path.push(key.clone());
                        walk(base_value, cur_value, path, skewed_results, report);
                        path.pop();
                    }
                    None => report.fail(path, format!("key `{key}` missing from current output")),
                }
            }
            for (key, _) in cur_fields {
                if baseline.get(key).is_none() {
                    report.fail(
                        path,
                        format!(
                            "new key `{key}` not in the baseline (regenerate it with \
                             --write-baseline)"
                        ),
                    );
                }
            }
        }
        (Json::Arr(base_items), Json::Arr(cur_items)) => {
            if base_items.len() != cur_items.len() {
                report.fail(
                    path,
                    format!("array length {} != baseline {}", cur_items.len(), base_items.len()),
                );
                return;
            }
            for (i, (b, c)) in base_items.iter().zip(cur_items).enumerate() {
                path.push(format!("[{i}]"));
                walk(b, c, path, skewed_results, report);
                path.pop();
            }
        }
        (Json::Num(base), Json::Num(cur)) => {
            compare_number(*base, *cur, path, skewed_results, report)
        }
        (Json::Str(base), Json::Str(cur)) => {
            if base != cur {
                report.fail(path, format!("`{cur}` != baseline `{base}`"));
            } else {
                report.strict_compared += 1;
            }
        }
        (Json::Bool(base), Json::Bool(cur)) => {
            if base != cur {
                report.fail(path, format!("{cur} != baseline {base}"));
            } else {
                report.strict_compared += 1;
            }
        }
        (Json::Null, Json::Null) => report.strict_compared += 1,
        // `null` legitimately alternates with numbers only for metrics that
        // are loose or timing (e.g. bytes-per-applied-update at total loss);
        // sanity-check the numeric side and accept.
        (Json::Null, Json::Num(cur)) | (Json::Num(cur), Json::Null)
            if classify(path, skewed_results) != MetricClass::Strict =>
        {
            if cur.is_finite() {
                report.sanity_checked += 1;
            } else {
                report.fail(path, format!("{cur} is not finite"));
            }
        }
        _ => report.fail(path, "value kind differs from the baseline".into()),
    }
}

fn compare_number(
    base: f64,
    cur: f64,
    path: &[String],
    skewed_results: bool,
    report: &mut CheckReport,
) {
    match classify(path, skewed_results) {
        MetricClass::Strict => {
            let tolerance = 1e-9f64.max(1e-6 * base.abs().max(cur.abs()));
            if (base - cur).abs() <= tolerance {
                report.strict_compared += 1;
            } else {
                report.fail(path, format!("{cur} != baseline {base} (tolerance {tolerance:.2e})"));
            }
        }
        MetricClass::Timing => {
            // Not `> 0`: sub-resolution wall clocks legitimately render as
            // 0.0000 on a fast machine.
            if cur.is_finite() && cur >= 0.0 {
                report.sanity_checked += 1;
            } else {
                report
                    .fail(path, format!("timing metric {cur} is not a non-negative finite number"));
            }
        }
        MetricClass::Loose => {
            if cur.is_finite() && cur >= 0.0 {
                report.sanity_checked += 1;
            } else {
                report.fail(path, format!("{cur} is not a non-negative finite number"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{"schema":"mbdr-x/1","scale":0.05,"points":[
        {"updates_sent":120,"wall_ms":15.2,"rect_results":44,
         "accuracy":{"samples":10,"mean_m":3.5},"deviation":{"mean_m":2.0},
         "label":"a b","flag":true,"nothing":null}]}"#;

    #[test]
    fn parser_round_trips_the_baseline_shapes() {
        let doc = parse_json(DOC).unwrap();
        assert_eq!(doc.get("schema"), Some(&Json::Str("mbdr-x/1".into())));
        let Some(Json::Arr(points)) = doc.get("points") else { panic!("points array") };
        assert_eq!(points[0].get("updates_sent"), Some(&Json::Num(120.0)));
        assert_eq!(points[0].get("flag"), Some(&Json::Bool(true)));
        assert_eq!(points[0].get("nothing"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_garbage_with_positions() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn identical_documents_pass() {
        let doc = parse_json(DOC).unwrap();
        let report = compare_baseline(&doc, &doc);
        assert!(report.passed(), "{:?}", report.mismatches);
        assert!(report.strict_compared >= 5);
        assert!(report.sanity_checked >= 3, "wall_ms, rect_results, accuracy.*");
    }

    #[test]
    fn strict_drift_fails_but_timing_and_loose_drift_do_not() {
        let baseline = parse_json(DOC).unwrap();
        // Timing and loose fields may drift arbitrarily…
        let wobbly = DOC.replace("15.2", "99.9").replace(":44", ":7").replace("3.5", "120.0");
        assert!(compare_baseline(&baseline, &parse_json(&wobbly).unwrap()).passed());
        // …but a deterministic count may not.
        let drifted = DOC.replace("120", "121");
        let report = compare_baseline(&baseline, &parse_json(&drifted).unwrap());
        assert!(!report.passed());
        assert!(report.mismatches[0].contains("updates_sent"), "{:?}", report.mismatches);
        // Nor may the single-threaded deviation stats.
        let drifted =
            DOC.replace("\"deviation\":{\"mean_m\":2.0}", "\"deviation\":{\"mean_m\":9.0}");
        assert!(!compare_baseline(&baseline, &parse_json(&drifted).unwrap()).passed());
    }

    #[test]
    fn structural_changes_fail() {
        let baseline = parse_json(DOC).unwrap();
        let missing = DOC.replace("\"flag\":true,", "");
        let report = compare_baseline(&baseline, &parse_json(&missing).unwrap());
        assert!(report.mismatches.iter().any(|m| m.contains("missing")));
        let extra = DOC.replace("\"flag\":true", "\"flag\":true,\"extra\":1");
        let report = compare_baseline(&baseline, &parse_json(&extra).unwrap());
        assert!(report.mismatches.iter().any(|m| m.contains("--write-baseline")));
        let shorter = DOC.replace("\"points\":[", "\"points\":[999,");
        assert!(!compare_baseline(&baseline, &parse_json(&shorter).unwrap()).passed());
    }

    #[test]
    fn net_schema_gates_query_result_counts_strictly() {
        // In an mbdr-net/1 document the query phase is pinned to one
        // post-flush instant, so rect_results & co. are deterministic and a
        // drift must fail — unlike the thread-skewed throughput workload.
        let doc = r#"{"schema":"mbdr-net/1","points":[{"rect_results":44,"zone_events":9}]}"#;
        let baseline = parse_json(doc).unwrap();
        assert!(compare_baseline(&baseline, &baseline).passed());
        let drifted = doc.replace(":44", ":45");
        let report = compare_baseline(&baseline, &parse_json(&drifted).unwrap());
        assert!(!report.passed());
        assert!(report.mismatches[0].contains("rect_results"), "{:?}", report.mismatches);
    }

    #[test]
    fn scale_documents_split_timing_from_deterministic_keys() {
        // The mbdr-scale/1 point shape: wall clocks and throughputs may
        // drift freely, but result counts, occupancy diagnostics and dedup
        // counters are seed-determined and must be gated strictly.
        let doc = r#"{"schema":"mbdr-scale/1","points":[{"rect_hits":512,
            "rect_wall_s":0.25,"nearest_wall_s":0.12,"rect_per_sec":1600.0,
            "nearest_per_sec":3300.0,"occupied_cells":900,
            "max_cell_occupancy":450,"candidates_inspected":80000,
            "candidates_unique":64000}]}"#;
        let baseline = parse_json(doc).unwrap();
        let timing_drift = doc
            .replace("0.25", "9.75")
            .replace("0.12", "0.0")
            .replace("1600.0", "12.5")
            .replace("3300.0", "71000.0");
        assert!(compare_baseline(&baseline, &parse_json(&timing_drift).unwrap()).passed());
        for (needle, replacement) in [
            (":512", ":513"),
            (":900", ":901"),
            (":450", ":449"),
            (":80000", ":80001"),
            (":64000", ":63999"),
        ] {
            let drifted = doc.replace(needle, replacement);
            let report = compare_baseline(&baseline, &parse_json(&drifted).unwrap());
            assert!(!report.passed(), "{needle} should be strict");
        }
    }

    #[test]
    fn connscale_schema_gates_counts_strictly_but_not_scheduling_diagnostics() {
        // In an mbdr-connscale/1 document the thread accounting and the hot
        // subset's counts are deterministic (strict), while the readiness
        // diagnostics depend on how the kernel batched wakeups (loose).
        let doc = r#"{"schema":"mbdr-connscale/1","points":[{"rect_results":80,
            "resident_threads":11,"pool_threads":5,"open_wall_s":1.25,
            "server":{"readiness_wakeups":900,"spurious_wakeups":3,
            "backpressure_stalls":0,"updates_applied":6144}}]}"#;
        let baseline = parse_json(doc).unwrap();
        let wobbly = doc
            .replace(":900", ":123456")
            .replace(":3,", ":0,")
            .replace("\"backpressure_stalls\":0", "\"backpressure_stalls\":42")
            .replace("1.25", "0.01");
        assert!(compare_baseline(&baseline, &parse_json(&wobbly).unwrap()).passed());
        for needle in [":80", ":11", ":5", ":6144"] {
            let drifted = doc.replace(needle, &format!("{needle}1"));
            let report = compare_baseline(&baseline, &parse_json(&drifted).unwrap());
            assert!(!report.passed(), "{needle} should be strict");
        }
    }

    #[test]
    fn timing_metrics_accept_zero_but_reject_negatives() {
        // A sub-resolution wall clock legitimately renders as 0.0 on a fast
        // machine — that must pass; a negative value is garbage and fails.
        let baseline = parse_json(DOC).unwrap();
        let zeroed = DOC.replace("15.2", "0.0");
        assert!(compare_baseline(&baseline, &parse_json(&zeroed).unwrap()).passed());
        let negative = DOC.replace("15.2", "-3.0");
        let report = compare_baseline(&baseline, &parse_json(&negative).unwrap());
        assert!(report.mismatches.iter().any(|m| m.contains("wall_ms")));
    }
}
