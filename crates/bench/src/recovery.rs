//! The durability experiment behind `reproduce recovery`: journaled ingest,
//! kill-and-recover equivalence, and torn-tail repair, emitted as JSON and
//! gated against `baselines/BENCH_recovery.json`.
//!
//! Three phases, all seed-deterministic:
//!
//! 1. **Journaled ingest** — a [`LocationService`] with a write-ahead
//!    [`mbdr_journal::Journal`] attached (segment rotation and snapshot
//!    compaction both exercised) ingests a pre-encoded frame schedule. The
//!    journal counters (`appends`, `fsyncs`, `snapshots`) are strict gates:
//!    one record per frame, one batched fdatasync per
//!    [`FsyncPolicy::PerBatch`] window, snapshots exactly on cadence.
//! 2. **Kill and recover** — the service is dropped mid-flight (no clean
//!    shutdown) and a fresh one is rebuilt via
//!    [`mbdr_locserver::recover_and_attach`]. The rebuilt service is compared
//!    query-by-query (rect, nearest, per-object position over a time grid)
//!    against an uninterrupted in-memory twin; `bit_identical` is a strict
//!    `1` in the baseline, so any divergence — a float, an id, an ordering —
//!    fails the gate.
//! 3. **Torn tail** — a second journal (log-only, so the arithmetic stays
//!    exact) has the final byte of its last record flipped. Recovery must
//!    truncate exactly that record (`corrupt_truncated_bytes` is strict) and
//!    the result must equal a twin that never saw the final frame.
//!
//! Wall clocks (`ingest_wall_s`, `recover_wall_s`, `replay_per_sec`) ride
//! along under the machine-dependent metric class.

use mbdr_core::{Frame, LinearPredictor, ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_journal::{FsyncPolicy, JournalConfig, RECORD_HEADER_LEN};
use mbdr_locserver::{recover_and_attach, LocationService, ObjectId, ServiceConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Updates batched per journaled frame.
pub(crate) const UPDATES_PER_FRAME: usize = 4;

/// Fdatasync batch window of the journaled ingest phase (strictly gated:
/// `fsyncs` counts one sync per full window plus rotation/snapshot syncs).
const FSYNC_BATCH: u32 = 16;

/// Snapshot cadence of phase 1, in frames. Chosen so the torn-tail phase can
/// never collide with a snapshot floor (phase 3 disables snapshots anyway).
const SNAPSHOT_EVERY_FRAMES: u64 = 67;

/// One durability measurement (see the module docs). Every count is
/// seed-deterministic; only the `*_wall_s` / `*_per_sec` fields are
/// machine-dependent.
#[derive(Debug, Clone)]
pub struct RecoveryBench {
    /// Tracked objects.
    pub objects: usize,
    /// Frames journaled and ingested in phase 1.
    pub frames: usize,
    /// Updates per frame (config echo).
    pub updates_per_frame: usize,
    /// Updates the primary service accepted (gate: every one is fresh).
    pub updates_applied: u64,
    /// Journal records appended in phase 1 (gate: one per frame).
    pub appends: u64,
    /// Fdatasync calls in phase 1 (batch windows + rotations + snapshots).
    pub fsyncs: u64,
    /// Snapshots installed in phase 1 (gate: exactly on cadence).
    pub snapshots: u64,
    /// Frames covered by the snapshot recovery restored from.
    pub snapshot_frames: u64,
    /// Frame records replayed from the retained log tail.
    pub replayed_frames: u64,
    /// Updates routed to trackers during replay (snapshot-covered ones are
    /// silently rejected inside the tracker but still counted here).
    pub replayed_updates: u64,
    /// Snapshot entries restored into registered trackers (gate: all).
    pub restored_objects: u64,
    /// Bytes discarded at recovery from intact files (gate: 0).
    pub truncated_bytes: u64,
    /// `1` iff the recovered service answered every probe query with exactly
    /// the twin's bits (gate: 1).
    pub bit_identical: u64,
    /// Bytes the torn-tail phase discarded: the flipped record's header plus
    /// payload, exactly (strict).
    pub corrupt_truncated_bytes: u64,
    /// Frames replayed after torn-tail repair (gate: all but the torn one).
    pub corrupt_replayed_frames: u64,
    /// `1` iff post-repair recovery equals a twin that never saw the torn
    /// frame (gate: 1).
    pub corrupt_bit_identical: u64,
    /// Wall-clock seconds of the journaled ingest phase.
    pub ingest_wall_s: f64,
    /// Wall-clock seconds of snapshot restore + tail replay.
    pub recover_wall_s: f64,
    /// Replayed frames per second of recovery wall clock.
    pub replay_per_sec: f64,
}

pub(crate) fn fleet(objects: usize) -> LocationService {
    let service =
        LocationService::with_config(ServiceConfig { shards: 8, ..ServiceConfig::default() });
    for i in 0..objects as u64 {
        service.register(ObjectId(i), Arc::new(LinearPredictor));
    }
    service
}

/// The pre-encoded frame schedule: round-robin over the fleet, positions from
/// a 64-bit LCG, timestamps strictly increasing per object.
pub(crate) fn encoded_frames(objects: usize, rounds: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng: u64 = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut step = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((rng >> 17) % 8001) as f64 - 4000.0
    };
    let mut out = Vec::with_capacity(objects * rounds);
    for round in 0..rounds {
        for object in 0..objects as u64 {
            let mut frame = Frame::new(object);
            for u in 0..UPDATES_PER_FRAME {
                let t = round as f64 * 2.0 + u as f64 * 0.4;
                frame.push(Update {
                    sequence: (round * UPDATES_PER_FRAME + u) as u64,
                    state: ObjectState::basic(
                        Point::new(step(), step()),
                        6.0 + (object % 5) as f64,
                        0.2 * u as f64,
                        t,
                    ),
                    kind: UpdateKind::DeviationBound,
                });
            }
            out.push(frame.encode().expect("finite fixture states encode"));
        }
    }
    out
}

/// Probes both services over a grid of rect, nearest and position queries and
/// returns whether every answer matched bit for bit.
pub(crate) fn queries_match(
    a: &LocationService,
    b: &LocationService,
    objects: usize,
    t_max: f64,
) -> bool {
    if a.total_updates() != b.total_updates() {
        return false;
    }
    let areas = [
        Aabb::new(Point::new(-4000.0, -4000.0), Point::new(4000.0, 4000.0)),
        Aabb::new(Point::new(-900.0, -900.0), Point::new(900.0, 900.0)),
        Aabb::new(Point::new(0.0, -4000.0), Point::new(4000.0, 200.0)),
    ];
    let vantage = [Point::new(0.0, 0.0), Point::new(-2500.0, 1500.0)];
    let mut t = 0.0;
    while t <= t_max {
        for area in &areas {
            if a.objects_in_rect(area, t) != b.objects_in_rect(area, t) {
                return false;
            }
        }
        for from in &vantage {
            if a.nearest_objects(from, t, 8) != b.nearest_objects(from, t, 8) {
                return false;
            }
        }
        for i in 0..objects as u64 {
            if a.position_of(ObjectId(i), t) != b.position_of(ObjectId(i), t) {
                return false;
            }
        }
        t += 9.0;
    }
    true
}

/// Flips the final byte of the numerically-last segment file — the last byte
/// of the last record's payload, since records abut the end of the file.
fn corrupt_last_record(dir: &Path) {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .expect("journal dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "mbdrj"))
        .collect();
    segments.sort();
    let victim = segments.pop().expect("at least one segment");
    let mut bytes = fs::read(&victim).expect("segment reads");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5;
    fs::write(&victim, &bytes).expect("segment writes back");
}

/// Runs the durability measurement. Deterministic for a given
/// `(scale, seed)` up to wall clocks; uses (and removes) a scratch directory
/// under the system temp dir.
pub fn recovery_bench(scale: f64, seed: u64) -> RecoveryBench {
    let objects = ((24.0 * scale).round() as usize).max(8);
    let rounds = ((96.0 * scale).round() as usize).max(12);
    let frames = encoded_frames(objects, rounds, seed);
    let t_max = rounds as f64 * 2.0 + 20.0;

    let scratch = std::env::temp_dir().join(format!(
        "mbdr-recovery-{}-{seed}-{}",
        std::process::id(),
        (scale * 1000.0) as u64
    ));
    let _ = fs::remove_dir_all(&scratch);
    let journal_dir = scratch.join("journaled");
    let tear_dir = scratch.join("torn");

    // --- Phase 1: journaled ingest, then a crash (plain drop). ---
    let config = JournalConfig {
        dir: journal_dir.clone(),
        segment_max_bytes: 16 * 1024, // rotation on, many segments
        fsync: FsyncPolicy::PerBatch(FSYNC_BATCH),
        snapshot_every_frames: SNAPSHOT_EVERY_FRAMES,
    };
    let primary = fleet(objects);
    let (journal, _) = recover_and_attach(&primary, config.clone()).expect("fresh dir attaches");
    let started = Instant::now();
    let mut updates_applied = 0u64;
    for bytes in &frames {
        updates_applied += primary.apply_frame_bytes(bytes).expect("frame applies") as u64;
    }
    let ingest_wall_s = started.elapsed().as_secs_f64();
    let ingest_stats = journal.stats();
    drop(primary);
    drop(journal);

    // --- The uninterrupted twin (pure in-memory ground truth). ---
    let twin = fleet(objects);
    for bytes in &frames {
        twin.apply_frame_bytes(bytes).expect("twin frame applies");
    }

    // --- Phase 2: recover and compare. ---
    let recovered = fleet(objects);
    let started = Instant::now();
    let (_journal, report) = recover_and_attach(&recovered, config).expect("recovery succeeds");
    let recover_wall_s = started.elapsed().as_secs_f64();
    let bit_identical = u64::from(queries_match(&recovered, &twin, objects, t_max));

    // --- Phase 3: torn tail on a log-only journal. ---
    let tear_config = JournalConfig {
        dir: tear_dir.clone(),
        segment_max_bytes: 64 * 1024 * 1024, // one segment: exact arithmetic
        fsync: FsyncPolicy::PerBatch(FSYNC_BATCH),
        snapshot_every_frames: 0,
    };
    let tear_primary = fleet(objects);
    let (tear_journal, _) =
        recover_and_attach(&tear_primary, tear_config.clone()).expect("tear dir attaches");
    for bytes in &frames {
        tear_primary.apply_frame_bytes(bytes).expect("tear frame applies");
    }
    tear_journal.flush().expect("tear flush");
    drop(tear_primary);
    drop(tear_journal);
    corrupt_last_record(&tear_dir);

    let repaired = fleet(objects);
    let (_tear_journal, tear_report) =
        recover_and_attach(&repaired, tear_config).expect("torn tail recovers");
    let twin_minus = fleet(objects);
    for bytes in &frames[..frames.len() - 1] {
        twin_minus.apply_frame_bytes(bytes).expect("twin-minus frame applies");
    }
    let corrupt_bit_identical = u64::from(queries_match(&repaired, &twin_minus, objects, t_max));
    let expected_torn = (RECORD_HEADER_LEN + frames[frames.len() - 1].len()) as u64;
    debug_assert_eq!(tear_report.truncated_bytes, expected_torn);

    let _ = fs::remove_dir_all(&scratch);

    RecoveryBench {
        objects,
        frames: frames.len(),
        updates_per_frame: UPDATES_PER_FRAME,
        updates_applied,
        appends: ingest_stats.appends,
        fsyncs: ingest_stats.fsyncs,
        snapshots: ingest_stats.snapshots,
        snapshot_frames: report.snapshot_frames,
        replayed_frames: report.replayed_frames,
        replayed_updates: report.replayed_updates,
        restored_objects: report.restored_objects,
        truncated_bytes: report.truncated_bytes,
        bit_identical,
        corrupt_truncated_bytes: tear_report.truncated_bytes,
        corrupt_replayed_frames: tear_report.replayed_frames,
        corrupt_bit_identical,
        ingest_wall_s,
        recover_wall_s,
        replay_per_sec: report.replayed_frames as f64 / recover_wall_s.max(1e-9),
    }
}

/// Renders the measurement as one JSON document (schema `mbdr-recovery/1`).
pub fn render_recovery_json(scale: f64, seed: u64, r: &RecoveryBench) -> String {
    format!(
        "{{\"schema\":\"mbdr-recovery/1\",\"scale\":{scale},\"seed\":{seed},\
         \"objects\":{},\"frames\":{},\"updates_per_frame\":{},\"updates_applied\":{},\
         \"appends\":{},\"fsyncs\":{},\"snapshots\":{},\
         \"snapshot_frames\":{},\"replayed_frames\":{},\"replayed_updates\":{},\
         \"restored_objects\":{},\"truncated_bytes\":{},\"bit_identical\":{},\
         \"corrupt_truncated_bytes\":{},\"corrupt_replayed_frames\":{},\
         \"corrupt_bit_identical\":{},\
         \"ingest_wall_s\":{:.4},\"recover_wall_s\":{:.4},\"replay_per_sec\":{:.1}}}",
        r.objects,
        r.frames,
        r.updates_per_frame,
        r.updates_applied,
        r.appends,
        r.fsyncs,
        r.snapshots,
        r.snapshot_frames,
        r.replayed_frames,
        r.replayed_updates,
        r.restored_objects,
        r.truncated_bytes,
        r.bit_identical,
        r.corrupt_truncated_bytes,
        r.corrupt_replayed_frames,
        r.corrupt_bit_identical,
        r.ingest_wall_s,
        r.recover_wall_s,
        r.replay_per_sec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_is_bit_identical_and_renders_valid_json() {
        let r = recovery_bench(0.25, 42);
        assert_eq!(r.bit_identical, 1);
        assert_eq!(r.corrupt_bit_identical, 1);
        assert_eq!(r.appends, r.frames as u64);
        assert_eq!(r.updates_applied, (r.frames * r.updates_per_frame) as u64);
        assert_eq!(r.corrupt_replayed_frames, r.frames as u64 - 1);
        assert_eq!(r.truncated_bytes, 0);
        assert!(r.corrupt_truncated_bytes > 0);
        assert!(r.snapshots >= 1, "cadence must fire at this scale: {r:?}");
        assert!(r.snapshot_frames > 0);
        let json = render_recovery_json(0.25, 42, &r);
        assert!(json.contains("\"schema\":\"mbdr-recovery/1\""));
        crate::check::parse_json(&json).expect("recovery JSON parses");
    }
}
