//! `reproduce` — regenerate every table and figure of the paper, plus the
//! post-paper perf baselines, with a built-in regression gate.
//!
//! ```text
//! cargo run --release -p mbdr-bench --bin reproduce -- all --scale 1.0
//! cargo run --release -p mbdr-bench --bin reproduce -- table1
//! cargo run --release -p mbdr-bench --bin reproduce -- fig7 --csv
//! cargo run --release -p mbdr-bench --bin reproduce -- summary
//! cargo run --release -p mbdr-bench --bin reproduce -- updates-trace
//! cargo run --release -p mbdr-bench --bin reproduce -- ablations --scale 0.25
//! cargo run --release -p mbdr-bench --bin reproduce -- throughput --scale 0.02
//! cargo run --release -p mbdr-bench --bin reproduce -- wire --scale 0.1
//! cargo run --release -p mbdr-bench --bin reproduce -- net --scale 0.05
//! cargo run --release -p mbdr-bench --bin reproduce -- connscale
//! cargo run --release -p mbdr-bench --bin reproduce -- scale
//! cargo run --release -p mbdr-bench --bin reproduce -- json --scale 0.05 --check
//! cargo run --release -p mbdr-bench --bin reproduce -- net --scale 0.05 --write-baseline
//! ```
//!
//! `--scale` (default 1.0) shrinks the trace length for quick smoke runs;
//! `--seed` changes the synthetic map/trace/noise seed; `--csv` prints the
//! figure data as CSV instead of a table. For the JSON-emitting commands
//! (`json`, `throughput`, `wire`, `net`, `connscale`, `hotpath`, `scale`,
//! `recovery`, `faults`),
//! `--check` compares the fresh
//! output against the committed `baselines/BENCH_<cmd>.json` with per-metric
//! tolerances and exits non-zero on regression, `--write-baseline`
//! (re)generates that file, and `--baseline-dir` overrides the directory.
//! The document itself always goes to stdout, so CI can archive it while
//! gating on the exit code.
//!
//! Every flag is parsed in one place and every unknown command or argument
//! dies with usage and a non-zero exit — there is exactly one parser.

use mbdr_bench::alloccount::CountingAllocator;
use mbdr_bench::check::{compare_baseline, parse_json};
use mbdr_bench::faults::{faults_bench, render_faults_json};
use mbdr_bench::hotpath::{hotpath_report, render_hotpath_json};
use mbdr_bench::netbase::{
    connscale_fd_demand, connscale_grid, net_grid, open_file_soft_limit, render_connscale_json,
    render_net_json,
};
use mbdr_bench::recovery::{recovery_bench, render_recovery_json};
use mbdr_bench::scale::{render_scale_json, scale_grid};
use mbdr_bench::throughput::{render_throughput_json, throughput_grid};
use mbdr_bench::wire::wire_baseline;
use mbdr_bench::{
    ablations, figure, figure_number, scenario_data, summary, table1, updates_along_route,
    DEFAULT_SEED, REPRODUCE_COMMANDS,
};
use mbdr_geo::format_duration_hm;
use mbdr_sim::{render_csv, render_json, render_table, ProtocolKind};
use mbdr_trace::ScenarioKind;
use std::path::PathBuf;
use std::time::Instant;

/// The counting allocator behind `reproduce hotpath`: its per-allocation
/// cost is one relaxed atomic increment, so installing it globally does not
/// disturb the other commands' timings while making allocations-per-
/// operation an exact, gateable number.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Every subcommand, validated at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Table1,
    Fig(ScenarioKind),
    Figures,
    Summary,
    UpdatesTrace,
    Ablations,
    Json,
    Throughput,
    Wire,
    Net,
    ConnScale,
    Hotpath,
    Scale,
    Recovery,
    Faults,
    Analyze,
    All,
}

impl Command {
    /// The single place a command name is recognised.
    fn parse(name: &str) -> Option<Command> {
        Some(match name {
            "table1" => Command::Table1,
            "fig7" => Command::Fig(ScenarioKind::Freeway),
            "fig8" => Command::Fig(ScenarioKind::Interurban),
            "fig9" => Command::Fig(ScenarioKind::City),
            "fig10" => Command::Fig(ScenarioKind::Walking),
            "figures" => Command::Figures,
            "summary" => Command::Summary,
            "updates-trace" => Command::UpdatesTrace,
            "ablations" => Command::Ablations,
            "json" => Command::Json,
            "throughput" => Command::Throughput,
            "wire" => Command::Wire,
            "net" => Command::Net,
            "connscale" => Command::ConnScale,
            "hotpath" => Command::Hotpath,
            "scale" => Command::Scale,
            "recovery" => Command::Recovery,
            "faults" => Command::Faults,
            "analyze" => Command::Analyze,
            "all" => Command::All,
            _ => return None,
        })
    }

    /// The baseline file name for the JSON-emitting commands, `None` for the
    /// human-readable ones (which have no baseline to check against).
    fn baseline_file(self) -> Option<&'static str> {
        Some(match self {
            Command::Json => "BENCH_json.json",
            Command::Throughput => "BENCH_throughput.json",
            Command::Wire => "BENCH_wire.json",
            Command::Net => "BENCH_net.json",
            Command::ConnScale => "BENCH_connscale.json",
            Command::Hotpath => "BENCH_hotpath.json",
            Command::Scale => "BENCH_scale.json",
            Command::Recovery => "BENCH_recovery.json",
            Command::Faults => "BENCH_faults.json",
            _ => return None,
        })
    }
}

struct Options {
    command: Command,
    scale: f64,
    seed: u64,
    csv: bool,
    check: bool,
    write_baseline: bool,
    baseline_dir: PathBuf,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut options = Options {
        command: Command::All,
        scale: 1.0,
        seed: DEFAULT_SEED,
        csv: false,
        check: false,
        write_baseline: false,
        baseline_dir: PathBuf::from("baselines"),
    };
    let mut positional_seen = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number in (0, 1]"));
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--csv" => options.csv = true,
            "--check" => options.check = true,
            "--write-baseline" => options.write_baseline = true,
            "--baseline-dir" => {
                options.baseline_dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--baseline-dir needs a path"));
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if !positional_seen => {
                options.command = Command::parse(other)
                    .unwrap_or_else(|| die(&format!("unknown command `{other}`")));
                positional_seen = true;
            }
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    if !(options.scale > 0.0 && options.scale <= 1.0) {
        die("--scale must be in (0, 1]");
    }
    if options.check && options.write_baseline {
        die("--check and --write-baseline are mutually exclusive");
    }
    if options.write_baseline && options.command.baseline_file().is_none() {
        die("--write-baseline only applies to the JSON commands \
             (json|throughput|wire|net|connscale|hotpath|scale|recovery|faults)");
    }
    // `analyze` always checks (its committed "baseline" is zero findings),
    // so `--check` is accepted there as a no-op for CI symmetry.
    if options.check
        && options.command.baseline_file().is_none()
        && options.command != Command::Analyze
    {
        die("--check only applies to the JSON commands and `analyze`");
    }
    options
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    print_usage();
    std::process::exit(2);
}

fn print_usage() {
    eprintln!(
        "usage: reproduce [{}]\n       [--scale F] [--seed N] [--csv] [--check] \
         [--write-baseline] [--baseline-dir DIR]",
        REPRODUCE_COMMANDS.join("|"),
    );
}

/// Emits the full figure set as one machine-readable JSON document: scale,
/// seed, and per figure the sweep data (update counts per protocol and
/// accuracy) plus the wall-clock time the sweep took. This is the perf and
/// regression baseline future changes are compared against.
fn json_baseline(scale: f64, seed: u64) -> String {
    let mut out = String::from("{\"schema\":\"mbdr-reproduce/1\"");
    out.push_str(&format!(",\"scale\":{scale},\"seed\":{seed},\"figures\":["));
    for (i, &kind) in ScenarioKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let started = Instant::now();
        let result = figure(kind, scale, seed);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        out.push_str(&format!(
            "{{\"figure\":{},\"wall_ms\":{:.1},\"sweep\":{}}}",
            figure_number(kind),
            wall_ms,
            render_json(&result)
        ));
    }
    out.push_str("]}");
    out
}

/// The JSON document for one of the baseline commands.
fn baseline_json(command: Command, scale: f64, seed: u64) -> String {
    match command {
        Command::Json => json_baseline(scale, seed),
        Command::Throughput => render_throughput_json(scale, seed, &throughput_grid(scale, seed)),
        Command::Wire => wire_baseline(scale, seed).to_json(),
        Command::Net => render_net_json(scale, seed, &net_grid(scale, seed)),
        Command::ConnScale => render_connscale_json(scale, seed, &connscale_grid(scale, seed)),
        Command::Hotpath => render_hotpath_json(scale, seed, &hotpath_report(scale, seed)),
        Command::Scale => render_scale_json(scale, seed, &scale_grid(scale, seed)),
        Command::Recovery => render_recovery_json(scale, seed, &recovery_bench(scale, seed)),
        Command::Faults => render_faults_json(scale, seed, &faults_bench(scale, seed)),
        _ => unreachable!("parse_args only routes JSON commands here"),
    }
}

/// Refuses to start `connscale` when the process's open-file limit cannot
/// hold the workload (exit 2 with the fix spelled out, instead of dying
/// mid-run on an opaque `EMFILE` from some opener thread).
fn require_fd_headroom(scale: f64) {
    let Some(limit) = open_file_soft_limit() else { return };
    let demand = connscale_fd_demand(scale);
    if limit < demand {
        eprintln!(
            "error: `reproduce connscale --scale {scale}` needs about {demand} file \
             descriptors (two per connection plus slack) but the soft open-file limit is \
             {limit}.\nRaise it first (`ulimit -n {demand}`) or lower --scale.",
        );
        std::process::exit(2);
    }
}

/// Runs a JSON command, optionally checking against or (re)writing its
/// committed baseline. The fresh document always goes to stdout.
fn run_json_command(options: &Options) {
    if options.command == Command::ConnScale {
        require_fd_headroom(options.scale);
    }
    let current = baseline_json(options.command, options.scale, options.seed);
    println!("{current}");
    let file = options.command.baseline_file().expect("JSON command");
    let path = options.baseline_dir.join(file);
    if options.write_baseline {
        if let Err(e) = std::fs::create_dir_all(&options.baseline_dir) {
            eprintln!("error: cannot create {}: {e}", options.baseline_dir.display());
            std::process::exit(1);
        }
        let mut contents = current;
        contents.push('\n');
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("baseline written to {}", path.display());
    } else if options.check {
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "error: cannot read baseline {}: {e}\n(generate it with `reproduce {} --scale \
                     {} --write-baseline`)",
                    path.display(),
                    file.trim_start_matches("BENCH_").trim_end_matches(".json"),
                    options.scale,
                );
                std::process::exit(1);
            }
        };
        let baseline = parse_json(&committed)
            .unwrap_or_else(|e| fail_check(&path, &format!("baseline is not valid JSON: {e}")));
        let fresh = parse_json(&current)
            .unwrap_or_else(|e| fail_check(&path, &format!("fresh output is not valid JSON: {e}")));
        let report = compare_baseline(&baseline, &fresh);
        if report.passed() {
            eprintln!(
                "check OK against {}: {} strict metrics matched, {} sanity-checked",
                path.display(),
                report.strict_compared,
                report.sanity_checked,
            );
        } else {
            eprintln!("regression check FAILED against {}:", path.display());
            for mismatch in &report.mismatches {
                eprintln!("  {mismatch}");
            }
            std::process::exit(1);
        }
    }
}

fn fail_check(path: &std::path::Path, message: &str) -> ! {
    eprintln!("error: {}: {message}", path.display());
    std::process::exit(1);
}

/// Runs the static-analysis gate: every `mbdr-analyze` lint over the
/// workspace, with the same exit semantics as the baseline checks (0 clean,
/// 1 findings). The committed "baseline" is zero findings, so there is no
/// `--write-baseline` mode.
fn run_analyze() {
    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("error: cannot read the working directory: {e}");
        std::process::exit(2);
    });
    let Some(root) = mbdr_analyze::find_workspace_root(&cwd) else {
        eprintln!("error: no workspace root above {}", cwd.display());
        std::process::exit(2);
    };
    let config = mbdr_analyze::AnalyzeConfig::mbdr(&root).unwrap_or_else(|e| {
        eprintln!("error: cannot load the analysis config: {e}");
        std::process::exit(2);
    });
    let diagnostics = mbdr_analyze::analyze_workspace(&root, &config).unwrap_or_else(|e| {
        eprintln!("error: analysis failed: {e}");
        std::process::exit(2);
    });
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        eprintln!("analyze OK: {} lints clean over the workspace", mbdr_analyze::LINT_IDS.len());
    } else {
        eprintln!("analyze FAILED: {} finding(s)", diagnostics.len());
        std::process::exit(1);
    }
}

fn print_table1(scale: f64, seed: u64) {
    println!("== Table 1: characteristics of the traces (paper values in parentheses) ==");
    println!(
        "{:<18} {:>10} {:>10} {:>14} {:>14}",
        "scenario", "length", "duration", "avg speed", "max speed"
    );
    for row in table1(scale, seed) {
        let (p_len, p_dur, p_avg, p_max) = row.paper;
        println!(
            "{:<18} {:>6.0} km ({:>3.0}) {:>8} ({}) {:>6.0} km/h ({:>3.0}) {:>6.0} km/h ({:>3.0})",
            row.label,
            row.stats.length_km,
            p_len * scale,
            format_duration_hm(row.stats.duration_s),
            format_duration_hm(p_dur * scale),
            row.stats.average_speed_kmh,
            p_avg,
            row.stats.max_speed_kmh,
            p_max,
        );
    }
    println!();
}

fn print_figure(kind: ScenarioKind, scale: f64, seed: u64, csv: bool) {
    let result = figure(kind, scale, seed);
    println!(
        "== Figure {}: {} — updates per hour (absolute and % of distance-based) ==",
        figure_number(kind),
        kind.name()
    );
    if csv {
        print!("{}", render_csv(&result));
    } else {
        print!("{}", render_table(&result, &ProtocolKind::PAPER_SET));
    }
    println!();
}

fn print_summary(scale: f64, seed: u64) {
    let figures: Vec<_> = ScenarioKind::ALL.iter().map(|&k| figure(k, scale, seed)).collect();
    println!("== Headline reductions (maximum over the accuracy sweep) ==");
    println!(
        "{:<18} {:>24} {:>24} {:>24}",
        "scenario", "linear vs distance", "map vs linear", "map vs distance"
    );
    for row in summary(&figures) {
        println!(
            "{:<18} {:>23.1}% {:>23.1}% {:>23.1}%",
            row.scenario,
            row.linear_vs_distance_pct,
            row.map_vs_linear_pct,
            row.map_vs_distance_pct
        );
    }
    println!();
    println!("paper reference points: linear vs distance up to 83% (freeway), map vs linear up");
    println!("to 60% (freeway), map vs distance up to 91% overall.");
    println!();
}

fn print_updates_trace(scale: f64, seed: u64) {
    // The Fig. 3 / Fig. 6 comparison: one freeway drive, u_s = 100 m.
    let data = scenario_data(ScenarioKind::Freeway, scale.min(0.2), seed);
    println!(
        "== Fig. 3 / Fig. 6 analogue: update positions along one freeway drive (u_s = 100 m) =="
    );
    for (label, kind) in
        [("linear-pred dr", ProtocolKind::Linear), ("map-based dr", ProtocolKind::MapBased)]
    {
        let updates = updates_along_route(&data, kind, 100.0);
        println!("{label}: {} updates", updates.len());
        for (i, p) in updates.iter().enumerate() {
            println!("    #{i:<3} at ({:>9.1} m, {:>9.1} m)", p.x, p.y);
        }
    }
    println!();
}

fn print_ablations(scale: f64, seed: u64, csv: bool) {
    for ablation in ablations(scale, seed) {
        println!("== Ablation: {} ==", ablation.name);
        let protocols: Vec<ProtocolKind> = {
            let mut seen = Vec::new();
            for p in &ablation.result.points {
                if !seen.contains(&p.protocol) {
                    seen.push(p.protocol);
                }
            }
            seen
        };
        if csv {
            print!("{}", render_csv(&ablation.result));
        } else {
            print!("{}", render_table(&ablation.result, &protocols));
        }
        println!();
    }
}

fn main() {
    let options = parse_args();
    match options.command {
        Command::Table1 => print_table1(options.scale, options.seed),
        Command::Fig(kind) => print_figure(kind, options.scale, options.seed, options.csv),
        Command::Figures => {
            for kind in ScenarioKind::ALL {
                print_figure(kind, options.scale, options.seed, options.csv);
            }
        }
        Command::Summary => print_summary(options.scale, options.seed),
        Command::UpdatesTrace => print_updates_trace(options.scale, options.seed),
        Command::Ablations => print_ablations(options.scale, options.seed, options.csv),
        Command::Json
        | Command::Throughput
        | Command::Wire
        | Command::Net
        | Command::ConnScale
        | Command::Hotpath
        | Command::Scale
        | Command::Recovery
        | Command::Faults => run_json_command(&options),
        Command::Analyze => run_analyze(),
        Command::All => {
            print_table1(options.scale, options.seed);
            for kind in ScenarioKind::ALL {
                print_figure(kind, options.scale, options.seed, options.csv);
            }
            print_summary(options.scale, options.seed);
            print_updates_trace(options.scale, options.seed);
            print_ablations(options.scale, options.seed, options.csv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_list_and_parser_agree_exactly() {
        // Every command the usage string (and the docs tested against
        // REPRODUCE_COMMANDS) advertises must parse…
        for name in REPRODUCE_COMMANDS {
            assert!(Command::parse(name).is_some(), "`{name}` is documented but not parsed");
        }
        // …and near-miss spellings must not.
        for name in ["fig11", "recover", "hot-path", "Scale", ""] {
            assert!(Command::parse(name).is_none(), "`{name}` should not parse");
        }
    }

    #[test]
    fn json_commands_have_baseline_files_and_figure_commands_do_not() {
        for name in REPRODUCE_COMMANDS {
            let command = Command::parse(name).expect("parses");
            let json_command = matches!(
                command,
                Command::Json
                    | Command::Throughput
                    | Command::Wire
                    | Command::Net
                    | Command::ConnScale
                    | Command::Hotpath
                    | Command::Scale
                    | Command::Recovery
                    | Command::Faults
            );
            assert_eq!(
                command.baseline_file().is_some(),
                json_command,
                "`{name}` baseline-file mapping drifted"
            );
            if let Some(file) = command.baseline_file() {
                assert_eq!(file, format!("BENCH_{name}.json"), "baseline naming convention");
            }
        }
    }
}
