//! `reproduce` — regenerate every table and figure of the paper, plus the
//! post-paper perf baselines.
//!
//! ```text
//! cargo run --release -p mbdr-bench --bin reproduce -- all --scale 1.0
//! cargo run --release -p mbdr-bench --bin reproduce -- table1
//! cargo run --release -p mbdr-bench --bin reproduce -- fig7 --csv
//! cargo run --release -p mbdr-bench --bin reproduce -- summary
//! cargo run --release -p mbdr-bench --bin reproduce -- updates-trace
//! cargo run --release -p mbdr-bench --bin reproduce -- ablations --scale 0.25
//! cargo run --release -p mbdr-bench --bin reproduce -- throughput --scale 0.02
//! cargo run --release -p mbdr-bench --bin reproduce -- wire --scale 0.1
//! ```
//!
//! `--scale` (default 1.0) shrinks the trace length for quick smoke runs;
//! `--seed` changes the synthetic map/trace/noise seed; `--csv` prints the
//! figure data as CSV instead of a table.

use mbdr_bench::throughput::{render_throughput_json, throughput_grid};
use mbdr_bench::wire::wire_baseline;
use mbdr_bench::{
    ablations, figure, figure_number, scenario_data, summary, table1, updates_along_route,
    DEFAULT_SEED,
};
use mbdr_geo::format_duration_hm;
use mbdr_sim::{render_csv, render_json, render_table, ProtocolKind};
use mbdr_trace::ScenarioKind;
use std::time::Instant;

struct Options {
    command: String,
    scale: f64,
    seed: u64,
    csv: bool,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut options =
        Options { command: String::from("all"), scale: 1.0, seed: DEFAULT_SEED, csv: false };
    let mut positional_seen = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number in (0, 1]"));
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--csv" => options.csv = true,
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if !positional_seen => {
                options.command = other.to_string();
                positional_seen = true;
            }
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    options
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    print_usage();
    std::process::exit(2);
}

fn print_usage() {
    eprintln!(
        "usage: reproduce [table1|fig7|fig8|fig9|fig10|figures|summary|updates-trace|ablations|\
         json|throughput|wire|all] [--scale F] [--seed N] [--csv]"
    );
}

/// Emits the full figure set as one machine-readable JSON document: scale,
/// seed, and per figure the sweep data (update counts per protocol and
/// accuracy) plus the wall-clock time the sweep took. This is the perf and
/// regression baseline future changes are compared against.
fn print_json_baseline(scale: f64, seed: u64) {
    let mut out = String::from("{\"schema\":\"mbdr-reproduce/1\"");
    out.push_str(&format!(",\"scale\":{scale},\"seed\":{seed},\"figures\":["));
    for (i, &kind) in ScenarioKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let started = Instant::now();
        let result = figure(kind, scale, seed);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        out.push_str(&format!(
            "{{\"figure\":{},\"wall_ms\":{:.1},\"sweep\":{}}}",
            figure_number(kind),
            wall_ms,
            render_json(&result)
        ));
    }
    out.push_str("]}");
    println!("{out}");
}

fn print_table1(scale: f64, seed: u64) {
    println!("== Table 1: characteristics of the traces (paper values in parentheses) ==");
    println!(
        "{:<18} {:>10} {:>10} {:>14} {:>14}",
        "scenario", "length", "duration", "avg speed", "max speed"
    );
    for row in table1(scale, seed) {
        let (p_len, p_dur, p_avg, p_max) = row.paper;
        println!(
            "{:<18} {:>6.0} km ({:>3.0}) {:>8} ({}) {:>6.0} km/h ({:>3.0}) {:>6.0} km/h ({:>3.0})",
            row.label,
            row.stats.length_km,
            p_len * scale,
            format_duration_hm(row.stats.duration_s),
            format_duration_hm(p_dur * scale),
            row.stats.average_speed_kmh,
            p_avg,
            row.stats.max_speed_kmh,
            p_max,
        );
    }
    println!();
}

fn print_figure(kind: ScenarioKind, scale: f64, seed: u64, csv: bool) {
    let result = figure(kind, scale, seed);
    println!(
        "== Figure {}: {} — updates per hour (absolute and % of distance-based) ==",
        figure_number(kind),
        kind.name()
    );
    if csv {
        print!("{}", render_csv(&result));
    } else {
        print!("{}", render_table(&result, &ProtocolKind::PAPER_SET));
    }
    println!();
}

fn print_summary(scale: f64, seed: u64) {
    let figures: Vec<_> = ScenarioKind::ALL.iter().map(|&k| figure(k, scale, seed)).collect();
    println!("== Headline reductions (maximum over the accuracy sweep) ==");
    println!(
        "{:<18} {:>24} {:>24} {:>24}",
        "scenario", "linear vs distance", "map vs linear", "map vs distance"
    );
    for row in summary(&figures) {
        println!(
            "{:<18} {:>23.1}% {:>23.1}% {:>23.1}%",
            row.scenario,
            row.linear_vs_distance_pct,
            row.map_vs_linear_pct,
            row.map_vs_distance_pct
        );
    }
    println!();
    println!("paper reference points: linear vs distance up to 83% (freeway), map vs linear up");
    println!("to 60% (freeway), map vs distance up to 91% overall.");
    println!();
}

fn print_updates_trace(scale: f64, seed: u64) {
    // The Fig. 3 / Fig. 6 comparison: one freeway drive, u_s = 100 m.
    let data = scenario_data(ScenarioKind::Freeway, scale.min(0.2), seed);
    println!(
        "== Fig. 3 / Fig. 6 analogue: update positions along one freeway drive (u_s = 100 m) =="
    );
    for (label, kind) in
        [("linear-pred dr", ProtocolKind::Linear), ("map-based dr", ProtocolKind::MapBased)]
    {
        let updates = updates_along_route(&data, kind, 100.0);
        println!("{label}: {} updates", updates.len());
        for (i, p) in updates.iter().enumerate() {
            println!("    #{i:<3} at ({:>9.1} m, {:>9.1} m)", p.x, p.y);
        }
    }
    println!();
}

/// Emits the concurrent service-workload sweep (objects × shards × query mix
/// × ingest mode → updates/s, queries/s, query-observed accuracy) as one JSON
/// document — the sharded location service's perf baseline.
fn print_throughput(scale: f64, seed: u64) {
    let reports = throughput_grid(scale, seed);
    println!("{}", render_throughput_json(scale, seed, &reports));
}

/// Emits the lossy-link sweep (loss rate → delivery, accuracy degradation,
/// message overhead) as one JSON document — the wire protocol's baseline.
fn print_wire(scale: f64, seed: u64) {
    println!("{}", wire_baseline(scale, seed).to_json());
}

fn print_ablations(scale: f64, seed: u64, csv: bool) {
    for ablation in ablations(scale, seed) {
        println!("== Ablation: {} ==", ablation.name);
        let protocols: Vec<ProtocolKind> = {
            let mut seen = Vec::new();
            for p in &ablation.result.points {
                if !seen.contains(&p.protocol) {
                    seen.push(p.protocol);
                }
            }
            seen
        };
        if csv {
            print!("{}", render_csv(&ablation.result));
        } else {
            print!("{}", render_table(&ablation.result, &protocols));
        }
        println!();
    }
}

fn main() {
    let options = parse_args();
    if !(options.scale > 0.0 && options.scale <= 1.0) {
        die("--scale must be in (0, 1]");
    }
    match options.command.as_str() {
        "table1" => print_table1(options.scale, options.seed),
        "fig7" => print_figure(ScenarioKind::Freeway, options.scale, options.seed, options.csv),
        "fig8" => print_figure(ScenarioKind::Interurban, options.scale, options.seed, options.csv),
        "fig9" => print_figure(ScenarioKind::City, options.scale, options.seed, options.csv),
        "fig10" => print_figure(ScenarioKind::Walking, options.scale, options.seed, options.csv),
        "figures" => {
            for kind in ScenarioKind::ALL {
                print_figure(kind, options.scale, options.seed, options.csv);
            }
        }
        "summary" => print_summary(options.scale, options.seed),
        "json" => print_json_baseline(options.scale, options.seed),
        "throughput" => print_throughput(options.scale, options.seed),
        "wire" => print_wire(options.scale, options.seed),
        "updates-trace" => print_updates_trace(options.scale, options.seed),
        "ablations" => print_ablations(options.scale, options.seed, options.csv),
        "all" => {
            print_table1(options.scale, options.seed);
            for kind in ScenarioKind::ALL {
                print_figure(kind, options.scale, options.seed, options.csv);
            }
            print_summary(options.scale, options.seed);
            print_updates_trace(options.scale, options.seed);
            print_ablations(options.scale, options.seed, options.csv);
        }
        other => die(&format!("unknown command `{other}`")),
    }
}
