//! The hot-path experiment: steady-state ingest / query / predict throughput
//! **and** allocations-per-operation, emitted as JSON (`reproduce hotpath`)
//! and gated against `baselines/BENCH_hotpath.json`.
//!
//! The workload is deliberately periodic: every object's position cycles
//! with period [`POSITION_CYCLE`] and all objects share one cell footprint,
//! so a warm-up pass through one full cycle touches every grid cell, heap
//! slot and buffer the measured phase will touch. After that warm-up the
//! ingest → predict → query pipeline is **allocation-free by design**:
//!
//! * ingest: `LocationService::apply_frame_bytes` consumes a borrowed
//!   `FrameView` (no `Vec<Update>`), re-anchoring index entries in-place;
//! * queries: `objects_in_rect_into` / `nearest_objects_into` run against
//!   caller-owned [`mbdr_locserver::QueryScratch`] and result buffers;
//! * prediction: `MapPredictor::predict` walks the arc-length-indexed link
//!   geometry and chooses outgoing links without collecting candidates;
//! * journaled ingest: the same schedule with a write-ahead
//!   `mbdr_journal::Journal` attached — `Journal::append_frame` writes the
//!   already-encoded frame bytes behind a stack-built record header, so
//!   durability must cost syscalls, never allocations.
//!
//! The allocations-per-operation numbers are exact integers divided by the
//! operation count, fully determined by the workload — the baseline pins
//! them at `0`, so a single accidental `clone()` on any of these paths fails
//! `reproduce hotpath --check` (and the `zero_alloc` integration test) with
//! a number, not a hunch. Wall-clock throughputs ride along under the
//! machine-dependent (sanity-only) metric class.

use crate::alloccount;
use mbdr_core::{LinearPredictor, MapPredictor, ObjectState, Predictor, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_journal::{FsyncPolicy, JournalConfig};
use mbdr_locserver::{
    recover_and_attach, LocationService, ObjectId, PositionReport, QueryScratch, ServiceConfig,
};
use mbdr_roadnet::{NetworkBuilder, NodeId, RoadClass, RoadNetwork};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Period of the position pattern: after one full cycle every grid cell the
/// workload will ever occupy has been occupied.
pub const POSITION_CYCLE: usize = 4;

/// Updates batched per frame (one uplink transmission).
const UPDATES_PER_FRAME: usize = 8;

/// Seconds between consecutive updates of one object.
const UPDATE_INTERVAL_S: f64 = 0.125;

/// One hot-path measurement (see the module docs). The `allocs_per_*`
/// fields are strict regression gates; the `*_per_sec` fields are
/// machine-dependent timings.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Tracked objects.
    pub objects: usize,
    /// Service lock stripes.
    pub shards: usize,
    /// Updates per ingest frame.
    pub updates_per_frame: usize,
    /// Measured ingest rounds (one frame per object per round).
    pub ingest_rounds: usize,
    /// Measured rect / nearest queries (each).
    pub queries: usize,
    /// Measured map predictions.
    pub predicts: usize,
    /// Whether the counting allocator is installed in this process — the
    /// `reproduce` binary installs it, so the committed baseline pins `true`
    /// and the zeros below are meaningful.
    pub counting_allocator: bool,
    /// Heap allocations per ingested update in steady state (gate: 0).
    pub allocs_per_update: f64,
    /// Heap allocations per ingested update with a write-ahead journal
    /// attached (gate: 0 — journaling must not add hot-path allocations; the
    /// record header lives on the stack and the segment file is pre-opened).
    pub allocs_per_journaled_update: f64,
    /// Heap allocations per rect query in steady state (gate: 0).
    pub allocs_per_rect_query: f64,
    /// Heap allocations per nearest query in steady state (gate: 0).
    pub allocs_per_nearest_query: f64,
    /// Heap allocations per map prediction in steady state (gate: 0).
    pub allocs_per_predict: f64,
    /// Total rect-query results (seed-deterministic, gated strictly).
    pub rect_hits: u64,
    /// Total nearest-query results (seed-deterministic, gated strictly).
    pub nearest_hits: u64,
    /// Measured ingest throughput, updates per second.
    pub updates_per_sec: f64,
    /// Measured ingest throughput with the journal attached, updates per
    /// second (machine- and filesystem-dependent).
    pub journaled_updates_per_sec: f64,
    /// Measured query throughput (rect + nearest), queries per second.
    pub queries_per_sec: f64,
    /// Measured map-prediction throughput, predictions per second.
    pub predicts_per_sec: f64,
}

/// Position of every object at logical update step `step` — shared by all
/// objects so their index footprints coincide (each grid cell always holds
/// every object of its shard, which is what keeps cell vectors alive and
/// re-anchoring allocation-free).
fn position_at(step: usize, base: Point) -> Point {
    let phase = (step % POSITION_CYCLE) as f64;
    Point::new(base.x + phase * 40.0, base.y - phase * 25.0)
}

fn update_at(step: usize, base: Point) -> Update {
    Update {
        sequence: step as u64,
        state: ObjectState::basic(
            position_at(step, base),
            10.0,
            1.0,
            step as f64 * UPDATE_INTERVAL_S,
        ),
        kind: UpdateKind::DeviationBound,
    }
}

/// The y-junction network the prediction measurement walks (an approach
/// link, a slight-left continuation and a sharp-right branch).
fn prediction_network() -> (Arc<RoadNetwork>, ObjectState) {
    let mut b = NetworkBuilder::new();
    let a = b.add_node(Point::new(0.0, 0.0));
    let junction = b.add_node(Point::new(500.0, 0.0));
    let c = b.add_node(Point::new(1000.0, 120.0));
    let d = b.add_node(Point::new(520.0, -500.0));
    let approach = b.add_straight_link(a, junction, RoadClass::Arterial);
    b.add_straight_link(junction, c, RoadClass::Arterial);
    b.add_straight_link(junction, d, RoadClass::Residential);
    let network = Arc::new(b.build().expect("y-junction is valid"));
    let state = ObjectState {
        position: Point::new(100.0, 0.0),
        speed: 12.0,
        heading: std::f64::consts::FRAC_PI_2,
        timestamp: 0.0,
        link: Some(approach),
        arc_length: 100.0,
        towards: Some(NodeId(1)),
        turn_rate: 0.0,
    };
    (network, state)
}

/// Runs the hot-path measurement. Deterministic for a given `(scale, seed)`:
/// the only machine-dependent outputs are the `*_per_sec` timings.
pub fn hotpath_report(scale: f64, seed: u64) -> HotpathReport {
    let objects = ((128.0 * scale).round() as usize).max(32);
    let shards = 8usize;
    let warm_rounds = POSITION_CYCLE;
    let measured_rounds = ((64.0 * scale).round() as usize).max(8);
    let total_rounds = warm_rounds + measured_rounds;
    let queries = ((512.0 * scale).round() as usize).max(64);
    let predicts = ((20_000.0 * scale).round() as usize).max(2_000);
    // The seed shifts the whole pattern in space (same cells relative to one
    // another), so baselines written with different seeds genuinely differ.
    let base = Point::new(4_000.0 + (seed % 64) as f64, 4_000.0 - (seed % 32) as f64);

    let service =
        LocationService::with_config(ServiceConfig { shards, ..ServiceConfig::default() });
    for object in 0..objects as u64 {
        service.register(ObjectId(object), Arc::new(LinearPredictor));
    }

    // Pre-encode every frame (warm + measured) so the measured loop touches
    // only the ingest path itself.
    let mut frames: Vec<Vec<u8>> = Vec::with_capacity(total_rounds * objects);
    for round in 0..total_rounds {
        for object in 0..objects as u64 {
            let mut frame = mbdr_core::Frame::new(object);
            for j in 0..UPDATES_PER_FRAME {
                frame.push(update_at(round * UPDATES_PER_FRAME + j, base));
            }
            frames.push(frame.encode().expect("finite fixture states encode"));
        }
    }

    // --- Ingest: warm one full position cycle, then measure. ---
    let warm_frames = warm_rounds * objects;
    for bytes in &frames[..warm_frames] {
        service.apply_frame_bytes(bytes).expect("warm frame applies");
    }
    let measured_updates = (measured_rounds * objects * UPDATES_PER_FRAME) as u64;
    let allocs_before = alloccount::allocations();
    let started = Instant::now();
    let mut applied = 0usize;
    for bytes in &frames[warm_frames..] {
        applied += service.apply_frame_bytes(bytes).expect("measured frame applies");
    }
    let ingest_wall = started.elapsed().as_secs_f64();
    let ingest_allocs = alloccount::allocations() - allocs_before;
    assert_eq!(applied as u64, measured_updates, "every measured update is fresh");

    // --- Journaled ingest: the same schedule against a second service with a
    // write-ahead journal attached. One huge segment, no snapshots, and an
    // effectively-infinite fsync batch, so the measured loop is exactly
    // "append one pre-framed record + apply" — any allocation it performs is
    // the journal's fault and fails the strict 0 gate. ---
    let scratch = std::env::temp_dir().join(format!(
        "mbdr-hotpath-journal-{}-{seed}-{}",
        std::process::id(),
        (scale * 1000.0) as u64
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    let journaled =
        LocationService::with_config(ServiceConfig { shards, ..ServiceConfig::default() });
    for object in 0..objects as u64 {
        journaled.register(ObjectId(object), Arc::new(LinearPredictor));
    }
    let journal_config = JournalConfig {
        dir: scratch.clone(),
        segment_max_bytes: u64::MAX,
        fsync: FsyncPolicy::PerBatch(u32::MAX),
        snapshot_every_frames: 0,
    };
    let (journal, _) =
        recover_and_attach(&journaled, journal_config).expect("fresh scratch journal attaches");
    for bytes in &frames[..warm_frames] {
        journaled.apply_frame_bytes(bytes).expect("warm journaled frame applies");
    }
    let allocs_before = alloccount::allocations();
    let started = Instant::now();
    let mut journaled_applied = 0usize;
    for bytes in &frames[warm_frames..] {
        journaled_applied +=
            journaled.apply_frame_bytes(bytes).expect("measured journaled frame applies");
    }
    let journaled_wall = started.elapsed().as_secs_f64();
    let journaled_allocs = alloccount::allocations() - allocs_before;
    assert_eq!(journaled_applied as u64, measured_updates, "journaled run sees the same updates");
    drop(journal);
    drop(journaled);
    let _ = std::fs::remove_dir_all(&scratch);

    // --- Queries at the last reported instant (inside every index entry's
    // validity horizon, so no lazy re-grow perturbs the read path). ---
    let t_q = (total_rounds * UPDATES_PER_FRAME - 1) as f64 * UPDATE_INTERVAL_S;
    let rect_for = |i: usize| {
        let phase = (i % POSITION_CYCLE) as f64;
        Aabb::around(Point::new(base.x + phase * 20.0, base.y), 400.0 + phase * 60.0)
    };
    let point_for = |i: usize| {
        let phase = (i % POSITION_CYCLE) as f64;
        Point::new(base.x + phase * 35.0, base.y + 10.0)
    };
    let mut scratch = QueryScratch::default();
    let mut out: Vec<PositionReport> = Vec::new();

    for i in 0..POSITION_CYCLE * 2 {
        service.objects_in_rect_into(&rect_for(i), t_q, &mut scratch, &mut out);
        service.nearest_objects_into(&point_for(i), t_q, 5, &mut scratch, &mut out);
    }
    let allocs_before = alloccount::allocations();
    let started = Instant::now();
    let mut rect_hits = 0u64;
    for i in 0..queries {
        service.objects_in_rect_into(&rect_for(i), t_q, &mut scratch, &mut out);
        rect_hits += out.len() as u64;
    }
    let rect_allocs = alloccount::allocations() - allocs_before;
    let allocs_before = alloccount::allocations();
    let mut nearest_hits = 0u64;
    for i in 0..queries {
        service.nearest_objects_into(&point_for(i), t_q, 5, &mut scratch, &mut out);
        nearest_hits += out.len() as u64;
    }
    let query_wall = started.elapsed().as_secs_f64();
    let nearest_allocs = alloccount::allocations() - allocs_before;

    // --- Map prediction over the y-junction (crosses the intersection for
    // the longer horizons, so the link-choice path is exercised). ---
    let (network, state) = prediction_network();
    let predictor = MapPredictor::new(network);
    for i in 0..64 {
        black_box(predictor.predict(&state, (i % 32) as f64 * 2.0));
    }
    let allocs_before = alloccount::allocations();
    let started = Instant::now();
    let mut checksum = 0.0f64;
    for i in 0..predicts {
        checksum += predictor.predict(&state, (i % 32) as f64 * 2.0).x;
    }
    let predict_wall = started.elapsed().as_secs_f64();
    let predict_allocs = alloccount::allocations() - allocs_before;
    black_box(checksum);

    HotpathReport {
        objects,
        shards,
        updates_per_frame: UPDATES_PER_FRAME,
        ingest_rounds: measured_rounds,
        queries,
        predicts,
        counting_allocator: alloccount::counting_allocator_installed(),
        allocs_per_update: ingest_allocs as f64 / measured_updates as f64,
        allocs_per_journaled_update: journaled_allocs as f64 / measured_updates as f64,
        allocs_per_rect_query: rect_allocs as f64 / queries as f64,
        allocs_per_nearest_query: nearest_allocs as f64 / queries as f64,
        allocs_per_predict: predict_allocs as f64 / predicts as f64,
        rect_hits,
        nearest_hits,
        updates_per_sec: measured_updates as f64 / ingest_wall.max(1e-9),
        journaled_updates_per_sec: measured_updates as f64 / journaled_wall.max(1e-9),
        queries_per_sec: (2 * queries) as f64 / query_wall.max(1e-9),
        predicts_per_sec: predicts as f64 / predict_wall.max(1e-9),
    }
}

/// Renders the report as one JSON document (schema `mbdr-hotpath/1`).
pub fn render_hotpath_json(scale: f64, seed: u64, r: &HotpathReport) -> String {
    format!(
        "{{\"schema\":\"mbdr-hotpath/1\",\"scale\":{scale},\"seed\":{seed},\
         \"objects\":{},\"shards\":{},\"updates_per_frame\":{},\"ingest_rounds\":{},\
         \"queries\":{},\"predicts\":{},\"counting_allocator\":{},\
         \"allocs_per_update\":{},\"allocs_per_journaled_update\":{},\
         \"allocs_per_rect_query\":{},\
         \"allocs_per_nearest_query\":{},\"allocs_per_predict\":{},\
         \"rect_hits\":{},\"nearest_hits\":{},\
         \"updates_per_sec\":{:.1},\"journaled_updates_per_sec\":{:.1},\
         \"queries_per_sec\":{:.1},\"predicts_per_sec\":{:.1}}}",
        r.objects,
        r.shards,
        r.updates_per_frame,
        r.ingest_rounds,
        r.queries,
        r.predicts,
        r.counting_allocator,
        r.allocs_per_update,
        r.allocs_per_journaled_update,
        r.allocs_per_rect_query,
        r.allocs_per_nearest_query,
        r.allocs_per_predict,
        r.rect_hits,
        r.nearest_hits,
        r.updates_per_sec,
        r.journaled_updates_per_sec,
        r.queries_per_sec,
        r.predicts_per_sec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_and_renders_balanced_json() {
        let report = hotpath_report(0.02, 7);
        assert_eq!(report.objects, 32);
        // Every rect covers the whole (tightly clustered) fleet and nearest
        // always finds its k = 5 — fully determined by the fixture.
        assert_eq!(report.rect_hits, (report.objects * report.queries) as u64);
        assert_eq!(report.nearest_hits, 5 * report.queries as u64);
        assert!(report.updates_per_sec > 0.0);
        // Unit tests run without the counting allocator: the counter never
        // moves, so the ratios must be exactly zero here too.
        if !report.counting_allocator {
            assert_eq!(report.allocs_per_update, 0.0);
            assert_eq!(report.allocs_per_journaled_update, 0.0);
        }
        assert!(report.journaled_updates_per_sec > 0.0);
        let json = render_hotpath_json(0.02, 7, &report);
        assert!(json.contains("\"schema\":\"mbdr-hotpath/1\""));
        assert!(json.contains("\"allocs_per_update\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        crate::check::parse_json(&json).expect("hotpath JSON parses");
    }
}
