//! The degraded-mode durability experiment behind `reproduce faults`: a
//! seeded disk outage mid-stream, self-healing via the durability probe, a
//! crash, and a recovery that must lose **nothing acknowledged** — emitted
//! as JSON and gated against `baselines/BENCH_faults.json`.
//!
//! The schedule is a pure function of `(scale, seed)` — the outage window
//! comes from [`mbdr_sim::FaultPlan`], so the whole fault scenario is
//! reproducible from the seed alone. One run, two phases:
//!
//! 1. **Faulted ingest** — a [`mbdr_locserver::LocationService`] journals
//!    through a
//!    [`mbdr_journal::FaultFs`] whose disk dies just before `kill_frame`
//!    and heals just before `heal_frame`. Serving continues through the
//!    whole window (every apply is acknowledged); the service flips to
//!    Degraded on the first failed append and counts exactly the
//!    un-journaled applies. A mid-window probe fails against the dead disk;
//!    the probe at the heal point repairs the journal, installs a forced
//!    snapshot covering the degraded window, and flips to Recovered. Every
//!    durability counter is a strict gate: `degraded_frames` is exactly
//!    `heal_frame - kill_frame`, `append_errors` is exactly 1, `appends`
//!    is exactly the frames outside the window, `snapshots` is exactly the
//!    one forced by recovery.
//! 2. **Crash and recover** — the service and journal are dropped with no
//!    clean shutdown and a fresh process recovers from the directory. It is
//!    compared query-by-query against an uninterrupted in-memory twin that
//!    saw **all** frames: `bit_identical_acknowledged` is a strict `1`,
//!    because the forced snapshot re-established the durability floor above
//!    the un-journaled window. `truncated_bytes` is a strict `0` — the
//!    probe's repair already cleaned the tail the dead disk left behind.
//!
//! Only `ingest_wall_s` / `recover_wall_s` ride along under the
//! machine-dependent metric class; everything else is seed-determined.

use crate::recovery::{encoded_frames, fleet, queries_match, UPDATES_PER_FRAME};
use mbdr_journal::{FaultFs, FsyncPolicy, Journal, JournalConfig};
use mbdr_locserver::durable::recover_into;
use mbdr_locserver::recover_and_attach;
use mbdr_sim::FaultPlan;
use std::fs;
use std::sync::Arc;
use std::time::Instant;

/// Fdatasync batch window of the faulted ingest (strictly gated).
const FSYNC_BATCH: u32 = 16;

/// One fault-injection measurement (see the module docs). Every count is
/// seed-deterministic; only the `*_wall_s` fields are machine-dependent.
#[derive(Debug, Clone)]
pub struct FaultsBench {
    /// Tracked objects.
    pub objects: usize,
    /// Frames acknowledged in phase 1 (durable prefix + degraded window +
    /// durable tail).
    pub frames: usize,
    /// Updates per frame (config echo).
    pub updates_per_frame: usize,
    /// Frame index at which the disk died (from the seeded [`FaultPlan`]).
    pub kill_frame: u64,
    /// Frame index at which the disk healed and the probe repaired.
    pub heal_frame: u64,
    /// Updates the primary service accepted (gate: every one, including the
    /// whole degraded window).
    pub updates_applied: u64,
    /// Applies acknowledged without a journal record (gate: exactly
    /// `heal_frame - kill_frame`).
    pub degraded_frames: u64,
    /// Durable→Degraded transitions (gate: exactly one incident).
    pub degraded_transitions: u64,
    /// Degraded→Recovered transitions (gate: exactly one repair).
    pub recovered_transitions: u64,
    /// Durability probes attempted while degraded (the failed mid-window
    /// probe plus the successful one at the heal point).
    pub probe_attempts: u64,
    /// Journal append errors (gate: 1 — the first failed append flips the
    /// state and later frames skip the append instead of re-failing it).
    pub append_errors: u64,
    /// Journal records appended (gate: one per frame outside the window).
    pub appends: u64,
    /// Fdatasync calls in phase 1 (batch windows + rotations + snapshot).
    pub fsyncs: u64,
    /// Snapshots installed (gate: exactly the recovery's forced snapshot).
    pub snapshots: u64,
    /// Frames covered by the snapshot phase 2 restored from (gate:
    /// `kill_frame` — everything journaled before the disk died).
    pub snapshot_frames: u64,
    /// Frame records replayed at recovery: every retained record, i.e. the
    /// post-heal tail plus whatever pre-kill segments snapshot compaction
    /// did not yet cover (trackers silently reject the stale ones). Gate:
    /// at least `frames - heal_frame`, at most `appends`.
    pub replayed_frames: u64,
    /// Snapshot entries restored into registered trackers (gate: all).
    pub restored_objects: u64,
    /// Bytes recovery discarded (gate: 0 — the probe already repaired the
    /// tail the dead disk left behind).
    pub truncated_bytes: u64,
    /// `1` iff the recovered service answered every probe query with
    /// exactly the bits of a twin that saw all acknowledged frames
    /// (gate: 1).
    pub bit_identical_acknowledged: u64,
    /// Wall-clock seconds of the faulted ingest phase.
    pub ingest_wall_s: f64,
    /// Wall-clock seconds of the crash recovery.
    pub recover_wall_s: f64,
}

/// Runs the fault-injection measurement. Deterministic for a given
/// `(scale, seed)` up to wall clocks; uses (and removes) a scratch
/// directory under the system temp dir.
pub fn faults_bench(scale: f64, seed: u64) -> FaultsBench {
    let objects = ((16.0 * scale).round() as usize).max(8);
    let rounds = ((80.0 * scale).round() as usize).max(16);
    let frames = encoded_frames(objects, rounds, seed);
    let plan = FaultPlan::derive(frames.len() as u64, seed);
    // Mid-window probe against the still-dead disk (skipped only when the
    // window is a single frame, where it would collide with the heal probe).
    let mid_probe = plan.kill_frame + plan.degraded_frames() / 2;
    let t_max = rounds as f64 * 2.0 + 20.0;

    let scratch = std::env::temp_dir().join(format!(
        "mbdr-faults-{}-{seed}-{}",
        std::process::id(),
        (scale * 1000.0) as u64
    ));
    let _ = fs::remove_dir_all(&scratch);
    let config = JournalConfig {
        dir: scratch.clone(),
        segment_max_bytes: 16 * 1024, // rotation on: the repair must cope
        fsync: FsyncPolicy::PerBatch(FSYNC_BATCH),
        snapshot_every_frames: 0, // threshold snapshots off: counts stay exact
    };

    // --- Phase 1: faulted ingest over a disk that dies and heals. ---
    let fault = FaultFs::over_real();
    let primary = fleet(objects);
    let journal = Arc::new(
        Journal::open_with_vfs(config.clone(), Arc::new(fault.clone()))
            .expect("fresh dir opens over FaultFs"),
    );
    recover_into(&primary, &journal).expect("fresh dir recovers");
    assert!(primary.attach_journal(Arc::clone(&journal)));
    let twin = fleet(objects);

    let started = Instant::now();
    let mut updates_applied = 0u64;
    for (i, bytes) in frames.iter().enumerate() {
        let i = i as u64;
        if i == plan.kill_frame {
            fault.set_dead(true);
        }
        if i == mid_probe && i > plan.kill_frame && i < plan.heal_frame {
            let repaired = primary.probe_durability();
            debug_assert!(!repaired, "a probe against a dead disk must fail");
        }
        if i == plan.heal_frame {
            fault.set_dead(false);
            let repaired = primary.probe_durability();
            debug_assert!(repaired, "a probe against a healed disk must repair");
        }
        updates_applied += primary.apply_frame_bytes(bytes).expect("apply is acknowledged") as u64;
        twin.apply_frame_bytes(bytes).expect("twin frame applies");
    }
    let ingest_wall_s = started.elapsed().as_secs_f64();
    let durability = primary.durability_stats();
    let ingest_stats = journal.stats();
    drop(primary);
    drop(journal); // crash: no clean shutdown, no final flush

    // --- Phase 2: recover and compare against the all-frames twin. ---
    let recovered = fleet(objects);
    let started = Instant::now();
    let (_journal, report) = recover_and_attach(&recovered, config).expect("recovery succeeds");
    let recover_wall_s = started.elapsed().as_secs_f64();
    let bit_identical_acknowledged = u64::from(queries_match(&recovered, &twin, objects, t_max));

    let _ = fs::remove_dir_all(&scratch);

    FaultsBench {
        objects,
        frames: frames.len(),
        updates_per_frame: UPDATES_PER_FRAME,
        kill_frame: plan.kill_frame,
        heal_frame: plan.heal_frame,
        updates_applied,
        degraded_frames: durability.degraded_frames,
        degraded_transitions: durability.degraded_transitions,
        recovered_transitions: durability.recovered_transitions,
        probe_attempts: durability.probe_attempts,
        append_errors: ingest_stats.append_errors,
        appends: ingest_stats.appends,
        fsyncs: ingest_stats.fsyncs,
        snapshots: ingest_stats.snapshots,
        snapshot_frames: report.snapshot_frames,
        replayed_frames: report.replayed_frames,
        restored_objects: report.restored_objects,
        truncated_bytes: report.truncated_bytes,
        bit_identical_acknowledged,
        ingest_wall_s,
        recover_wall_s,
    }
}

/// Renders the measurement as one JSON document (schema `mbdr-faults/1`).
pub fn render_faults_json(scale: f64, seed: u64, r: &FaultsBench) -> String {
    format!(
        "{{\"schema\":\"mbdr-faults/1\",\"scale\":{scale},\"seed\":{seed},\
         \"objects\":{},\"frames\":{},\"updates_per_frame\":{},\
         \"kill_frame\":{},\"heal_frame\":{},\"updates_applied\":{},\
         \"degraded_frames\":{},\"degraded_transitions\":{},\
         \"recovered_transitions\":{},\"probe_attempts\":{},\
         \"append_errors\":{},\"appends\":{},\"fsyncs\":{},\"snapshots\":{},\
         \"snapshot_frames\":{},\"replayed_frames\":{},\"restored_objects\":{},\
         \"truncated_bytes\":{},\"bit_identical_acknowledged\":{},\
         \"ingest_wall_s\":{:.4},\"recover_wall_s\":{:.4}}}",
        r.objects,
        r.frames,
        r.updates_per_frame,
        r.kill_frame,
        r.heal_frame,
        r.updates_applied,
        r.degraded_frames,
        r.degraded_transitions,
        r.recovered_transitions,
        r.probe_attempts,
        r.append_errors,
        r.appends,
        r.fsyncs,
        r.snapshots,
        r.snapshot_frames,
        r.replayed_frames,
        r.restored_objects,
        r.truncated_bytes,
        r.bit_identical_acknowledged,
        r.ingest_wall_s,
        r.recover_wall_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loses_nothing_acknowledged_and_renders_valid_json() {
        let r = faults_bench(0.25, 42);
        assert_eq!(r.bit_identical_acknowledged, 1);
        assert_eq!(r.updates_applied, (r.frames * r.updates_per_frame) as u64);
        assert_eq!(r.degraded_frames, r.heal_frame - r.kill_frame);
        assert!(r.degraded_frames > 0, "the seeded window must be non-empty: {r:?}");
        assert_eq!(r.degraded_transitions, 1);
        assert_eq!(r.recovered_transitions, 1);
        assert_eq!(r.probe_attempts, 2, "one failed mid-window, one successful at heal");
        assert_eq!(r.append_errors, 1, "only the first failed append hits the disk");
        assert_eq!(r.appends, r.frames as u64 - r.degraded_frames);
        assert_eq!(r.snapshots, 1, "exactly the recovery's forced snapshot");
        assert_eq!(r.snapshot_frames, r.kill_frame);
        assert!(
            r.replayed_frames >= r.frames as u64 - r.heal_frame,
            "the post-heal tail must replay: {r:?}"
        );
        assert!(r.replayed_frames <= r.appends, "replay cannot exceed what was appended: {r:?}");
        assert_eq!(r.restored_objects, r.objects as u64);
        assert_eq!(r.truncated_bytes, 0, "the probe already repaired the tail");
        let json = render_faults_json(0.25, 42, &r);
        assert!(json.contains("\"schema\":\"mbdr-faults/1\""));
        crate::check::parse_json(&json).expect("faults JSON parses");
    }

    #[test]
    fn different_seeds_move_the_outage_window() {
        let a = faults_bench(0.25, 1);
        let b = faults_bench(0.25, 2);
        assert_ne!((a.kill_frame, a.heal_frame), (b.kill_frame, b.heal_frame));
        assert_eq!(a.bit_identical_acknowledged, 1);
        assert_eq!(b.bit_identical_acknowledged, 1);
    }
}
