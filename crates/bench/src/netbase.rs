//! The `reproduce net` baseline: the TCP serving-layer workload of
//! [`mbdr_sim::net_workload`] swept over a small connections grid, emitted as
//! one JSON document (schema `mbdr-net/1`).
//!
//! Counts (updates, frames, bytes, query results) are deterministic for a
//! given seed — the query phase runs after the flush barrier at one fixed
//! instant — so the regression gate compares them strictly, while the
//! throughput and latency fields are machine-dependent and only
//! sanity-checked.

use mbdr_sim::{run_net_workload, NetWorkloadConfig, NetWorkloadReport};

/// The (producer, query) connection counts the baseline sweeps: a serial
/// reference point and the concurrent shape the serving layer exists for.
pub const BASELINE_CONNECTIONS: [(usize, usize); 2] = [(1, 1), (4, 4)];

/// Runs the serving-layer baseline grid at the given scale (`scale` shrinks
/// fleet size, trip length and query counts together, like the throughput
/// baseline).
pub fn net_grid(scale: f64, seed: u64) -> Vec<NetWorkloadReport> {
    BASELINE_CONNECTIONS
        .iter()
        .map(|&(producers, queriers)| {
            run_net_workload(&NetWorkloadConfig {
                objects: ((48.0 * scale).round() as usize).max(8),
                producer_connections: producers,
                query_connections: queriers,
                queries_per_connection: ((400.0 * scale) as usize).max(30),
                trip_length_m: (3_000.0 * scale).max(400.0),
                seed,
                ..NetWorkloadConfig::default()
            })
        })
        .collect()
}

/// Renders the grid as one JSON document (schema `mbdr-net/1`).
pub fn render_net_json(scale: f64, seed: u64, reports: &[NetWorkloadReport]) -> String {
    let mut out =
        format!("{{\"schema\":\"mbdr-net/1\",\"scale\":{scale},\"seed\":{seed},\"points\":[");
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report.to_json());
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_produces_json_with_latency_fields() {
        // Tiny smoke scale: the same path CI exercises.
        let reports = net_grid(0.05, 7);
        assert_eq!(reports.len(), BASELINE_CONNECTIONS.len());
        for r in &reports {
            assert_eq!(r.updates_applied, r.updates_sent);
            assert!(r.updates_per_sec > 0.0);
            assert!(r.latency_p99_ms >= r.latency_p50_ms);
            assert_eq!(r.server.connections_dropped, 0);
        }
        let json = render_net_json(0.05, 7, &reports);
        assert!(json.contains("\"schema\":\"mbdr-net/1\""));
        assert!(json.contains("\"latency_p50_ms\":"));
        assert!(json.contains("\"producer_connections\":4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
