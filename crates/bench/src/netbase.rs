//! The `reproduce net` and `reproduce connscale` baselines: the TCP
//! serving-layer workload of [`mbdr_sim::net_workload`] swept over a small
//! connections grid (schema `mbdr-net/1`), and the high-connection-count
//! workload of [`mbdr_sim::connscale`] swept over an idle-crowd grid
//! (schema `mbdr-connscale/1`).
//!
//! Counts (updates, frames, bytes, query results, thread accounting) are
//! deterministic for a given seed — the query phases run after flush
//! barriers at one fixed instant — so the regression gate compares them
//! strictly, while the throughput, latency and readiness-diagnostic fields
//! are machine-dependent and only sanity-checked.

use mbdr_sim::{
    run_connscale_workload, run_net_workload, ConnScaleConfig, ConnScaleReport, NetWorkloadConfig,
    NetWorkloadReport,
};

/// The (producer, query) connection counts the baseline sweeps: a serial
/// reference point and the concurrent shape the serving layer exists for.
pub const BASELINE_CONNECTIONS: [(usize, usize); 2] = [(1, 1), (4, 4)];

/// Runs the serving-layer baseline grid at the given scale (`scale` shrinks
/// fleet size, trip length and query counts together, like the throughput
/// baseline).
pub fn net_grid(scale: f64, seed: u64) -> Vec<NetWorkloadReport> {
    BASELINE_CONNECTIONS
        .iter()
        .map(|&(producers, queriers)| {
            run_net_workload(&NetWorkloadConfig {
                objects: ((48.0 * scale).round() as usize).max(8),
                producer_connections: producers,
                query_connections: queriers,
                queries_per_connection: ((400.0 * scale) as usize).max(30),
                trip_length_m: (3_000.0 * scale).max(400.0),
                seed,
                ..NetWorkloadConfig::default()
            })
        })
        .collect()
}

/// Renders the grid as one JSON document (schema `mbdr-net/1`).
pub fn render_net_json(scale: f64, seed: u64, reports: &[NetWorkloadReport]) -> String {
    let mut out =
        format!("{{\"schema\":\"mbdr-net/1\",\"scale\":{scale},\"seed\":{seed},\"points\":[");
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report.to_json());
    }
    out.push_str("]}");
    out
}

/// The (total, hot) connection counts the connection-scale baseline sweeps:
/// a mid-size point and the multi-thousand shape the reactor exists for.
pub const BASELINE_CONNSCALE: [(usize, usize); 2] = [(1_024, 32), (4_096, 64)];

/// Runs the connection-scale grid at the given scale (`scale` shrinks the
/// idle crowd and hot subset together; counts never drop below a small
/// floor so the workload stays meaningful at CI smoke scales).
pub fn connscale_grid(scale: f64, seed: u64) -> Vec<ConnScaleReport> {
    BASELINE_CONNSCALE
        .iter()
        .map(|&(connections, hot)| {
            let connections = ((connections as f64 * scale).round() as usize).max(32);
            run_connscale_workload(&ConnScaleConfig {
                connections,
                hot_connections: ((hot as f64 * scale).round() as usize).max(4).min(connections),
                rect_queries: ((256.0 * scale).round() as usize).max(32),
                seed,
                ..ConnScaleConfig::default()
            })
        })
        .collect()
}

/// Renders the connection-scale grid as one JSON document (schema
/// `mbdr-connscale/1`).
pub fn render_connscale_json(scale: f64, seed: u64, reports: &[ConnScaleReport]) -> String {
    let mut out =
        format!("{{\"schema\":\"mbdr-connscale/1\",\"scale\":{scale},\"seed\":{seed},\"points\":[");
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report.to_json());
    }
    out.push_str("]}");
    out
}

/// The file-descriptor budget `connscale` needs at the given scale: two fds
/// per connection (client + server end, both in this process) for the
/// largest grid point, plus slack for the pollers, wakers, listeners and
/// whatever the process already has open.
pub fn connscale_fd_demand(scale: f64) -> u64 {
    let largest = BASELINE_CONNSCALE
        .iter()
        .map(|&(connections, _)| ((connections as f64 * scale).round() as u64).max(32))
        .max()
        .unwrap_or(32);
    2 * largest + 256
}

/// The soft `RLIMIT_NOFILE` of this process (Linux: parsed from
/// `/proc/self/limits`; `None` where that file does not exist), so
/// `reproduce connscale` can refuse with a clear message instead of dying
/// mid-run on `EMFILE`.
pub fn open_file_soft_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_produces_json_with_latency_fields() {
        // Tiny smoke scale: the same path CI exercises.
        let reports = net_grid(0.05, 7);
        assert_eq!(reports.len(), BASELINE_CONNECTIONS.len());
        for r in &reports {
            assert_eq!(r.updates_applied, r.updates_sent);
            assert!(r.updates_per_sec > 0.0);
            assert!(r.latency_p99_ms >= r.latency_p50_ms);
            assert_eq!(r.server.connections_dropped, 0);
        }
        let json = render_net_json(0.05, 7, &reports);
        assert!(json.contains("\"schema\":\"mbdr-net/1\""));
        assert!(json.contains("\"latency_p50_ms\":"));
        assert!(json.contains("\"producer_connections\":4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn connscale_smoke_grid_holds_every_connection() {
        // Tiny smoke scale: the same path CI exercises (32+32 connections).
        let reports = connscale_grid(0.02, 7);
        assert_eq!(reports.len(), BASELINE_CONNSCALE.len());
        for r in &reports {
            assert_eq!(r.updates_applied, r.updates_sent);
            assert_eq!(r.server.connections_dropped, 0);
            assert_eq!(r.server.evicted_slow, 0);
            assert_eq!(r.server.register_failures, 0);
            assert_eq!(r.pool_threads, 5, "accept + 2 reactors + 2 ingest workers");
        }
        let json = render_connscale_json(0.02, 7, &reports);
        assert!(json.contains("\"schema\":\"mbdr-connscale/1\""));
        assert!(json.contains("\"resident_threads\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fd_demand_scales_with_the_largest_grid_point() {
        assert_eq!(connscale_fd_demand(1.0), 2 * 4_096 + 256);
        assert!(connscale_fd_demand(0.02) < 1_000);
    }

    #[test]
    fn soft_fd_limit_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            let limit = open_file_soft_limit().expect("parse /proc/self/limits");
            assert!(limit >= 64, "soft limit {limit} suspiciously small");
        }
    }
}
