//! The `reproduce wire` baseline: the lossy-link sweep of
//! [`mbdr_sim::lossy`] at the repository's default seed, emitted as one JSON
//! document (schema `mbdr-wire/1`) so accuracy degradation and message
//! overhead under uplink loss are tracked as a regression baseline from this
//! change on.

use mbdr_sim::{run_loss_sweep, LinkConfig, LossSweepConfig, LossSweepResult, ProtocolKind};
use mbdr_trace::ScenarioKind;

/// The loss rates the baseline sweeps, ascending.
pub const BASELINE_LOSS_RATES: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5];

/// Runs the wire baseline: the map-based protocol on the city scenario at
/// `u_s` = 100 m over a GPRS-like degraded link, swept over
/// [`BASELINE_LOSS_RATES`]. `scale` shrinks the trace for smoke runs.
pub fn wire_baseline(scale: f64, seed: u64) -> LossSweepResult {
    run_loss_sweep(&LossSweepConfig {
        scenario: ScenarioKind::City,
        scale,
        seed,
        protocol: ProtocolKind::MapBased,
        requested_accuracy: 100.0,
        loss_rates: BASELINE_LOSS_RATES.to_vec(),
        link: LinkConfig::gprs(seed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_json_is_monotone_and_well_formed() {
        // The same shape CI smokes: a short city trace over the full loss
        // axis. Accuracy must degrade monotonically with loss (the JSON is
        // the acceptance artefact for that property).
        let result = wire_baseline(0.05, 2001);
        assert_eq!(result.points.len(), BASELINE_LOSS_RATES.len());
        for pair in result.points.windows(2) {
            assert!(pair[1].deviation.mean >= pair[0].deviation.mean);
            assert!(pair[1].delivered_ratio <= pair[0].delivered_ratio + 1e-12);
        }
        let json = result.to_json();
        assert!(json.contains("\"schema\":\"mbdr-wire/1\""));
        assert!(json.contains("\"loss_rate\":0.5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
