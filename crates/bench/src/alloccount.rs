//! A counting global allocator: the observability behind the zero-alloc
//! hot-path gate.
//!
//! [`CountingAllocator`] wraps the system allocator and bumps a global
//! counter on every `alloc` / `realloc` / `alloc_zeroed` call (deallocations
//! are free and not counted). Binaries that want allocation accounting
//! install it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mbdr_bench::alloccount::CountingAllocator = CountingAllocator;
//! ```
//!
//! (the `reproduce` binary and the `zero_alloc` integration test do), and the
//! hot-path harness reads [`allocations`] deltas around its measured loops.
//! When no binary installs the allocator the counter simply never moves;
//! [`counting_allocator_installed`] detects that so reports can say whether
//! their zeros are meaningful.
//!
//! The per-allocation overhead is one relaxed atomic increment — far below
//! measurement noise, so the same binary serves for both the allocation gate
//! and the wall-clock numbers.

// The one unsafe impl in the workspace: `GlobalAlloc` is an unsafe trait by
// definition. The implementation only forwards to `std::alloc::System` and
// touches no pointer itself beyond passing it through.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed so far (process-wide, all threads).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` that counts allocations and delegates to the
/// system allocator.
pub struct CountingAllocator;

// SAFETY: the impl and every method below only forward the caller's
// arguments to `std::alloc::System` unchanged, so the system allocator's
// contract is exactly the caller's contract; the counter bump touches no
// pointer. Each `unsafe` line carries its own escape hatch: this is the one
// sanctioned use outside `crates/net/src/sys` (a `GlobalAlloc` impl cannot
// live behind the syscall boundary), and the per-site hatches are the point —
// out-of-boundary unsafe stays expensive to write.
// lint: allow(unsafe-confinement) reason=GlobalAlloc is an unsafe trait; the impl only delegates to System
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards layout to System.alloc; the contract is the caller's.
    // lint: allow(unsafe-confinement) reason=GlobalAlloc methods are unsafe fn by trait definition
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // lint: allow(unsafe-confinement) reason=delegation to the system allocator with the caller's layout
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards ptr/layout to System.dealloc unchanged.
    // lint: allow(unsafe-confinement) reason=GlobalAlloc methods are unsafe fn by trait definition
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // lint: allow(unsafe-confinement) reason=delegation to the system allocator with the caller's ptr/layout
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards layout to System.alloc_zeroed; contract passes through.
    // lint: allow(unsafe-confinement) reason=GlobalAlloc methods are unsafe fn by trait definition
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // lint: allow(unsafe-confinement) reason=delegation to the system allocator with the caller's layout
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: forwards ptr/layout/new_size to System.realloc unchanged.
    // lint: allow(unsafe-confinement) reason=GlobalAlloc methods are unsafe fn by trait definition
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // lint: allow(unsafe-confinement) reason=delegation to the system allocator with the caller's arguments
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total heap allocations observed so far. Zero until (and unless) a binary
/// installs [`CountingAllocator`] as its global allocator.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Whether the counting allocator is actually installed in this process:
/// performs one deliberate heap allocation and checks that the counter saw
/// it. Reports use this to distinguish a meaningful zero from a dead counter.
pub fn counting_allocator_installed() -> bool {
    let before = allocations();
    drop(std::hint::black_box(Box::new(0u64)));
    allocations() > before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_and_detection_is_consistent() {
        // Unit tests run without the allocator installed, so the counter
        // must stay flat and detection must say "not installed". (The real
        // counting assertions live in the `zero_alloc` integration test and
        // the `reproduce hotpath` gate, which do install it.)
        let installed = counting_allocator_installed();
        let before = allocations();
        drop(std::hint::black_box(Box::new([0u8; 64])));
        let after = allocations();
        if installed {
            assert!(after > before);
        } else {
            assert_eq!(after, before);
        }
    }
}
