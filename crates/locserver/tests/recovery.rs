//! Kill-and-recover equivalence: a service rebuilt from its journal
//! (snapshot + tail replay) must answer every query **bit-identically** to an
//! uninterrupted twin that applied the same frames in memory — rect id sets
//! and positions, nearest-neighbour sequences, and zone enter/leave events.

use mbdr_core::{encode_snapshot_into, Frame, SnapshotEntry};
use mbdr_core::{LinearPredictor, ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_journal::{FsyncPolicy, Journal, JournalConfig};
use mbdr_locserver::{recover_and_attach, LocationService, ObjectId, ServiceConfig, ZoneWatcher};
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const OBJECTS: u64 = 12;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("mbdr-locserver-recovery-{}-{tag}-{seq}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fleet() -> LocationService {
    let service =
        LocationService::with_config(ServiceConfig { shards: 4, ..ServiceConfig::default() });
    for i in 0..OBJECTS {
        service.register(ObjectId(i), Arc::new(LinearPredictor));
    }
    service
}

/// Deterministic pre-encoded frames: round-robin over the fleet, three
/// updates per frame, positions from a splitmix-style generator.
fn encoded_frames(rounds: u64) -> Vec<Vec<u8>> {
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut step = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((rng >> 17) % 4001) as f64 - 2000.0
    };
    let mut out = Vec::new();
    for round in 0..rounds {
        for object in 0..OBJECTS {
            let mut frame = Frame::new(object);
            for u in 0..3u64 {
                let t = round as f64 * 2.0 + u as f64 * 0.5;
                let state = ObjectState::basic(
                    Point::new(step(), step()),
                    4.0 + (object % 5) as f64,
                    0.25 * (u + 1) as f64,
                    t,
                );
                frame.updates.push(Update {
                    sequence: round * 3 + u,
                    state,
                    kind: UpdateKind::DeviationBound,
                });
            }
            out.push(frame.encode().expect("encode frame"));
        }
    }
    out
}

/// Asserts the two services answer rect, nearest and zone queries with
/// exactly the same bits, across a grid of query times and areas.
fn assert_equivalent(recovered: &LocationService, twin: &LocationService, t_max: f64) {
    assert_eq!(recovered.total_updates(), twin.total_updates(), "update counts diverge");
    let areas = [
        Aabb::new(Point::new(-2000.0, -2000.0), Point::new(2000.0, 2000.0)),
        Aabb::new(Point::new(-500.0, -500.0), Point::new(500.0, 500.0)),
        Aabb::new(Point::new(0.0, -2000.0), Point::new(2000.0, 0.0)),
    ];
    let vantage = [Point::new(0.0, 0.0), Point::new(-1500.0, 900.0)];
    let mut t = 0.0;
    while t <= t_max {
        for area in &areas {
            assert_eq!(
                recovered.objects_in_rect(area, t),
                twin.objects_in_rect(area, t),
                "rect answers diverge at t={t}"
            );
        }
        for from in &vantage {
            assert_eq!(
                recovered.nearest_objects(from, t, 5),
                twin.nearest_objects(from, t, 5),
                "nearest answers diverge at t={t}"
            );
        }
        for i in 0..OBJECTS {
            assert_eq!(
                recovered.position_of(ObjectId(i), t),
                twin.position_of(ObjectId(i), t),
                "position diverges for object {i} at t={t}"
            );
        }
        t += 7.5;
    }
    // Zone transitions depend on every intermediate evaluation, so two fresh
    // watchers walked over the same times must emit identical event streams.
    let mut watcher_a = ZoneWatcher::new();
    let mut watcher_b = ZoneWatcher::new();
    for w in [&mut watcher_a, &mut watcher_b] {
        w.add_zone("downtown", Aabb::new(Point::new(-800.0, -800.0), Point::new(800.0, 800.0)));
        w.add_zone("east", Aabb::new(Point::new(0.0, -2000.0), Point::new(2000.0, 2000.0)));
    }
    let mut t = 0.0;
    while t <= t_max {
        assert_eq!(
            watcher_a.evaluate(recovered, t),
            watcher_b.evaluate(twin, t),
            "zone events diverge at t={t}"
        );
        t += 5.0;
    }
}

fn journal_config(dir: &Path) -> JournalConfig {
    JournalConfig {
        dir: dir.to_path_buf(),
        segment_max_bytes: 4 * 1024, // force rotation
        fsync: FsyncPolicy::PerBatch(8),
        snapshot_every_frames: 40, // force snapshots + compaction
    }
}

#[test]
fn killed_service_recovers_bit_identical_to_uninterrupted_twin() {
    let dir = temp_dir("bit-identity");
    let frames = encoded_frames(30);
    let crash_at = (frames.len() * 7) / 10;

    // Primary: journaled, ingests a prefix, then "crashes" (dropped without
    // any explicit flush — durability must not depend on a clean shutdown).
    let primary = fleet();
    let (journal, report) =
        recover_and_attach(&primary, journal_config(&dir)).expect("initial attach");
    assert_eq!(report.replayed_frames, 0, "fresh dir: nothing to replay");
    for bytes in &frames[..crash_at] {
        primary.apply_frame_bytes(bytes).expect("primary apply");
    }
    let primary_stats = journal.stats();
    assert_eq!(primary_stats.appends, crash_at as u64);
    assert!(primary_stats.snapshots >= 1, "snapshot cadence must have fired");
    assert!(primary_stats.fsyncs > 0);
    drop(primary);
    drop(journal);

    // Twin: same frames, purely in memory, never interrupted.
    let twin = fleet();
    for bytes in &frames[..crash_at] {
        twin.apply_frame_bytes(bytes).expect("twin apply");
    }

    // Recovered: fresh process, state rebuilt from snapshot + tail.
    let recovered = fleet();
    let (journal, report) = recover_and_attach(&recovered, journal_config(&dir)).expect("recovery");
    assert!(report.snapshot_frames > 0, "snapshot must participate: {report:?}");
    assert_eq!(report.restored_objects, OBJECTS, "{report:?}");
    assert_eq!(report.frame_decode_errors, 0);
    assert_eq!(report.truncated_bytes, 0, "clean files: nothing torn");
    assert!(
        (report.replayed_frames as usize) < crash_at,
        "compaction must shorten replay: {report:?}"
    );
    // A retained segment can straddle the snapshot floor, so the replay may
    // overlap the snapshot — coverage is "at least", and the staleness rules
    // make the overlap harmless.
    assert!(
        report.snapshot_frames + report.replayed_frames >= crash_at as u64,
        "snapshot + tail must cover the journaled prefix: {report:?}"
    );
    assert_equivalent(&recovered, &twin, 70.0);

    // Both keep serving: apply the remaining frames to each and re-compare.
    // The recovered service keeps journaling while it does.
    for bytes in &frames[crash_at..] {
        recovered.apply_frame_bytes(bytes).expect("recovered apply");
        twin.apply_frame_bytes(bytes).expect("twin apply");
    }
    assert_equivalent(&recovered, &twin, 70.0);
    let stats = journal.stats();
    assert_eq!(
        stats.recovered_frames + stats.appends,
        (frames.len() - crash_at) as u64 + report.replayed_frames,
        "post-recovery appends continue the same journal: {stats:?}"
    );
    drop(recovered);
    drop(journal);

    // Third generation: recover again over the full history.
    let third = fleet();
    let (_journal, report) = recover_and_attach(&third, journal_config(&dir)).expect("recovery 2");
    assert!(report.snapshot_frames + report.replayed_frames >= frames.len() as u64, "{report:?}");
    assert_equivalent(&third, &twin, 70.0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_recovers_to_the_last_complete_frame() {
    let dir = temp_dir("torn-tail");
    let frames = encoded_frames(6);
    let config = JournalConfig {
        snapshot_every_frames: 0, // log only: keep the byte layout predictable
        segment_max_bytes: 64 * 1024 * 1024,
        ..journal_config(&dir)
    };

    let primary = fleet();
    let (journal, _) = recover_and_attach(&primary, config.clone()).expect("attach");
    for bytes in &frames {
        primary.apply_frame_bytes(bytes).expect("apply");
    }
    journal.flush().expect("flush");
    drop(primary);
    drop(journal);

    // Tear the tail: flip a byte in the final record's payload, then append
    // garbage after it — a crash mid-write followed by disk noise.
    let segment: PathBuf = fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "mbdrj"))
        .expect("segment file");
    let mut bytes = fs::read(&segment).expect("read segment");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&segment, &bytes).expect("write back");
    let mut file = OpenOptions::new().append(true).open(&segment).expect("open");
    file.write_all(&[0xEEu8; 37]).expect("garbage");
    drop(file);

    let recovered = fleet();
    let (_journal, report) = recover_and_attach(&recovered, config).expect("recovery");
    assert_eq!(report.replayed_frames, frames.len() as u64 - 1, "{report:?}");
    assert!(report.truncated_bytes > 0, "{report:?}");
    assert_eq!(report.frame_decode_errors, 0);

    // The twin that never saw the torn final frame is the ground truth.
    let twin = fleet();
    for bytes in &frames[..frames.len() - 1] {
        twin.apply_frame_bytes(bytes).expect("twin apply");
    }
    assert_equivalent(&recovered, &twin, 30.0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_entries_for_unregistered_objects_are_skipped() {
    let dir = temp_dir("unregistered");
    let config = JournalConfig { snapshot_every_frames: 0, ..journal_config(&dir) };
    // Hand-craft a journal whose snapshot mentions an object the recovering
    // service does not serve: counted as skipped, never a panic.
    let journal = Journal::open(config.clone()).expect("open");
    let known = ObjectState::basic(Point::new(1.0, 2.0), 3.0, 0.0, 1.0);
    let unknown = ObjectState::basic(Point::new(9.0, 9.0), 1.0, 0.0, 1.0);
    let entries = [
        SnapshotEntry {
            object: 0,
            updates_applied: 1,
            bytes_received: 42,
            update: Update { sequence: 5, state: known, kind: UpdateKind::Initial },
        },
        SnapshotEntry {
            object: OBJECTS + 100,
            updates_applied: 1,
            bytes_received: 42,
            update: Update { sequence: 5, state: unknown, kind: UpdateKind::Initial },
        },
    ];
    let mut body = Vec::new();
    encode_snapshot_into(2, &entries, &mut body).expect("encode snapshot");
    journal.install_snapshot(2, &body).expect("install");
    drop(journal);

    let recovered = fleet();
    let (_journal, report) = recover_and_attach(&recovered, config).expect("recovery");
    assert_eq!(report.restored_objects, 1, "{report:?}");
    assert_eq!(report.skipped_objects, 1, "{report:?}");
    assert!(recovered.position_of(ObjectId(0), 1.0).is_some());
    let _ = fs::remove_dir_all(&dir);
}
