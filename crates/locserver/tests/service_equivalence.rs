//! The index-refactor contract: the sharded, spatially-indexed service must
//! return **exactly** the same query answers as the seed implementation — a
//! full scan over every tracker under one global lock. The reference below is
//! that full scan, re-implemented verbatim over a mirror of the same
//! `ServerTracker`s; the property drives both through random registrations,
//! updates, deregistrations and queries (including query times far past the
//! index staleness horizon, which exercise the lazy re-grow path).

use mbdr_core::{
    ArcPredictor, LinearPredictor, ObjectState, Predictor, ServerTracker, StaticPredictor, Update,
    UpdateKind,
};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, PositionReport, ServiceConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn predictor_for(index: usize) -> Arc<dyn Predictor> {
    match index % 3 {
        0 => Arc::new(StaticPredictor),
        1 => Arc::new(LinearPredictor),
        _ => Arc::new(ArcPredictor),
    }
}

/// The seed implementation's range query, verbatim, over the mirror store.
fn reference_in_rect(
    mirror: &BTreeMap<ObjectId, ServerTracker>,
    area: &Aabb,
    t: f64,
) -> Vec<PositionReport> {
    let mut out: Vec<PositionReport> = mirror
        .iter()
        .filter_map(|(&id, tracker)| {
            let position = tracker.position_at(t)?;
            if area.contains(&position) {
                let age = tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
                Some(PositionReport { object: id, position, information_age: age })
            } else {
                None
            }
        })
        .collect();
    out.sort_by_key(|r| r.object);
    out
}

/// The seed implementation's k-nearest query, verbatim, over the mirror.
fn reference_nearest(
    mirror: &BTreeMap<ObjectId, ServerTracker>,
    from: &Point,
    t: f64,
    k: usize,
) -> Vec<PositionReport> {
    let mut out: Vec<(f64, PositionReport)> = mirror
        .iter()
        .filter_map(|(&id, tracker)| {
            let position = tracker.position_at(t)?;
            let age = tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
            Some((
                from.distance(&position),
                PositionReport { object: id, position, information_age: age },
            ))
        })
        .collect();
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.object.cmp(&b.1.object)));
    out.into_iter().take(k).map(|(_, r)| r).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_service_matches_the_full_scan_reference(
        object_count in 2usize..20,
        shards in 1usize..9,
        cell in 50.0..600.0f64,
        horizon in 2.0..40.0f64,
        updates in proptest::collection::vec(
            (0usize..20, -2_000.0..2_000.0f64, -2_000.0..2_000.0f64,
             0.0..40.0f64, 0.0..std::f64::consts::TAU, -0.1..0.1f64, 0.0..200.0f64),
            1..120
        ),
        deregister_stride in 2usize..7,
        queries in proptest::collection::vec(
            (-2_500.0..2_500.0f64, -2_500.0..2_500.0f64, 10.0..1_500.0f64, 0.0..600.0f64),
            1..24
        ),
    ) {
        let config =
            ServiceConfig { shards, cell_size_m: cell, horizon_s: horizon, slack_m: 25.0 };
        let service = LocationService::with_config(config);
        let mut mirror: BTreeMap<ObjectId, ServerTracker> = BTreeMap::new();

        for i in 0..object_count {
            let id = ObjectId(i as u64);
            let predictor = predictor_for(i);
            service.register(id, Arc::clone(&predictor));
            mirror.insert(id, ServerTracker::new(predictor));
        }

        // Random updates (sequence numbers per object in generation order, so
        // both sides see the same accept/reject decisions).
        let mut sequences = vec![0u64; object_count];
        for &(raw_index, x, y, speed, heading, turn_rate, t) in updates.iter() {
            let index = raw_index % object_count;
            let id = ObjectId(index as u64);
            let mut state = ObjectState::basic(Point::new(x, y), speed, heading, t);
            state.turn_rate = turn_rate;
            let update = Update {
                sequence: sequences[index],
                state,
                kind: UpdateKind::DeviationBound,
            };
            sequences[index] += 1;
            prop_assert!(service.apply_update(id, &update));
            mirror.get_mut(&id).unwrap().apply(&update);
        }

        // Deregister a deterministic subset on both sides.
        for i in (0..object_count).step_by(deregister_stride) {
            let id = ObjectId(i as u64);
            prop_assert!(service.deregister(id));
            mirror.remove(&id);
        }

        for (qi, &(x, y, extent, t)) in queries.iter().enumerate() {
            let area = Aabb::around(Point::new(x, y), extent);
            prop_assert_eq!(
                service.objects_in_rect(&area, t),
                reference_in_rect(&mirror, &area, t),
                "rect query {} diverged (area {:?}, t {})", qi, area, t
            );
            let from = Point::new(x, y);
            let k = (extent as usize % (object_count + 2)).max(1);
            prop_assert_eq!(
                service.nearest_objects(&from, t, k),
                reference_nearest(&mirror, &from, t, k),
                "nearest query {} diverged (from {:?}, t {}, k {}, config {:?})",
                qi, from, t, k, config
            );
        }
    }
}
