//! Degraded-mode durability: a journal whose disk dies mid-stream flips the
//! service to Degraded (serving continues, un-journaled applies are counted
//! exactly), a re-probe against the healed disk repairs the journal, installs
//! a forced snapshot and flips back to Recovered — and a fresh process
//! recovering from that directory answers every query bit-identically to an
//! uninterrupted in-memory twin, because the forced snapshot covers the
//! degraded window.

use mbdr_core::{DurabilityState, Frame, LinearPredictor, ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_journal::{FaultFs, FsyncPolicy, Journal, JournalConfig};
use mbdr_locserver::durable::recover_into;
use mbdr_locserver::{recover_and_attach, LocationService, ObjectId, ServiceConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const OBJECTS: u64 = 8;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("mbdr-locserver-degraded-{}-{tag}-{seq}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fleet() -> LocationService {
    let service =
        LocationService::with_config(ServiceConfig { shards: 4, ..ServiceConfig::default() });
    for i in 0..OBJECTS {
        service.register(ObjectId(i), Arc::new(LinearPredictor));
    }
    service
}

/// Deterministic pre-encoded frames, round-robin over the fleet.
fn encoded_frames(count: usize) -> Vec<Vec<u8>> {
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut step = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((rng >> 17) % 4001) as f64 - 2000.0
    };
    (0..count)
        .map(|i| {
            let object = i as u64 % OBJECTS;
            let round = i as u64 / OBJECTS;
            let state = ObjectState::basic(
                Point::new(step(), step()),
                3.0 + (object % 4) as f64,
                0.3,
                round as f64,
            );
            Frame::single(
                object,
                Update { sequence: round, state, kind: UpdateKind::DeviationBound },
            )
            .encode()
            .expect("encode frame")
        })
        .collect()
}

fn journal_config(dir: &Path) -> JournalConfig {
    JournalConfig {
        dir: dir.to_path_buf(),
        segment_max_bytes: 64 * 1024 * 1024,
        fsync: FsyncPolicy::PerBatch(4),
        snapshot_every_frames: 0, // threshold snapshots off: counts stay exact
    }
}

/// Opens a journal over a [`FaultFs`] and attaches it the way
/// [`recover_and_attach`] would (open → restore+replay → attach).
fn attach_faulty(service: &LocationService, fault: &FaultFs, dir: &Path) -> Arc<Journal> {
    let journal = Arc::new(
        Journal::open_with_vfs(journal_config(dir), Arc::new(fault.clone()))
            .expect("open over FaultFs"),
    );
    recover_into(service, &journal).expect("recover");
    assert!(service.attach_journal(Arc::clone(&journal)));
    journal
}

fn assert_equivalent(recovered: &LocationService, twin: &LocationService, t_max: f64) {
    assert_eq!(recovered.total_updates(), twin.total_updates());
    let area = Aabb::new(Point::new(-2000.0, -2000.0), Point::new(2000.0, 2000.0));
    let mut t = 0.0;
    while t <= t_max {
        assert_eq!(recovered.objects_in_rect(&area, t), twin.objects_in_rect(&area, t), "t={t}");
        assert_eq!(
            recovered.nearest_objects(&Point::ORIGIN, t, 5),
            twin.nearest_objects(&Point::ORIGIN, t, 5),
            "t={t}"
        );
        t += 3.5;
    }
}

#[test]
fn disk_death_degrades_heals_and_loses_no_acknowledged_frame() {
    let dir = temp_dir("lifecycle");
    let frames = encoded_frames(60);
    let (kill_at, heal_at) = (24usize, 40usize);

    let fault = FaultFs::over_real();
    let primary = fleet();
    let journal = attach_faulty(&primary, &fault, &dir);
    let twin = fleet();

    // Phase 1: durable ingest.
    for bytes in &frames[..kill_at] {
        primary.apply_frame_bytes(bytes).expect("durable apply");
        twin.apply_frame_bytes(bytes).expect("twin apply");
    }
    assert_eq!(primary.health_status().state, DurabilityState::Durable);
    assert_eq!(journal.frames_appended(), kill_at as u64);

    // Phase 2: the disk dies mid-stream. Serving continues; every apply in
    // the window is counted as degraded, and exactly one append error is
    // recorded (later frames skip the append instead of re-failing it).
    fault.set_dead(true);
    for bytes in &frames[kill_at..heal_at] {
        primary.apply_frame_bytes(bytes).expect("degraded apply still serves");
        twin.apply_frame_bytes(bytes).expect("twin apply");
    }
    let health = primary.health_status();
    assert_eq!(health.state, DurabilityState::Degraded);
    assert_eq!(health.degraded_frames, (heal_at - kill_at) as u64);
    assert_eq!(health.append_errors, 1, "first failed append flips the state");
    assert_eq!(journal.frames_appended(), kill_at as u64, "no append while degraded");
    let stats = primary.durability_stats();
    assert_eq!(stats.degraded_transitions, 1);
    assert_eq!(stats.recovered_transitions, 0);

    // A probe against the still-dead disk fails and leaves the state alone.
    assert!(!primary.probe_durability());
    assert_eq!(primary.health_status().state, DurabilityState::Degraded);
    assert_eq!(primary.durability_stats().probe_attempts, 1);

    // Phase 3: the disk heals; the probe repairs the tail, snapshots the
    // current tracker state (covering the degraded window) and flips back.
    fault.set_dead(false);
    assert!(primary.probe_durability());
    let stats = primary.durability_stats();
    assert_eq!(stats.state, DurabilityState::Recovered);
    assert_eq!(stats.recovered_transitions, 1);
    assert_eq!(stats.probe_attempts, 2);
    assert_eq!(journal.stats().snapshots, 1, "recovery installs a forced snapshot");
    // A second probe is a no-op success.
    assert!(primary.probe_durability());
    assert_eq!(primary.durability_stats().probe_attempts, 2);

    // Phase 4: recovered ingest journals again.
    for bytes in &frames[heal_at..] {
        primary.apply_frame_bytes(bytes).expect("recovered apply");
        twin.apply_frame_bytes(bytes).expect("twin apply");
    }
    assert_eq!(journal.frames_appended(), (kill_at + frames.len() - heal_at) as u64);
    assert_eq!(primary.health_status().degraded_frames, (heal_at - kill_at) as u64);
    journal.flush().expect("flush");
    drop(primary);
    drop(journal);

    // Phase 5: a fresh process recovering from the directory matches the
    // uninterrupted twin exactly — every acknowledged frame survived, because
    // the forced snapshot re-established the durability floor above the
    // un-journaled window.
    let recovered = fleet();
    let (journal, report) = recover_and_attach(&recovered, journal_config(&dir)).expect("recover");
    assert_eq!(report.snapshot_frames, kill_at as u64, "{report:?}");
    assert_eq!(report.restored_objects, OBJECTS);
    assert_eq!(report.frame_decode_errors, 0);
    assert_equivalent(&recovered, &twin, 10.0);
    assert_eq!(recovered.health_status().state, DurabilityState::Durable);
    drop(journal);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn service_without_journal_reports_durable_health() {
    let service = fleet();
    let health = service.health_status();
    assert_eq!(health.state, DurabilityState::Durable);
    assert_eq!(health.degraded_frames, 0);
    assert_eq!(health.append_errors, 0);
    assert!(service.probe_durability(), "never degraded: probe is a no-op success");
    assert_eq!(service.durability_stats().probe_attempts, 0);
}

/// Tier-2 soak (run with `cargo test -p mbdr-locserver -- --ignored`): ~30 s
/// of ingest under a seeded random fault schedule with kill-and-recover
/// loops. The disk dies and heals at random points; the process is "killed"
/// (service + journal dropped without a clean shutdown) and recovered from
/// the directory over and over. Asserts: no panic anywhere, every recovery
/// succeeds, the cumulative recovered-frame count is monotone, and the
/// service keeps answering queries.
#[test]
#[ignore = "tier-2 soak: ~30s wall clock"]
fn seeded_fault_soak_recovers_indefinitely() {
    let dir = temp_dir("soak");
    let frames = encoded_frames(400);
    let mut seed = 0x5EED_50AC_u64;
    let mut rng = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut total_recovered = 0u64;
    let mut generation = 0u64;
    while std::time::Instant::now() < deadline {
        generation += 1;
        let fault = FaultFs::over_real();
        let service = fleet();
        let journal = Arc::new(
            Journal::open_with_vfs(journal_config(&dir), Arc::new(fault.clone()))
                .expect("soak open"),
        );
        let report = recover_into(&service, &journal).expect("soak recover");
        assert!(service.attach_journal(Arc::clone(&journal)));
        assert_eq!(
            journal.stats().recovered_frames,
            report.replayed_frames,
            "replay counter and report agree"
        );
        total_recovered = total_recovered
            .checked_add(report.replayed_frames)
            .expect("monotone cumulative recovered frames");

        // One generation: a few hundred frames with random kill/heal/probe.
        let steps = 100 + (rng() % 300) as usize;
        for i in 0..steps {
            let bytes = &frames[(rng() as usize) % frames.len()];
            service.apply_frame_bytes(bytes).expect("soak apply");
            match rng() % 23 {
                0 => fault.set_dead(true),
                1 | 2 => fault.set_dead(false),
                3 | 4 => {
                    let _ = service.probe_durability();
                }
                _ => {}
            }
            if i % 37 == 0 {
                let area = Aabb::new(Point::new(-2000.0, -2000.0), Point::new(2000.0, 2000.0));
                let _ = service.objects_in_rect(&area, i as f64);
            }
        }
        // Sometimes heal + recover cleanly before the kill; sometimes crash
        // while degraded (the un-journaled window is legitimately lost — the
        // next generation must still recover what *was* journaled).
        if rng() % 2 == 0 {
            fault.set_dead(false);
            let _ = service.probe_durability();
            let _ = journal.flush();
        }
        drop(service);
        drop(journal);
    }
    assert!(generation >= 2, "soak must complete at least two kill-and-recover loops");
    let _ = fs::remove_dir_all(&dir);
}
