//! Tuning knobs of the sharded location service.

/// Configuration of a [`crate::LocationService`].
///
/// The defaults are sized for a metropolitan fleet: enough shards that update
/// ingestion from many producer threads rarely contends, grid cells on the
/// order of a city block, and an index horizon long enough that an object
/// reporting at the paper's update rates (one message per tens of seconds to
/// minutes) only occasionally needs a lazy index refresh between updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Number of lock stripes the object store is partitioned into. Objects
    /// are assigned to shards by id hash; every shard has its own lock and its
    /// own spatial index, so no operation ever takes a global lock.
    pub shards: usize,
    /// Cell size of the per-shard moving-object grid index, metres.
    pub cell_size_m: f64,
    /// Index staleness horizon, seconds: how far past an object's last report
    /// its index bounding box stays valid before a query lazily re-grows it.
    pub horizon_s: f64,
    /// Extra growth of every index bounding box, metres. Setting this to the
    /// protocols' requested accuracy `u_s` keeps the box conservative even
    /// for prediction functions that deviate from the constant-speed path
    /// model by up to the accuracy bound.
    pub slack_m: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { shards: 16, cell_size_m: 250.0, horizon_s: 30.0, slack_m: 100.0 }
    }
}

impl ServiceConfig {
    /// A config with the given shard count and default index tuning.
    pub fn with_shards(shards: usize) -> Self {
        ServiceConfig { shards, ..ServiceConfig::default() }
    }

    /// Validates the configuration, normalising degenerate values.
    pub(crate) fn validated(mut self) -> Self {
        assert!(self.cell_size_m > 0.0, "cell size must be positive");
        assert!(self.horizon_s > 0.0, "staleness horizon must be positive");
        assert!(self.slack_m >= 0.0, "slack must be non-negative");
        self.shards = self.shards.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_shard_count_is_clamped() {
        let d = ServiceConfig::default();
        assert!(d.shards >= 1 && d.cell_size_m > 0.0 && d.horizon_s > 0.0);
        assert_eq!(ServiceConfig { shards: 0, ..d }.validated().shards, 1);
        assert_eq!(ServiceConfig::with_shards(8).shards, 8);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_is_rejected() {
        let _ = ServiceConfig { cell_size_m: 0.0, ..ServiceConfig::default() }.validated();
    }
}
