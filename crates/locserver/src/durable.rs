//! Crash recovery: open the journal, restore the newest snapshot, replay the
//! retained frame tail, then attach the journal for live appends.
//!
//! Replayed frames go through the same staleness-aware
//! [`mbdr_core::ServerTracker`] apply rules as live traffic, so frames the
//! snapshot already covers — or duplicates from an imperfect kill point — are
//! rejected exactly like reordered network deliveries would be. That is what
//! makes *restore snapshot, then replay everything retained* correct without
//! tracking a precise per-object replay cursor.
//!
//! Objects must be registered (with their predictors) on the service *before*
//! recovery runs: a snapshot records tracker state, not prediction functions.
//! Entries for unregistered objects are counted in
//! [`RecoveryReport::skipped_objects`] and dropped.

use crate::service::LocationService;
use mbdr_core::{decode_snapshot, DecodeError};
use mbdr_journal::{Journal, JournalConfig, JournalError};
use std::fmt;
use std::sync::Arc;

/// What a recovery pass found and rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal frame count the restored snapshot covered (0 if none existed).
    pub snapshot_frames: u64,
    /// Snapshot entries restored into registered trackers.
    pub restored_objects: u64,
    /// Snapshot entries dropped because their object was not registered.
    pub skipped_objects: u64,
    /// Frame records replayed from the retained log tail.
    pub replayed_frames: u64,
    /// Updates routed to registered trackers while replaying the tail.
    /// Duplicates and snapshot-covered updates still count here — the
    /// per-object staleness rules silently reject them inside the tracker —
    /// so this equals the update count of the replayed frames whenever every
    /// source is registered.
    pub replayed_updates: u64,
    /// Replayed frames that failed wire decoding. Always 0 in practice —
    /// journal records are checksummed — but a truncated-then-repaired tail
    /// is reported rather than hidden.
    pub frame_decode_errors: u64,
    /// Bytes the journal discarded during torn-tail repair at open.
    pub truncated_bytes: u64,
}

/// Typed failure modes of [`recover_and_attach`].
#[derive(Debug)]
pub enum RecoverError {
    /// The journal could not be opened, replayed, or read.
    Journal(JournalError),
    /// The snapshot blob passed its checksum but failed wire decoding.
    Snapshot(DecodeError),
    /// The service already has a journal attached; recovery must run on a
    /// freshly built service.
    AlreadyAttached,
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Journal(err) => write!(f, "journal recovery failed: {err}"),
            RecoverError::Snapshot(err) => write!(f, "snapshot decode failed: {err}"),
            RecoverError::AlreadyAttached => {
                write!(f, "service already has a journal attached")
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Journal(err) => Some(err),
            RecoverError::Snapshot(err) => Some(err),
            RecoverError::AlreadyAttached => None,
        }
    }
}

impl From<JournalError> for RecoverError {
    fn from(err: JournalError) -> Self {
        RecoverError::Journal(err)
    }
}

/// Opens the journal at `config.dir` (repairing any torn tail), restores the
/// newest valid snapshot into `service`, replays the retained frame tail, and
/// finally attaches the journal so live ingest appends to it. Returns the
/// journal handle and a [`RecoveryReport`] of what was rebuilt.
///
/// On a fresh (empty) directory this degenerates to "create the journal and
/// attach it" with an all-zero report, so servers use one code path whether
/// or not a previous life existed.
pub fn recover_and_attach(
    service: &LocationService,
    config: JournalConfig,
) -> Result<(Arc<Journal>, RecoveryReport), RecoverError> {
    let journal = Arc::new(Journal::open(config)?);
    let report = recover_into(service, &journal)?;
    if !service.attach_journal(Arc::clone(&journal)) {
        return Err(RecoverError::AlreadyAttached);
    }
    Ok((journal, report))
}

/// The restore + replay half of [`recover_and_attach`], without attaching:
/// useful when the caller owns journal lifecycle (tests, offline inspection).
pub fn recover_into(
    service: &LocationService,
    journal: &Journal,
) -> Result<RecoveryReport, RecoverError> {
    let mut report = RecoveryReport::default();
    if let Some(blob) = journal.load_snapshot()? {
        let (frames, entries) = decode_snapshot(&blob.body).map_err(RecoverError::Snapshot)?;
        let (restored, skipped) = service.restore_entries(&entries);
        report.snapshot_frames = frames;
        report.restored_objects = restored;
        report.skipped_objects = skipped;
    }
    let mut updates = 0u64;
    let mut decode_errors = 0u64;
    report.replayed_frames =
        journal.replay(|_, bytes| match service.replay_frame_bytes(bytes) {
            Ok(n) => updates += n as u64,
            Err(_) => decode_errors += 1,
        })?;
    report.replayed_updates = updates;
    report.frame_decode_errors = decode_errors;
    report.truncated_bytes = journal.stats().truncated_bytes;
    Ok(report)
}
