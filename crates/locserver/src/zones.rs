//! Zone subscriptions: enter/leave notifications for rectangular areas.
//!
//! Location-aware services often want to be told when an object enters or
//! leaves an area ("address all users that are currently inside a department
//! of a store") rather than polling. [`ZoneWatcher`] evaluates the registered
//! zones against the service's predicted positions and emits the transitions
//! since its previous evaluation.
//!
//! ## Hot-path discipline
//!
//! Zone names are interned once at registration time as `Arc<str>`: emitting
//! an event clones a pointer, never a `String`. Events also carry the dense
//! [`ZoneEvent::zone_index`] handed out by [`ZoneWatcher::add_zone`], so
//! per-poll consumers (the TCP serving layer maps zones back to wire ids on
//! every poll) can use an array lookup instead of hashing the name. The
//! evaluation itself reuses the watcher's internal query scratch and
//! membership sets — in steady state a poll allocates nothing beyond what the
//! emitted event `Vec` needs.

use crate::service::{LocationService, ObjectId, PositionReport, QueryScratch};
use mbdr_geo::Aabb;
use std::collections::HashSet;
use std::sync::Arc;

/// Whether the object entered or left the zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneEventKind {
    /// The object was outside at the previous evaluation and is now inside.
    Entered,
    /// The object was inside at the previous evaluation and is now outside.
    Left,
}

/// A zone transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneEvent {
    /// Name of the zone (as registered; a cheap `Arc` clone, not a fresh
    /// `String`).
    pub zone: Arc<str>,
    /// Dense index of the zone, as returned by [`ZoneWatcher::add_zone`] —
    /// the allocation-free way to map an event back to caller-side zone
    /// state.
    pub zone_index: usize,
    /// The object that crossed the boundary.
    pub object: ObjectId,
    /// Entered or left.
    pub kind: ZoneEventKind,
}

/// One registered zone and the objects inside it at the last evaluation.
struct Zone {
    name: Arc<str>,
    area: Aabb,
    inside: HashSet<ObjectId>,
}

/// Watches a set of named rectangular zones over a [`LocationService`].
pub struct ZoneWatcher {
    zones: Vec<Zone>,
    /// Reusable rect-query scratch (candidate keys + result buffer).
    scratch: QueryScratch,
    reports: Vec<PositionReport>,
    /// Reusable membership scratch, swapped with a zone's `inside` set per
    /// evaluation.
    now_inside: HashSet<ObjectId>,
}

impl Default for ZoneWatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ZoneWatcher {
    /// Creates a watcher with no zones.
    pub fn new() -> Self {
        ZoneWatcher {
            zones: Vec::new(),
            scratch: QueryScratch::default(),
            reports: Vec::new(),
            now_inside: HashSet::new(),
        }
    }

    /// Registers a named zone and returns its dense index (echoed in every
    /// event as [`ZoneEvent::zone_index`]). Names need not be unique, but
    /// distinct names make the emitted events easier to interpret.
    pub fn add_zone(&mut self, name: impl Into<Arc<str>>, area: Aabb) -> usize {
        self.zones.push(Zone { name: name.into(), area, inside: HashSet::new() });
        self.zones.len() - 1
    }

    /// Number of registered zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Immediately removes `object` from every zone's membership set,
    /// returning one `Left` event per zone it was inside.
    ///
    /// Call this when an object is deregistered from the service: `evaluate`
    /// does emit `Left` for objects that disappeared, but only at the next
    /// evaluation — and if the object re-registers and re-enters the zone
    /// before then, the disappearance is invisible to `evaluate` and the
    /// membership would silently carry over. Purging on deregistration closes
    /// that window (and guarantees the `inside` sets never retain departed
    /// objects).
    pub fn purge_object(&mut self, object: ObjectId) -> Vec<ZoneEvent> {
        let mut events = Vec::new();
        for (index, zone) in self.zones.iter_mut().enumerate() {
            if zone.inside.remove(&object) {
                events.push(ZoneEvent {
                    zone: Arc::clone(&zone.name),
                    zone_index: index,
                    object,
                    kind: ZoneEventKind::Left,
                });
            }
        }
        events
    }

    /// Evaluates all zones at time `t` and returns the transitions since the
    /// previous evaluation. The first evaluation reports an `Entered` event
    /// for every object already inside a zone.
    ///
    /// An object that disappeared from the service (deregistered, or never
    /// reported again) is reported as `Left` because it no longer shows up in
    /// the range query — so zone membership cannot leak past an evaluation.
    /// For the stronger guarantee (a deregistration immediately followed by a
    /// re-registration inside the zone still produces `Left` + `Entered`),
    /// call [`ZoneWatcher::purge_object`] at deregistration time.
    pub fn evaluate(&mut self, service: &LocationService, t: f64) -> Vec<ZoneEvent> {
        let mut events = Vec::new();
        self.evaluate_into(service, t, &mut events);
        events
    }

    /// Like [`ZoneWatcher::evaluate`], but appends the transitions to a
    /// caller-provided buffer (cleared first) — the reusable-buffer form the
    /// serving layer polls with.
    pub fn evaluate_into(
        &mut self,
        service: &LocationService,
        t: f64,
        events: &mut Vec<ZoneEvent>,
    ) {
        events.clear();
        for (index, zone) in self.zones.iter_mut().enumerate() {
            service.objects_in_rect_into(&zone.area, t, &mut self.scratch, &mut self.reports);
            self.now_inside.clear();
            self.now_inside.extend(self.reports.iter().map(|r| r.object));
            // The reports are sorted by id, so `Entered` events come out in
            // ascending object order without an extra sort; `Left` events are
            // collected and sorted (the membership set iterates hash-ordered).
            for report in &self.reports {
                if !zone.inside.contains(&report.object) {
                    events.push(ZoneEvent {
                        zone: Arc::clone(&zone.name),
                        zone_index: index,
                        object: report.object,
                        kind: ZoneEventKind::Entered,
                    });
                }
            }
            let left_start = events.len();
            for &object in zone.inside.iter() {
                if !self.now_inside.contains(&object) {
                    events.push(ZoneEvent {
                        zone: Arc::clone(&zone.name),
                        zone_index: index,
                        object,
                        kind: ZoneEventKind::Left,
                    });
                }
            }
            events[left_start..].sort_unstable_by_key(|e| e.object);
            std::mem::swap(&mut zone.inside, &mut self.now_inside);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_core::{LinearPredictor, ObjectState, Update, UpdateKind};
    use mbdr_geo::Point;
    use std::sync::Arc;

    fn moving_east_service() -> LocationService {
        let s = LocationService::new();
        s.register(ObjectId(1), Arc::new(LinearPredictor));
        // Heading east at 10 m/s from x = 0 at t = 0.
        s.apply_update(
            ObjectId(1),
            &Update {
                sequence: 0,
                state: ObjectState::basic(
                    Point::new(0.0, 0.0),
                    10.0,
                    std::f64::consts::FRAC_PI_2,
                    0.0,
                ),
                kind: UpdateKind::Initial,
            },
        );
        s
    }

    #[test]
    fn object_entering_and_leaving_a_zone_is_reported_once_each() {
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        let index =
            watcher.add_zone("mall", Aabb::new(Point::new(100.0, -50.0), Point::new(200.0, 50.0)));
        assert_eq!(index, 0);
        assert_eq!(watcher.zone_count(), 1);

        // t = 5 s: at x = 50, outside.
        assert!(watcher.evaluate(&service, 5.0).is_empty());
        // t = 12 s: at x = 120, inside → one Entered event.
        let events = watcher.evaluate(&service, 12.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Entered);
        assert_eq!(&*events[0].zone, "mall");
        assert_eq!(events[0].zone_index, 0);
        // Still inside: no repeated event.
        assert!(watcher.evaluate(&service, 15.0).is_empty());
        // t = 25 s: at x = 250, outside → one Left event.
        let events = watcher.evaluate(&service, 25.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Left);
    }

    #[test]
    fn deregistered_object_emits_left_and_does_not_linger() {
        // Regression test: an object that disappears from the service must
        // not stay in a zone's `inside` set without ever emitting `Left`.
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("mall", Aabb::new(Point::new(100.0, -50.0), Point::new(200.0, 50.0)));
        // t = 12 s: inside → Entered.
        let events = watcher.evaluate(&service, 12.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Entered);
        // The object vanishes from the service entirely.
        assert!(service.deregister(ObjectId(1)));
        // Still at a time where it *would* be inside if it existed: the next
        // evaluation must emit Left, and the membership set must be empty.
        let events = watcher.evaluate(&service, 13.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Left);
        assert_eq!(events[0].object, ObjectId(1));
        assert!(watcher.evaluate(&service, 14.0).is_empty(), "no repeated Left");
    }

    #[test]
    fn purge_emits_left_immediately_and_enables_reentry_detection() {
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("mall", Aabb::new(Point::new(100.0, -50.0), Point::new(200.0, 50.0)));
        assert_eq!(watcher.evaluate(&service, 12.0).len(), 1, "Entered");
        // Deregister + purge: Left is reported synchronously, without waiting
        // for the next evaluation.
        service.deregister(ObjectId(1));
        let events = watcher.purge_object(ObjectId(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Left);
        assert_eq!(events[0].zone_index, 0);
        assert!(watcher.purge_object(ObjectId(1)).is_empty(), "purge is idempotent");
        // The object re-registers and reports from inside the zone: without
        // the purge this would be invisible (membership carried over); with it
        // the watcher reports a fresh Entered.
        service.register(ObjectId(1), Arc::new(LinearPredictor));
        service.apply_update(
            ObjectId(1),
            &Update {
                sequence: 0,
                state: ObjectState::basic(Point::new(150.0, 0.0), 0.0, 0.0, 13.0),
                kind: UpdateKind::Initial,
            },
        );
        let events = watcher.evaluate(&service, 13.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Entered);
    }

    #[test]
    fn multiple_zones_are_evaluated_independently() {
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("west", Aabb::new(Point::new(-10.0, -10.0), Point::new(60.0, 10.0)));
        let east =
            watcher.add_zone("east", Aabb::new(Point::new(140.0, -10.0), Point::new(260.0, 10.0)));
        assert_eq!(east, 1);
        // t = 0: inside "west" only.
        let events = watcher.evaluate(&service, 0.0);
        assert_eq!(events.len(), 1);
        assert_eq!(&*events[0].zone, "west");
        // t = 20: left "west", entered "east".
        let events = watcher.evaluate(&service, 20.0);
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .any(|e| &*e.zone == "west" && e.zone_index == 0 && e.kind == ZoneEventKind::Left));
        assert!(events
            .iter()
            .any(|e| &*e.zone == "east" && e.zone_index == 1 && e.kind == ZoneEventKind::Entered));
    }

    #[test]
    fn evaluate_into_reuses_the_event_buffer() {
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("mall", Aabb::new(Point::new(100.0, -50.0), Point::new(200.0, 50.0)));
        let mut events = Vec::new();
        watcher.evaluate_into(&service, 12.0, &mut events);
        assert_eq!(events.len(), 1);
        // A later empty evaluation clears the stale contents.
        watcher.evaluate_into(&service, 15.0, &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn many_entered_events_come_out_in_ascending_object_order() {
        let service = LocationService::new();
        for id in [5u64, 1, 9, 3] {
            service.register(ObjectId(id), Arc::new(LinearPredictor));
            service.apply_update(
                ObjectId(id),
                &Update {
                    sequence: 0,
                    state: ObjectState::basic(Point::new(id as f64, 0.0), 0.0, 0.0, 0.0),
                    kind: UpdateKind::Initial,
                },
            );
        }
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("all", Aabb::new(Point::new(-1.0, -1.0), Point::new(20.0, 1.0)));
        let entered: Vec<u64> =
            watcher.evaluate(&service, 0.0).iter().map(|e| e.object.0).collect();
        assert_eq!(entered, vec![1, 3, 5, 9]);
        // Everyone deregisters: Left events are sorted too.
        for id in [5u64, 1, 9, 3] {
            service.deregister(ObjectId(id));
        }
        let left: Vec<u64> = watcher.evaluate(&service, 1.0).iter().map(|e| e.object.0).collect();
        assert_eq!(left, vec![1, 3, 5, 9]);
    }
}
