//! Zone subscriptions: enter/leave notifications for rectangular areas.
//!
//! Location-aware services often want to be told when an object enters or
//! leaves an area ("address all users that are currently inside a department
//! of a store") rather than polling. [`ZoneWatcher`] evaluates the registered
//! zones against the service's predicted positions and emits the transitions
//! since its previous evaluation.

use crate::service::{LocationService, ObjectId};
use mbdr_geo::Aabb;
use std::collections::{HashMap, HashSet};

/// Whether the object entered or left the zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneEventKind {
    /// The object was outside at the previous evaluation and is now inside.
    Entered,
    /// The object was inside at the previous evaluation and is now outside.
    Left,
}

/// A zone transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneEvent {
    /// Name of the zone (as registered).
    pub zone: String,
    /// The object that crossed the boundary.
    pub object: ObjectId,
    /// Entered or left.
    pub kind: ZoneEventKind,
}

/// Watches a set of named rectangular zones over a [`LocationService`].
pub struct ZoneWatcher {
    zones: Vec<(String, Aabb)>,
    /// Objects currently inside each zone (by zone index).
    inside: HashMap<usize, HashSet<ObjectId>>,
}

impl Default for ZoneWatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ZoneWatcher {
    /// Creates a watcher with no zones.
    pub fn new() -> Self {
        ZoneWatcher { zones: Vec::new(), inside: HashMap::new() }
    }

    /// Registers a named zone. Names need not be unique, but distinct names
    /// make the emitted events easier to interpret.
    pub fn add_zone(&mut self, name: impl Into<String>, area: Aabb) {
        self.zones.push((name.into(), area));
    }

    /// Number of registered zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Immediately removes `object` from every zone's membership set,
    /// returning one `Left` event per zone it was inside.
    ///
    /// Call this when an object is deregistered from the service: `evaluate`
    /// does emit `Left` for objects that disappeared, but only at the next
    /// evaluation — and if the object re-registers and re-enters the zone
    /// before then, the disappearance is invisible to `evaluate` and the
    /// membership would silently carry over. Purging on deregistration closes
    /// that window (and guarantees the `inside` sets never retain departed
    /// objects).
    pub fn purge_object(&mut self, object: ObjectId) -> Vec<ZoneEvent> {
        let mut events = Vec::new();
        for (index, (name, _)) in self.zones.iter().enumerate() {
            if let Some(inside) = self.inside.get_mut(&index) {
                if inside.remove(&object) {
                    events.push(ZoneEvent {
                        zone: name.clone(),
                        object,
                        kind: ZoneEventKind::Left,
                    });
                }
            }
        }
        events
    }

    /// Evaluates all zones at time `t` and returns the transitions since the
    /// previous evaluation. The first evaluation reports an `Entered` event
    /// for every object already inside a zone.
    ///
    /// An object that disappeared from the service (deregistered, or never
    /// reported again) is reported as `Left` because it no longer shows up in
    /// the range query — so zone membership cannot leak past an evaluation.
    /// For the stronger guarantee (a deregistration immediately followed by a
    /// re-registration inside the zone still produces `Left` + `Entered`),
    /// call [`ZoneWatcher::purge_object`] at deregistration time.
    pub fn evaluate(&mut self, service: &LocationService, t: f64) -> Vec<ZoneEvent> {
        let mut events = Vec::new();
        for (index, (name, area)) in self.zones.iter().enumerate() {
            let now_inside: HashSet<ObjectId> =
                service.objects_in_rect(area, t).into_iter().map(|r| r.object).collect();
            let previously = self.inside.entry(index).or_default();
            let mut entered: Vec<ObjectId> = now_inside.difference(previously).copied().collect();
            let mut left: Vec<ObjectId> = previously.difference(&now_inside).copied().collect();
            entered.sort();
            left.sort();
            for object in entered {
                events.push(ZoneEvent { zone: name.clone(), object, kind: ZoneEventKind::Entered });
            }
            for object in left {
                events.push(ZoneEvent { zone: name.clone(), object, kind: ZoneEventKind::Left });
            }
            *previously = now_inside;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_core::{LinearPredictor, ObjectState, Update, UpdateKind};
    use mbdr_geo::Point;
    use std::sync::Arc;

    fn moving_east_service() -> LocationService {
        let s = LocationService::new();
        s.register(ObjectId(1), Arc::new(LinearPredictor));
        // Heading east at 10 m/s from x = 0 at t = 0.
        s.apply_update(
            ObjectId(1),
            &Update {
                sequence: 0,
                state: ObjectState::basic(
                    Point::new(0.0, 0.0),
                    10.0,
                    std::f64::consts::FRAC_PI_2,
                    0.0,
                ),
                kind: UpdateKind::Initial,
            },
        );
        s
    }

    #[test]
    fn object_entering_and_leaving_a_zone_is_reported_once_each() {
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("mall", Aabb::new(Point::new(100.0, -50.0), Point::new(200.0, 50.0)));
        assert_eq!(watcher.zone_count(), 1);

        // t = 5 s: at x = 50, outside.
        assert!(watcher.evaluate(&service, 5.0).is_empty());
        // t = 12 s: at x = 120, inside → one Entered event.
        let events = watcher.evaluate(&service, 12.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Entered);
        assert_eq!(events[0].zone, "mall");
        // Still inside: no repeated event.
        assert!(watcher.evaluate(&service, 15.0).is_empty());
        // t = 25 s: at x = 250, outside → one Left event.
        let events = watcher.evaluate(&service, 25.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Left);
    }

    #[test]
    fn deregistered_object_emits_left_and_does_not_linger() {
        // Regression test: an object that disappears from the service must
        // not stay in a zone's `inside` set without ever emitting `Left`.
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("mall", Aabb::new(Point::new(100.0, -50.0), Point::new(200.0, 50.0)));
        // t = 12 s: inside → Entered.
        let events = watcher.evaluate(&service, 12.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Entered);
        // The object vanishes from the service entirely.
        assert!(service.deregister(ObjectId(1)));
        // Still at a time where it *would* be inside if it existed: the next
        // evaluation must emit Left, and the membership set must be empty.
        let events = watcher.evaluate(&service, 13.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Left);
        assert_eq!(events[0].object, ObjectId(1));
        assert!(watcher.evaluate(&service, 14.0).is_empty(), "no repeated Left");
    }

    #[test]
    fn purge_emits_left_immediately_and_enables_reentry_detection() {
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("mall", Aabb::new(Point::new(100.0, -50.0), Point::new(200.0, 50.0)));
        assert_eq!(watcher.evaluate(&service, 12.0).len(), 1, "Entered");
        // Deregister + purge: Left is reported synchronously, without waiting
        // for the next evaluation.
        service.deregister(ObjectId(1));
        let events = watcher.purge_object(ObjectId(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Left);
        assert!(watcher.purge_object(ObjectId(1)).is_empty(), "purge is idempotent");
        // The object re-registers and reports from inside the zone: without
        // the purge this would be invisible (membership carried over); with it
        // the watcher reports a fresh Entered.
        service.register(ObjectId(1), Arc::new(LinearPredictor));
        service.apply_update(
            ObjectId(1),
            &Update {
                sequence: 0,
                state: ObjectState::basic(Point::new(150.0, 0.0), 0.0, 0.0, 13.0),
                kind: UpdateKind::Initial,
            },
        );
        let events = watcher.evaluate(&service, 13.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Entered);
    }

    #[test]
    fn multiple_zones_are_evaluated_independently() {
        let service = moving_east_service();
        let mut watcher = ZoneWatcher::new();
        watcher.add_zone("west", Aabb::new(Point::new(-10.0, -10.0), Point::new(60.0, 10.0)));
        watcher.add_zone("east", Aabb::new(Point::new(140.0, -10.0), Point::new(260.0, 10.0)));
        // t = 0: inside "west" only.
        let events = watcher.evaluate(&service, 0.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].zone, "west");
        // t = 20: left "west", entered "east".
        let events = watcher.evaluate(&service, 20.0);
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.zone == "west" && e.kind == ZoneEventKind::Left));
        assert!(events.iter().any(|e| e.zone == "east" && e.kind == ZoneEventKind::Entered));
    }
}
