//! The degraded-mode durability state machine.
//!
//! A location server would rather serve stale-bounded answers than refuse
//! them: when the write-ahead journal's disk starts failing, the service
//! keeps applying frames to the in-memory trackers and only *flags* the lost
//! durability instead of erroring every ingest. `DurabilityControl` is the
//! small lock-free state block that tracks which regime the service is in:
//!
//! * [`DurabilityState::Durable`] — every applied frame is in the journal.
//! * [`DurabilityState::Degraded`] — a journal append failed persistently;
//!   serving continues, but applied frames are counted in
//!   `degraded_frames` instead of journaled. A crash in this window loses
//!   exactly those frames (the paper's dead-reckoning staleness bounds still
//!   hold for everything the server *answers* — only replay completeness is
//!   at risk).
//! * [`DurabilityState::Recovered`] — a re-probe
//!   ([`crate::LocationService::probe_durability`]) found the disk writable
//!   again, repaired the journal tail ([`mbdr_journal::Journal::repair_and_sync`])
//!   and installed a forced snapshot of the *current* tracker state, which
//!   re-establishes the durability floor above the un-journaled window.
//!   `Recovered` journals appends exactly like `Durable`; it is a distinct
//!   state so operators can see that a degradation happened and healed.
//!
//! Transitions are monotone within one incident (`Durable`/`Recovered` →
//! `Degraded` → `Recovered`) but the machine is re-entrant: a recovered
//! service that hits the disk again re-degrades, and both transition
//! counters keep counting. All fields are relaxed atomics — the state read
//! on the ingest hot path is a single `AtomicU8` load.

use mbdr_core::DurabilityState;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Live durability state + counters for one [`crate::LocationService`].
///
/// Updated from the ingest path ([`DurabilityControl::enter_degraded`],
/// [`DurabilityControl::note_degraded_frame`]) and the re-probe path
/// ([`DurabilityControl::note_probe_attempt`],
/// [`DurabilityControl::mark_recovered`]); read via
/// [`DurabilityControl::snapshot`].
#[derive(Debug, Default)]
pub(crate) struct DurabilityControl {
    /// Current [`DurabilityState`], stored as its wire byte (see
    /// [`DurabilityState::to_wire`]) so the hot-path check is one atomic load.
    state: AtomicU8,
    /// Frames applied to trackers *without* being journaled while degraded —
    /// the exact count of applies a crash in the degraded window would lose.
    degraded_frames: AtomicU64,
    /// Durable/Recovered → Degraded transitions (distinct disk incidents).
    degraded_transitions: AtomicU64,
    /// Degraded → Recovered transitions (healed incidents).
    recovered_transitions: AtomicU64,
    /// Re-probe attempts made while degraded (successful or not).
    probe_attempts: AtomicU64,
}

impl DurabilityControl {
    /// The current state.
    pub(crate) fn state(&self) -> DurabilityState {
        // Only `to_wire` values are ever stored, so the fallback is dead code
        // kept for panic-freedom.
        DurabilityState::from_wire(self.state.load(Ordering::Relaxed))
            .unwrap_or(DurabilityState::Degraded)
    }

    /// Is the service currently in the degraded (non-journaling) regime?
    /// Single relaxed load — cheap enough for the ingest hot path.
    pub(crate) fn is_degraded(&self) -> bool {
        self.state.load(Ordering::Relaxed) == DurabilityState::Degraded.to_wire()
    }

    /// Flips to [`DurabilityState::Degraded`]. Counts a transition only when
    /// the previous state was not already degraded, so concurrent shard
    /// failures in one incident count once.
    pub(crate) fn enter_degraded(&self) {
        let prev = self.state.swap(DurabilityState::Degraded.to_wire(), Ordering::Relaxed);
        if prev != DurabilityState::Degraded.to_wire() {
            self.degraded_transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one frame applied without journaling while degraded.
    pub(crate) fn note_degraded_frame(&self) {
        self.degraded_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one re-probe attempt.
    pub(crate) fn note_probe_attempt(&self) {
        self.probe_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Flips to [`DurabilityState::Recovered`] after a successful re-probe.
    /// Counts a transition only when the previous state was degraded.
    pub(crate) fn mark_recovered(&self) {
        let prev = self.state.swap(DurabilityState::Recovered.to_wire(), Ordering::Relaxed);
        if prev == DurabilityState::Degraded.to_wire() {
            self.recovered_transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies state + counters into a plain-value snapshot.
    pub(crate) fn snapshot(&self) -> DurabilityStatsSnapshot {
        DurabilityStatsSnapshot {
            state: self.state(),
            degraded_frames: self.degraded_frames.load(Ordering::Relaxed),
            degraded_transitions: self.degraded_transitions.load(Ordering::Relaxed),
            recovered_transitions: self.recovered_transitions.load(Ordering::Relaxed),
            probe_attempts: self.probe_attempts.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a service's `DurabilityControl` (surfaced through
/// `mbdr-net`'s `ServerStatsSnapshot`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityStatsSnapshot {
    /// Current durability regime.
    pub state: DurabilityState,
    /// Frames applied without journaling while degraded.
    pub degraded_frames: u64,
    /// Distinct Durable/Recovered → Degraded incidents.
    pub degraded_transitions: u64,
    /// Degraded → Recovered healings.
    pub recovered_transitions: u64,
    /// Re-probe attempts while degraded.
    pub probe_attempts: u64,
}

impl Default for DurabilityStatsSnapshot {
    fn default() -> Self {
        DurabilityStatsSnapshot {
            state: DurabilityState::Durable,
            degraded_frames: 0,
            degraded_transitions: 0,
            recovered_transitions: 0,
            probe_attempts: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_count_incidents_not_calls() {
        let control = DurabilityControl::default();
        assert_eq!(control.state(), DurabilityState::Durable);
        assert!(!control.is_degraded());

        control.enter_degraded();
        control.enter_degraded(); // same incident, counted once
        assert!(control.is_degraded());
        assert_eq!(control.snapshot().degraded_transitions, 1);

        control.note_degraded_frame();
        control.note_degraded_frame();
        control.note_probe_attempt();
        control.mark_recovered();
        control.mark_recovered(); // already recovered: no second healing
        assert_eq!(control.state(), DurabilityState::Recovered);
        assert!(!control.is_degraded());

        // Re-entrant: a recovered service can degrade again.
        control.enter_degraded();
        control.mark_recovered();
        let snap = control.snapshot();
        assert_eq!(snap.state, DurabilityState::Recovered);
        assert_eq!(snap.degraded_frames, 2);
        assert_eq!(snap.degraded_transitions, 2);
        assert_eq!(snap.recovered_transitions, 2);
        assert_eq!(snap.probe_attempts, 1);
    }

    #[test]
    fn default_snapshot_is_durable_and_zeroed() {
        assert_eq!(DurabilityStatsSnapshot::default().state, DurabilityState::Durable);
        assert_eq!(DurabilityControl::default().snapshot(), DurabilityStatsSnapshot::default());
    }
}
