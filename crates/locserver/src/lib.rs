//! # mbdr-locserver — the sharded location service
//!
//! The paper's motivation is a location service that "provides, for example,
//! the functionality to find the nearest taxi cab depending on the user's
//! current location or to address all users that are currently inside a
//! department of a store". This crate is that service, built on the
//! server-side trackers of `mbdr-core` and scaled for whole fleets:
//!
//! * [`LocationService`] partitions the object store into
//!   [`ServiceConfig::shards`] lock stripes (objects assigned by id hash).
//!   Update ingestion takes exactly one shard's write lock; queries take
//!   shard read locks one at a time — no operation ever holds a global lock.
//! * Each shard maintains a [`mbdr_spatial::MovingIndex`] over its objects,
//!   updated incrementally on every accepted update, so
//!   [`LocationService::objects_in_rect`] (range query) and
//!   [`LocationService::nearest_objects`] (k-nearest, "nearest taxi") are
//!   **index-pruned** instead of full scans — while returning exactly what a
//!   full scan over every tracker would.
//! * position queries ([`LocationService::position_of`]) extrapolate with the
//!   object's own prediction function, exactly like the per-object server in
//!   the update protocol; [`zones::ZoneWatcher`] adds enter/leave
//!   subscriptions on top of the range query.
//!
//! ## The staleness-aware index invariant
//!
//! The spatial index stores, per object, a bounding box plus a validity
//! deadline with the invariant: *for every query time `t` up to the deadline,
//! the object's predicted position `pred(s, t)` lies inside the box*. It
//! holds because every prediction function is speed-bounded —
//! `|pred(s, t) − s.position| ≤ s.speed · (t − s.timestamp)` (linear and
//! map-based predictions travel at the reported speed; arc predictions follow
//! a circle at it; static ones do not move) — so a box centred on the last
//! reported position with radius `speed · (deadline − s.timestamp) + slack`
//! is conservative, where the [`ServiceConfig::slack_m`] growth (set it to
//! the protocols' requested accuracy `u_s`) additionally absorbs prediction
//! functions that deviate from the constant-speed model by up to the accuracy
//! bound. Between updates the box simply stands; a query arriving *past* the
//! deadline lazily re-grows the box (still anchored at the reported
//! position), so the entry of a silent mover widens over time — matching the
//! server's genuine uncertainty — while frequently-updating objects keep
//! tight boxes. Conservative boxes can only ever add *candidates*, which the
//! exact per-object prediction then filters, so query answers are bit-for-bit
//! identical to the pre-shard full-scan implementation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod durability;
pub mod durable;
pub mod service;
mod shard;
pub mod zones;

pub use config::ServiceConfig;
pub use durability::DurabilityStatsSnapshot;
pub use durable::{recover_and_attach, RecoverError, RecoveryReport};
pub use service::{IndexStats, LocationService, ObjectId, PositionReport, QueryScratch};
pub use zones::{ZoneEvent, ZoneEventKind, ZoneWatcher};
