//! # mbdr-locserver — the location service
//!
//! The paper's motivation is a location service that "provides, for example,
//! the functionality to find the nearest taxi cab depending on the user's
//! current location or to address all users that are currently inside a
//! department of a store". This crate is that service, built on the
//! server-side trackers of `mbdr-core`:
//!
//! * [`LocationService`] stores one [`mbdr_core::ServerTracker`] per tracked
//!   object behind a [`parking_lot::RwLock`], so update ingestion (writes) and
//!   position queries (reads) can proceed concurrently from many threads;
//! * position queries ([`LocationService::position_of`]) extrapolate with the
//!   object's own prediction function, exactly like the per-object server in
//!   the update protocol;
//! * spatial queries answer the motivating use cases: [`LocationService::objects_in_rect`]
//!   (range query), [`LocationService::nearest_objects`] (k-nearest-neighbour,
//!   "nearest taxi"), and [`zones::ZoneWatcher`] (enter/leave subscriptions).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod service;
pub mod zones;

pub use service::{LocationService, ObjectId, PositionReport};
pub use zones::{ZoneEvent, ZoneEventKind, ZoneWatcher};
