//! One lock stripe of the sharded location store.
//!
//! A shard owns the trackers of the objects hashed to it plus a
//! [`MovingIndex`] over conservative bounding boxes of their predicted
//! positions. The index invariant (see the crate docs for the full argument):
//!
//! > For every object with reported state `s` and index entry `(bbox,
//! > valid_until)`, and for every query time `t ≤ valid_until`:
//! > `pred(s, t) ∈ bbox`.
//!
//! The invariant holds because every prediction function in `mbdr-core` is
//! speed-bounded — `|pred(s, t) − s.position| ≤ s.speed · (t − s.timestamp)`
//! — so a box centred on the reported position with radius
//! `speed · (valid_until − s.timestamp) + slack` contains every prediction up
//! to `valid_until` (and, since predictions clamp to the reported position
//! for `t < s.timestamp`, every earlier one too). Stationary objects get an
//! infinite validity. When a query arrives past an entry's `valid_until`, the
//! entry is *lazily re-grown*: `valid_until` is pushed past the query time
//! and the radius recomputed, still anchored at the reported position — the
//! box of a silent mover keeps growing, which is exactly the server's real
//! uncertainty about it.
//!
//! ## Storage and query layout
//!
//! Trackers live in a dense slot arena (`slots[slot_id]`); the
//! `ObjectId → slot` hash map is consulted on ingest and point lookup only.
//! The spatial index is keyed by the small `u32` slot id, so resolving a
//! query candidate is a direct array index — no hashing on the query path.
//! Range and nearest collection run as batch kernels in three passes over
//! struct-of-arrays scratch: (1) walk the index cells for candidate slots
//! (deduplicated by a generation-stamped seen mask), (2) predict every
//! candidate into contiguous position arrays, (3) one linear
//! containment/distance pass over those arrays. With warm buffers all three
//! passes are allocation-free.

use crate::config::ServiceConfig;
use crate::service::{ObjectId, PositionReport};
use mbdr_core::wire::snapshot::SnapshotEntry;
use mbdr_core::{Predictor, ServerTracker, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_spatial::{MovingIndex, SeenScratch, SpatialIndex};
use parking_lot::RwLock;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An object tracked by one shard, stored in the dense slot arena.
struct TrackedSlot {
    /// The object occupying this slot (meaningful only while the slot is
    /// live, i.e. referenced by the id map).
    object: ObjectId,
    tracker: ServerTracker,
    /// Bumped every time the index entry is (re)written *and* whenever the
    /// slot's occupant changes, monotonically over the slot's whole lifetime
    /// — so the expiry heap can use lazy deletion and a recycled slot never
    /// matches a stale heap entry.
    generation: u64,
    /// Query times up to this instant are covered by the index entry.
    valid_until: f64,
}

/// A pending index-entry expiry (min-heap by time via `Reverse`).
#[derive(Debug, PartialEq)]
struct Expiry {
    at: f64,
    slot: u32,
    generation: u64,
}

impl Eq for Expiry {}

impl Ord for Expiry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then(self.slot.cmp(&other.slot))
            .then(self.generation.cmp(&other.generation))
    }
}

impl PartialOrd for Expiry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-reader buffers for the shard batch query kernels: the
/// seen-mask for candidate dedup, the candidate slot list, and the
/// struct-of-arrays prediction output the filter passes run over.
#[derive(Default)]
pub(crate) struct CandidateScratch {
    seen: SeenScratch,
    cand: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ages: Vec<f64>,
    objects: Vec<ObjectId>,
}

impl CandidateScratch {
    /// Cumulative `(candidates inspected, unique candidates)` across every
    /// query served with this scratch (see `SeenScratch::dedup_counters`).
    pub(crate) fn dedup_counters(&self) -> (u64, u64) {
        self.seen.dedup_counters()
    }
}

/// Mutable state of one shard, guarded by the shard's lock.
pub(crate) struct ShardState {
    config: ServiceConfig,
    /// Object id → slot in `slots`. Touched on ingest and point lookup;
    /// queries resolve candidates through the dense arena instead.
    by_id: HashMap<ObjectId, u32>,
    slots: Vec<TrackedSlot>,
    free_slots: Vec<u32>,
    /// Spatial index keyed by slot id.
    index: MovingIndex<u32>,
    expiries: BinaryHeap<Reverse<Expiry>>,
}

impl ShardState {
    fn new(config: ServiceConfig) -> Self {
        ShardState {
            config,
            by_id: HashMap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            index: MovingIndex::new(config.cell_size_m),
            expiries: BinaryHeap::new(),
        }
    }

    pub(crate) fn object_count(&self) -> usize {
        self.by_id.len()
    }

    pub(crate) fn indexed_count(&self) -> usize {
        self.index.len()
    }

    pub(crate) fn total_updates(&self) -> u64 {
        self.by_id.values().map(|&s| self.slots[s as usize].tracker.updates_applied()).sum()
    }

    /// `(occupied cells, max cell occupancy)` of this shard's index.
    pub(crate) fn index_occupancy(&self) -> (usize, usize) {
        (self.index.occupied_cells(), self.index.max_cell_occupancy())
    }

    pub(crate) fn register(&mut self, object: ObjectId, predictor: Arc<dyn Predictor>) {
        match self.by_id.get(&object).copied() {
            Some(slot) => {
                // Re-registration: fresh tracker, same slot. The generation
                // bump invalidates any pending expiries for the old tracker.
                self.index.remove(&slot);
                let tracked = &mut self.slots[slot as usize];
                tracked.tracker = ServerTracker::new(predictor);
                tracked.generation += 1;
                tracked.valid_until = f64::INFINITY;
            }
            None => {
                let slot = match self.free_slots.pop() {
                    Some(slot) => {
                        let tracked = &mut self.slots[slot as usize];
                        tracked.object = object;
                        tracked.tracker = ServerTracker::new(predictor);
                        // Keep the generation monotone across occupants so
                        // heap entries of previous occupants never match.
                        tracked.generation += 1;
                        tracked.valid_until = f64::INFINITY;
                        slot
                    }
                    None => {
                        let slot = self.slots.len() as u32;
                        self.slots.push(TrackedSlot {
                            object,
                            tracker: ServerTracker::new(predictor),
                            generation: 0,
                            valid_until: f64::INFINITY,
                        });
                        slot
                    }
                };
                self.by_id.insert(object, slot);
            }
        }
    }

    pub(crate) fn deregister(&mut self, object: ObjectId) -> bool {
        let Some(slot) = self.by_id.remove(&object) else {
            return false;
        };
        self.index.remove(&slot);
        // Invalidate pending expiries for this slot before recycling it.
        self.slots[slot as usize].generation += 1;
        self.free_slots.push(slot);
        self.prune_superseded_expiries();
        true
    }

    pub(crate) fn apply_update(&mut self, object: ObjectId, update: &Update) -> bool {
        let Some(&slot) = self.by_id.get(&object) else {
            return false;
        };
        let tracked = &mut self.slots[slot as usize];
        let before = tracked.tracker.updates_applied();
        tracked.tracker.apply(update);
        if tracked.tracker.updates_applied() != before {
            // The update was accepted (not a stale sequence number): re-anchor
            // the index entry on the new reported state.
            Self::reindex(&self.config, &mut self.index, &mut self.expiries, slot, tracked, None);
        }
        self.prune_superseded_expiries();
        true
    }

    /// Reinstates one object's tracker state from a durability snapshot and
    /// re-anchors its index entry, mirroring the accepted-update path of
    /// [`ShardState::apply_update`] (same `reindex` call, so the rebuilt
    /// spatial entry is bit-identical to the one an uninterrupted server
    /// holds). Returns `false` when the object is not registered — recovery
    /// cannot invent a tracker because it would not know the predictor.
    pub(crate) fn restore_object(
        &mut self,
        object: ObjectId,
        update: &Update,
        updates_applied: u64,
        bytes_received: u64,
    ) -> bool {
        let Some(&slot) = self.by_id.get(&object) else {
            return false;
        };
        let tracked = &mut self.slots[slot as usize];
        tracked.tracker.restore(update, updates_applied, bytes_received);
        if tracked.tracker.last_state().is_some() {
            Self::reindex(&self.config, &mut self.index, &mut self.expiries, slot, tracked, None);
        }
        self.prune_superseded_expiries();
        true
    }

    /// Appends one durability-snapshot entry per object with applied state to
    /// `out` (objects still waiting for their first update carry no state and
    /// are skipped — recovery re-registers them empty, exactly as they were).
    /// Iteration order is arbitrary; the caller sorts.
    pub(crate) fn snapshot_entries_into(&self, out: &mut Vec<SnapshotEntry>) {
        for (&object, &slot) in &self.by_id {
            let tracked = &self.slots[slot as usize];
            let tracker = &tracked.tracker;
            let (Some(state), Some(sequence)) = (tracker.last_state(), tracker.last_sequence())
            else {
                continue;
            };
            out.push(SnapshotEntry {
                object: object.0,
                updates_applied: tracker.updates_applied(),
                bytes_received: tracker.bytes_received(),
                update: Update {
                    sequence,
                    state: *state,
                    // The tracker does not retain the original update kind and
                    // nothing downstream of `apply` depends on it; `Initial`
                    // is the canonical choice for a state that (re)starts a
                    // tracker.
                    kind: UpdateKind::Initial,
                },
            });
        }
    }

    /// Drops lazily-deleted entries from the top of the expiry heap (entries
    /// whose slot was re-anchored, deregistered or recycled since they were
    /// pushed). Called on the ingest path, which already holds the write
    /// lock, so an ingest-heavy but rarely-queried service does not
    /// accumulate one heap entry per update: for a frequently-updating object
    /// the superseded entries are exactly the earliest-expiring ones and get
    /// popped here.
    fn prune_superseded_expiries(&mut self) {
        while let Some(Reverse(top)) = self.expiries.peek() {
            if self.slots[top.slot as usize].generation == top.generation {
                break;
            }
            self.expiries.pop();
        }
    }

    /// (Re)writes the index entry of the object in `slot` from its last
    /// reported state. With `extend_to = Some(t)` the validity is pushed past
    /// `t` (lazy re-grow on a stale query); otherwise it starts one horizon
    /// after the report.
    fn reindex(
        config: &ServiceConfig,
        index: &mut MovingIndex<u32>,
        expiries: &mut BinaryHeap<Reverse<Expiry>>,
        slot: u32,
        tracked: &mut TrackedSlot,
        extend_to: Option<f64>,
    ) {
        let Some(state) = tracked.tracker.last_state() else {
            return;
        };
        let speed = state.speed.abs();
        let (valid_until, radius) = if speed < 1e-9 {
            (f64::INFINITY, config.slack_m)
        } else {
            let valid_until = extend_to.unwrap_or(state.timestamp) + config.horizon_s;
            (valid_until, speed * (valid_until - state.timestamp) + config.slack_m)
        };
        tracked.generation += 1;
        tracked.valid_until = valid_until;
        index.insert(slot, Aabb::around(state.position, radius));
        if valid_until.is_finite() {
            expiries.push(Reverse(Expiry {
                at: valid_until,
                slot,
                generation: tracked.generation,
            }));
        }
    }

    /// The earliest instant at which some index entry may expire. Lazily
    /// deleted heap entries can make this conservative (too early), which only
    /// costs an unnecessary write-lock refresh.
    pub(crate) fn next_expiry(&self) -> f64 {
        self.expiries.peek().map(|Reverse(e)| e.at).unwrap_or(f64::INFINITY)
    }

    /// Re-grows every index entry whose validity ended at or before `t`.
    pub(crate) fn refresh_expired(&mut self, t: f64) {
        while let Some(Reverse(top)) = self.expiries.peek() {
            if top.at > t {
                break;
            }
            let Some(Reverse(expiry)) = self.expiries.pop() else {
                break; // unreachable: the peek above saw an entry
            };
            let tracked = &mut self.slots[expiry.slot as usize];
            if tracked.generation != expiry.generation {
                continue; // superseded, deregistered or recycled since pushed
            }
            Self::reindex(
                &self.config,
                &mut self.index,
                &mut self.expiries,
                expiry.slot,
                tracked,
                Some(t),
            );
        }
    }

    /// The position report for one object at time `t`.
    pub(crate) fn report_for(&self, object: ObjectId, t: f64) -> Option<PositionReport> {
        let slot = *self.by_id.get(&object)?;
        let tracker = &self.slots[slot as usize].tracker;
        let position = tracker.position_at(t)?;
        let age = tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
        Some(PositionReport { object, position, information_age: age })
    }

    /// Passes 1+2 of the batch query kernels: walk the index cells for the
    /// candidate slot ids (deduplicated, unordered — the service imposes its
    /// own deterministic order on final results), then predict every
    /// candidate at `t` into the contiguous struct-of-arrays buffers the
    /// filter passes run over.
    fn collect_candidates(&self, area: &Aabb, t: f64, scratch: &mut CandidateScratch) {
        let CandidateScratch { seen, cand, xs, ys, ages, objects } = scratch;
        cand.clear();
        self.index.for_each_in_rect_unordered(area, seen, |entry| cand.push(entry.item));
        xs.clear();
        ys.clear();
        ages.clear();
        objects.clear();
        for &slot in cand.iter() {
            let tracked = &self.slots[slot as usize];
            let Some(position) = tracked.tracker.position_at(t) else {
                continue;
            };
            let age =
                tracked.tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
            xs.push(position.x);
            ys.push(position.y);
            ages.push(age);
            objects.push(tracked.object);
        }
    }

    /// Index-pruned range query: appends every object whose predicted position
    /// at `t` lies inside `area`, in unspecified order (the service sorts).
    /// Callers must have refreshed expiries ≥ `t`. With warm scratch buffers
    /// this performs zero heap allocations.
    pub(crate) fn collect_in_rect(
        &self,
        area: &Aabb,
        t: f64,
        scratch: &mut CandidateScratch,
        out: &mut Vec<PositionReport>,
    ) {
        self.collect_candidates(area, t, scratch);
        let CandidateScratch { xs, ys, ages, objects, .. } = scratch;
        for i in 0..xs.len() {
            let position = Point::new(xs[i], ys[i]);
            if area.contains(&position) {
                out.push(PositionReport { object: objects[i], position, information_age: ages[i] });
            }
        }
    }

    /// Index-pruned nearest-candidate collection: appends `(distance, report)`
    /// for every object whose index box intersects the square of half-width
    /// `radius` around `from`. Conservative: every object whose *exact*
    /// predicted position is within `radius` of `from` is included. Scratch
    /// reuse as in [`ShardState::collect_in_rect`].
    pub(crate) fn collect_near(
        &self,
        from: &Point,
        radius: f64,
        t: f64,
        scratch: &mut CandidateScratch,
        out: &mut Vec<(f64, PositionReport)>,
    ) {
        self.collect_candidates(&Aabb::around(*from, radius), t, scratch);
        let CandidateScratch { xs, ys, ages, objects, .. } = scratch;
        for i in 0..xs.len() {
            let position = Point::new(xs[i], ys[i]);
            // Exact `Point::distance` (with its sqrt), not the squared form:
            // the ordering is the same, but the *tie pattern* after rounding
            // is what the full-scan oracle in the equivalence tests sees, so
            // the kernel must produce bit-identical distances.
            out.push((
                from.distance(&position),
                PositionReport { object: objects[i], position, information_age: ages[i] },
            ));
        }
    }

    /// A radius from `from` guaranteed to cover every indexed entry.
    pub(crate) fn extent_radius(&self, from: &Point) -> f64 {
        self.index.extent_radius(from)
    }
}

/// One lock stripe: a shard's state behind its own reader–writer lock.
pub(crate) struct Shard {
    state: RwLock<ShardState>,
    /// Write-lock acquisitions so far — the observable that lets tests (and
    /// operators) verify batched ingest takes each stripe lock once per
    /// batch instead of once per update.
    write_acquisitions: AtomicU64,
}

impl Shard {
    pub(crate) fn new(config: ServiceConfig) -> Self {
        Shard { state: RwLock::new(ShardState::new(config)), write_acquisitions: AtomicU64::new(0) }
    }

    /// Shared access for queries at time `t`, lazily re-growing expired index
    /// entries first (which needs the write lock, taken only when required).
    pub(crate) fn read_fresh<R>(&self, t: f64, f: impl FnOnce(&ShardState) -> R) -> R {
        {
            let state = self.state.read();
            if state.next_expiry() > t {
                return f(&state);
            }
        }
        self.write_acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.write();
        state.refresh_expired(t);
        f(&state)
    }

    /// Shared access for time-independent reads (counts, sums).
    pub(crate) fn read<R>(&self, f: impl FnOnce(&ShardState) -> R) -> R {
        f(&self.state.read())
    }

    /// Exclusive access for mutations.
    pub(crate) fn write<R>(&self, f: impl FnOnce(&mut ShardState) -> R) -> R {
        self.write_acquisitions.fetch_add(1, Ordering::Relaxed);
        f(&mut self.state.write())
    }

    /// Number of write-lock acquisitions so far.
    pub(crate) fn write_acquisitions(&self) -> u64 {
        self.write_acquisitions.load(Ordering::Relaxed)
    }
}
