//! One lock stripe of the sharded location store.
//!
//! A shard owns the trackers of the objects hashed to it plus a
//! [`MovingIndex`] over conservative bounding boxes of their predicted
//! positions. The index invariant (see the crate docs for the full argument):
//!
//! > For every object with reported state `s` and index entry `(bbox,
//! > valid_until)`, and for every query time `t ≤ valid_until`:
//! > `pred(s, t) ∈ bbox`.
//!
//! The invariant holds because every prediction function in `mbdr-core` is
//! speed-bounded — `|pred(s, t) − s.position| ≤ s.speed · (t − s.timestamp)`
//! — so a box centred on the reported position with radius
//! `speed · (valid_until − s.timestamp) + slack` contains every prediction up
//! to `valid_until` (and, since predictions clamp to the reported position
//! for `t < s.timestamp`, every earlier one too). Stationary objects get an
//! infinite validity. When a query arrives past an entry's `valid_until`, the
//! entry is *lazily re-grown*: `valid_until` is pushed past the query time
//! and the radius recomputed, still anchored at the reported position — the
//! box of a silent mover keeps growing, which is exactly the server's real
//! uncertainty about it.

use crate::config::ServiceConfig;
use crate::service::{ObjectId, PositionReport};
use mbdr_core::{Predictor, ServerTracker, Update};
use mbdr_geo::{Aabb, Point};
use mbdr_spatial::{MovingIndex, SpatialIndex};
use parking_lot::RwLock;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An object tracked by one shard.
struct Tracked {
    tracker: ServerTracker,
    /// Bumped every time the index entry is (re)written; lets the expiry heap
    /// use lazy deletion instead of removals.
    generation: u64,
    /// Query times up to this instant are covered by the index entry.
    valid_until: f64,
}

/// A pending index-entry expiry (min-heap by time via `Reverse`).
#[derive(Debug, PartialEq)]
struct Expiry {
    at: f64,
    object: ObjectId,
    generation: u64,
}

impl Eq for Expiry {}

impl Ord for Expiry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then(self.object.cmp(&other.object))
            .then(self.generation.cmp(&other.generation))
    }
}

impl PartialOrd for Expiry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Mutable state of one shard, guarded by the shard's lock.
pub(crate) struct ShardState {
    config: ServiceConfig,
    trackers: HashMap<ObjectId, Tracked>,
    index: MovingIndex<ObjectId>,
    expiries: BinaryHeap<Reverse<Expiry>>,
}

impl ShardState {
    fn new(config: ServiceConfig) -> Self {
        ShardState {
            config,
            trackers: HashMap::new(),
            index: MovingIndex::new(config.cell_size_m),
            expiries: BinaryHeap::new(),
        }
    }

    pub(crate) fn object_count(&self) -> usize {
        self.trackers.len()
    }

    pub(crate) fn indexed_count(&self) -> usize {
        self.index.len()
    }

    pub(crate) fn total_updates(&self) -> u64 {
        self.trackers.values().map(|t| t.tracker.updates_applied()).sum()
    }

    pub(crate) fn register(&mut self, object: ObjectId, predictor: Arc<dyn Predictor>) {
        self.index.remove(&object);
        self.trackers.insert(
            object,
            Tracked {
                tracker: ServerTracker::new(predictor),
                generation: 0,
                valid_until: f64::INFINITY,
            },
        );
    }

    pub(crate) fn deregister(&mut self, object: ObjectId) -> bool {
        self.index.remove(&object);
        let removed = self.trackers.remove(&object).is_some();
        self.prune_superseded_expiries();
        removed
    }

    pub(crate) fn apply_update(&mut self, object: ObjectId, update: &Update) -> bool {
        let Some(tracked) = self.trackers.get_mut(&object) else {
            return false;
        };
        let before = tracked.tracker.updates_applied();
        tracked.tracker.apply(update);
        if tracked.tracker.updates_applied() != before {
            // The update was accepted (not a stale sequence number): re-anchor
            // the index entry on the new reported state.
            Self::reindex(&self.config, &mut self.index, &mut self.expiries, object, tracked, None);
        }
        self.prune_superseded_expiries();
        true
    }

    /// Drops lazily-deleted entries from the top of the expiry heap (entries
    /// whose object was re-anchored or deregistered since they were pushed).
    /// Called on the ingest path, which already holds the write lock, so an
    /// ingest-heavy but rarely-queried service does not accumulate one heap
    /// entry per update: for a frequently-updating object the superseded
    /// entries are exactly the earliest-expiring ones and get popped here.
    fn prune_superseded_expiries(&mut self) {
        while let Some(Reverse(top)) = self.expiries.peek() {
            let superseded = match self.trackers.get(&top.object) {
                Some(tracked) => tracked.generation != top.generation,
                None => true,
            };
            if !superseded {
                break;
            }
            self.expiries.pop();
        }
    }

    /// (Re)writes `object`'s index entry from its last reported state. With
    /// `extend_to = Some(t)` the validity is pushed past `t` (lazy re-grow on
    /// a stale query); otherwise it starts one horizon after the report.
    fn reindex(
        config: &ServiceConfig,
        index: &mut MovingIndex<ObjectId>,
        expiries: &mut BinaryHeap<Reverse<Expiry>>,
        object: ObjectId,
        tracked: &mut Tracked,
        extend_to: Option<f64>,
    ) {
        let Some(state) = tracked.tracker.last_state() else {
            return;
        };
        let speed = state.speed.abs();
        let (valid_until, radius) = if speed < 1e-9 {
            (f64::INFINITY, config.slack_m)
        } else {
            let valid_until = extend_to.unwrap_or(state.timestamp) + config.horizon_s;
            (valid_until, speed * (valid_until - state.timestamp) + config.slack_m)
        };
        tracked.generation += 1;
        tracked.valid_until = valid_until;
        index.insert(object, Aabb::around(state.position, radius));
        if valid_until.is_finite() {
            expiries.push(Reverse(Expiry {
                at: valid_until,
                object,
                generation: tracked.generation,
            }));
        }
    }

    /// The earliest instant at which some index entry may expire. Lazily
    /// deleted heap entries can make this conservative (too early), which only
    /// costs an unnecessary write-lock refresh.
    pub(crate) fn next_expiry(&self) -> f64 {
        self.expiries.peek().map(|Reverse(e)| e.at).unwrap_or(f64::INFINITY)
    }

    /// Re-grows every index entry whose validity ended at or before `t`.
    pub(crate) fn refresh_expired(&mut self, t: f64) {
        while let Some(Reverse(top)) = self.expiries.peek() {
            if top.at > t {
                break;
            }
            let Reverse(expiry) = self.expiries.pop().expect("peeked");
            let Some(tracked) = self.trackers.get_mut(&expiry.object) else {
                continue; // deregistered since the entry was pushed
            };
            if tracked.generation != expiry.generation {
                continue; // superseded by a newer update or refresh
            }
            Self::reindex(
                &self.config,
                &mut self.index,
                &mut self.expiries,
                expiry.object,
                tracked,
                Some(t),
            );
        }
    }

    /// The position report for one object at time `t`.
    pub(crate) fn report_for(&self, object: ObjectId, t: f64) -> Option<PositionReport> {
        let tracked = self.trackers.get(&object)?;
        report(object, &tracked.tracker, t)
    }

    /// Index-pruned range query: appends every object whose predicted position
    /// at `t` lies inside `area`. Callers must have refreshed expiries ≥ `t`.
    /// `keys` is reusable candidate scratch (see
    /// [`MovingIndex::for_each_in_rect`]) — with warm buffers this performs
    /// zero heap allocations.
    pub(crate) fn collect_in_rect(
        &self,
        area: &Aabb,
        t: f64,
        keys: &mut Vec<ObjectId>,
        out: &mut Vec<PositionReport>,
    ) {
        self.index.for_each_in_rect(area, keys, |entry| {
            if let Some(r) = self.report_for(entry.item, t) {
                if area.contains(&r.position) {
                    out.push(r);
                }
            }
        });
    }

    /// Index-pruned nearest-candidate collection: appends `(distance, report)`
    /// for every object whose index box intersects the square of half-width
    /// `radius` around `from`. Conservative: every object whose *exact*
    /// predicted position is within `radius` of `from` is included. `keys` is
    /// reusable candidate scratch, as in [`ShardState::collect_in_rect`].
    pub(crate) fn collect_near(
        &self,
        from: &Point,
        radius: f64,
        t: f64,
        keys: &mut Vec<ObjectId>,
        out: &mut Vec<(f64, PositionReport)>,
    ) {
        self.index.for_each_in_rect(&Aabb::around(*from, radius), keys, |entry| {
            if let Some(r) = self.report_for(entry.item, t) {
                out.push((from.distance(&r.position), r));
            }
        });
    }

    /// A radius from `from` guaranteed to cover every indexed entry.
    pub(crate) fn extent_radius(&self, from: &Point) -> f64 {
        self.index.extent_radius(from)
    }
}

/// Builds the query answer for one tracker (shared by every query path so the
/// information-age semantics stay identical to the pre-shard implementation).
fn report(object: ObjectId, tracker: &ServerTracker, t: f64) -> Option<PositionReport> {
    let position = tracker.position_at(t)?;
    let age = tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
    Some(PositionReport { object, position, information_age: age })
}

/// One lock stripe: a shard's state behind its own reader–writer lock.
pub(crate) struct Shard {
    state: RwLock<ShardState>,
    /// Write-lock acquisitions so far — the observable that lets tests (and
    /// operators) verify batched ingest takes each stripe lock once per
    /// batch instead of once per update.
    write_acquisitions: AtomicU64,
}

impl Shard {
    pub(crate) fn new(config: ServiceConfig) -> Self {
        Shard { state: RwLock::new(ShardState::new(config)), write_acquisitions: AtomicU64::new(0) }
    }

    /// Shared access for queries at time `t`, lazily re-growing expired index
    /// entries first (which needs the write lock, taken only when required).
    pub(crate) fn read_fresh<R>(&self, t: f64, f: impl FnOnce(&ShardState) -> R) -> R {
        {
            let state = self.state.read();
            if state.next_expiry() > t {
                return f(&state);
            }
        }
        self.write_acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.write();
        state.refresh_expired(t);
        f(&state)
    }

    /// Shared access for time-independent reads (counts, sums).
    pub(crate) fn read<R>(&self, f: impl FnOnce(&ShardState) -> R) -> R {
        f(&self.state.read())
    }

    /// Exclusive access for mutations.
    pub(crate) fn write<R>(&self, f: impl FnOnce(&mut ShardState) -> R) -> R {
        self.write_acquisitions.fetch_add(1, Ordering::Relaxed);
        f(&mut self.state.write())
    }

    /// Number of write-lock acquisitions so far.
    pub(crate) fn write_acquisitions(&self) -> u64 {
        self.write_acquisitions.load(Ordering::Relaxed)
    }
}
