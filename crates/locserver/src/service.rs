//! The multi-object location store and its queries.

use mbdr_core::{Predictor, ServerTracker, Update};
use mbdr_geo::{Aabb, Point};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a tracked mobile object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// A position answer from the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionReport {
    /// The object the answer is about.
    pub object: ObjectId,
    /// Predicted position at the query time.
    pub position: Point,
    /// Age of the newest update this prediction is based on, seconds.
    pub information_age: f64,
}

/// A thread-safe location service tracking many objects.
pub struct LocationService {
    objects: RwLock<HashMap<ObjectId, ServerTracker>>,
}

impl Default for LocationService {
    fn default() -> Self {
        Self::new()
    }
}

impl LocationService {
    /// Creates an empty service.
    pub fn new() -> Self {
        LocationService { objects: RwLock::new(HashMap::new()) }
    }

    /// Registers an object with the prediction function its update protocol
    /// uses (source and server must share the predictor — see the protocol
    /// trait's `predictor()`).
    pub fn register(&self, object: ObjectId, predictor: Arc<dyn Predictor>) {
        self.objects.write().insert(object, ServerTracker::new(predictor));
    }

    /// Removes an object from the service.
    pub fn deregister(&self, object: ObjectId) {
        self.objects.write().remove(&object);
    }

    /// Number of registered objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Ingests an update message for an object. Returns `false` if the object
    /// is not registered.
    pub fn apply_update(&self, object: ObjectId, update: &Update) -> bool {
        let mut objects = self.objects.write();
        match objects.get_mut(&object) {
            Some(tracker) => {
                tracker.apply(update);
                true
            }
            None => false,
        }
    }

    /// The predicted position of one object at time `t`, or `None` if the
    /// object is unknown or has not reported yet.
    pub fn position_of(&self, object: ObjectId, t: f64) -> Option<PositionReport> {
        let objects = self.objects.read();
        let tracker = objects.get(&object)?;
        let position = tracker.position_at(t)?;
        let age = tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
        Some(PositionReport { object, position, information_age: age })
    }

    /// All objects whose predicted position at time `t` lies inside `area`
    /// (the "all users inside a department" query). Results are sorted by
    /// object id for determinism.
    pub fn objects_in_rect(&self, area: &Aabb, t: f64) -> Vec<PositionReport> {
        let objects = self.objects.read();
        let mut out: Vec<PositionReport> = objects
            .iter()
            .filter_map(|(&id, tracker)| {
                let position = tracker.position_at(t)?;
                if area.contains(&position) {
                    let age =
                        tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
                    Some(PositionReport { object: id, position, information_age: age })
                } else {
                    None
                }
            })
            .collect();
        out.sort_by_key(|r| r.object);
        out
    }

    /// The `k` objects whose predicted positions at time `t` are nearest to
    /// `from` (the "nearest taxi" query), nearest first.
    pub fn nearest_objects(&self, from: &Point, t: f64, k: usize) -> Vec<PositionReport> {
        let objects = self.objects.read();
        let mut out: Vec<(f64, PositionReport)> = objects
            .iter()
            .filter_map(|(&id, tracker)| {
                let position = tracker.position_at(t)?;
                let age = tracker.last_state().map(|s| (t - s.timestamp).max(0.0)).unwrap_or(0.0);
                Some((
                    from.distance(&position),
                    PositionReport { object: id, position, information_age: age },
                ))
            })
            .collect();
        out.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite").then(a.1.object.cmp(&b.1.object))
        });
        out.into_iter().take(k).map(|(_, r)| r).collect()
    }

    /// Total number of updates ingested across all objects.
    pub fn total_updates(&self) -> u64 {
        self.objects.read().values().map(|t| t.updates_applied()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_core::{LinearPredictor, ObjectState, StaticPredictor, UpdateKind};

    fn update(seq: u64, t: f64, x: f64, y: f64, speed: f64, heading: f64) -> Update {
        Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(x, y), speed, heading, t),
            kind: UpdateKind::DeviationBound,
        }
    }

    fn service_with_three_cars() -> LocationService {
        let s = LocationService::new();
        for i in 0..3 {
            s.register(ObjectId(i), Arc::new(StaticPredictor));
        }
        s.apply_update(ObjectId(0), &update(0, 0.0, 0.0, 0.0, 0.0, 0.0));
        s.apply_update(ObjectId(1), &update(0, 0.0, 100.0, 0.0, 0.0, 0.0));
        s.apply_update(ObjectId(2), &update(0, 0.0, 0.0, 300.0, 0.0, 0.0));
        s
    }

    #[test]
    fn register_apply_query_roundtrip() {
        let s = LocationService::new();
        s.register(ObjectId(7), Arc::new(LinearPredictor));
        assert_eq!(s.object_count(), 1);
        assert!(s.position_of(ObjectId(7), 5.0).is_none(), "no update yet");
        assert!(s.apply_update(
            ObjectId(7),
            &update(0, 0.0, 0.0, 0.0, 10.0, std::f64::consts::FRAC_PI_2)
        ));
        let report = s.position_of(ObjectId(7), 5.0).unwrap();
        assert!((report.position.x - 50.0).abs() < 1e-9, "linear prediction applies");
        assert!((report.information_age - 5.0).abs() < 1e-9);
        assert_eq!(s.total_updates(), 1);
        s.deregister(ObjectId(7));
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn updates_for_unknown_objects_are_rejected() {
        let s = LocationService::new();
        assert!(!s.apply_update(ObjectId(9), &update(0, 0.0, 0.0, 0.0, 0.0, 0.0)));
    }

    #[test]
    fn range_query_finds_objects_inside_the_area() {
        let s = service_with_three_cars();
        let area = Aabb::new(Point::new(-10.0, -10.0), Point::new(150.0, 50.0));
        let inside = s.objects_in_rect(&area, 1.0);
        assert_eq!(inside.len(), 2);
        assert_eq!(inside[0].object, ObjectId(0));
        assert_eq!(inside[1].object, ObjectId(1));
    }

    #[test]
    fn nearest_query_orders_by_distance() {
        let s = service_with_three_cars();
        let nearest = s.nearest_objects(&Point::new(90.0, 0.0), 1.0, 2);
        assert_eq!(nearest.len(), 2);
        assert_eq!(nearest[0].object, ObjectId(1), "the 10 m away car first");
        assert_eq!(nearest[1].object, ObjectId(0));
        // k larger than the fleet returns everyone.
        assert_eq!(s.nearest_objects(&Point::ORIGIN, 1.0, 10).len(), 3);
    }

    #[test]
    fn concurrent_updates_and_queries_do_not_deadlock() {
        let s = Arc::new(LocationService::new());
        for i in 0..8 {
            s.register(ObjectId(i), Arc::new(LinearPredictor));
        }
        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for step in 0..200u64 {
                    let id = ObjectId((worker * 2 + step) % 8);
                    s.apply_update(
                        id,
                        &update(step, step as f64, step as f64, worker as f64, 5.0, 0.0),
                    );
                    let _ = s.nearest_objects(&Point::ORIGIN, step as f64, 3);
                    let _ = s.objects_in_rect(&Aabb::around(Point::ORIGIN, 500.0), step as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.total_updates() > 0);
    }
}
