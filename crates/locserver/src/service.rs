//! The multi-object location store and its queries.
//!
//! The store is partitioned into [`ServiceConfig::shards`] lock stripes, each
//! holding the [`mbdr_core::ServerTracker`]s of the objects hashed to it plus
//! a [`mbdr_spatial::MovingIndex`] over conservative bounding boxes of their
//! predicted positions (see the private `shard` module for the index invariant). Update
//! ingestion touches exactly one shard; range and nearest queries visit the
//! shards' indexes and never hold a global lock, and their answers are
//! identical to what a full scan over every tracker would return.

use crate::config::ServiceConfig;
use crate::durability::{DurabilityControl, DurabilityStatsSnapshot};
use crate::shard::{CandidateScratch, Shard};
use mbdr_core::wire::snapshot::{encode_snapshot_into, SnapshotEntry};
use mbdr_core::{DecodeError, Frame, FrameView, HealthStatus, Predictor, Update};
use mbdr_geo::{Aabb, Point};
use mbdr_journal::Journal;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Identifier of a tracked mobile object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// A position answer from the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionReport {
    /// The object the answer is about.
    pub object: ObjectId,
    /// Predicted position at the query time.
    pub position: Point,
    /// Age of the newest update this prediction is based on, seconds.
    pub information_age: f64,
}

/// Reusable buffers for the query hot paths
/// ([`LocationService::objects_in_rect_into`],
/// [`LocationService::nearest_objects_into`]).
///
/// Queries take shard *read* locks, so many readers run concurrently — the
/// scratch therefore belongs to the caller (one per connection or query
/// thread), not to the service: each reader reuses its own buffers and the
/// steady-state allocation count per query is zero once the buffers have
/// reached their high-water capacity.
#[derive(Default)]
pub struct QueryScratch {
    /// Candidate walk + batch-prediction buffers (seen mask, candidate slot
    /// ids and the struct-of-arrays prediction output; see `crate::shard`).
    pub(crate) cand: CandidateScratch,
    /// Nearest-query candidates: exact distance + report.
    near: Vec<(f64, PositionReport)>,
}

impl QueryScratch {
    /// Cumulative candidate-dedup counters over every query this scratch has
    /// served: `(candidates inspected, unique candidates)`. The ratio between
    /// the two is the direct observable of placement skew on the query path —
    /// an object spanning many visited cells is inspected once per cell but
    /// deduplicated to one candidate.
    pub fn dedup_counters(&self) -> (u64, u64) {
        self.cand.dedup_counters()
    }
}

/// Aggregated spatial-index occupancy diagnostics across every shard
/// (see [`LocationService::index_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Objects currently carried in the shard indexes.
    pub indexed: usize,
    /// Occupied grid cells, summed over shards.
    pub occupied_cells: usize,
    /// Highest entry count in any single cell of any shard — the direct
    /// observable of hotspot skew.
    pub max_cell_occupancy: usize,
}

/// A thread-safe, lock-striped location service tracking many objects.
pub struct LocationService {
    config: ServiceConfig,
    shards: Vec<Shard>,
    /// Write-ahead journal for ingested frames, set at most once (see
    /// [`LocationService::attach_journal`]). `OnceLock` keeps the steady-state
    /// read on the ingest path a plain atomic load.
    journal: OnceLock<Arc<Journal>>,
    /// Durable / Degraded / Recovered state machine (see [`crate::durability`]):
    /// which regime journaling is in, and the exact count of frames applied
    /// without durability while the journal's disk was failing.
    durability: DurabilityControl,
}

impl Default for LocationService {
    fn default() -> Self {
        Self::new()
    }
}

impl LocationService {
    /// Creates an empty service with the default configuration.
    pub fn new() -> Self {
        LocationService::with_config(ServiceConfig::default())
    }

    /// Creates an empty service with the given shard count and index tuning.
    pub fn with_config(config: ServiceConfig) -> Self {
        let config = config.validated();
        let shards = (0..config.shards).map(|_| Shard::new(config)).collect();
        LocationService {
            config,
            shards,
            journal: OnceLock::new(),
            durability: DurabilityControl::default(),
        }
    }

    /// Attaches an opened [`Journal`]: every later
    /// [`LocationService::apply_frame_bytes`] call records the frame's exact
    /// bytes before applying them, and snapshot proposals run when the
    /// journal's threshold is reached. At most one journal can ever be
    /// attached; returns `false` (leaving the existing one in place) on a
    /// second attempt.
    ///
    /// Attach *after* restoring state — [`crate::durable::recover_and_attach`]
    /// runs the full open → restore → replay → attach sequence.
    pub fn attach_journal(&self, journal: Arc<Journal>) -> bool {
        self.journal.set(journal).is_ok()
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.get()
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard responsible for `object` (Fibonacci multiplicative
    /// hash so sequential fleet ids spread evenly over the stripes).
    fn shard_index(&self, object: ObjectId) -> usize {
        let h = (object.0 ^ (object.0 >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.shards.len()
    }

    /// The shard responsible for `object`.
    fn shard_of(&self, object: ObjectId) -> &Shard {
        &self.shards[self.shard_index(object)]
    }

    /// Registers an object with the prediction function its update protocol
    /// uses (source and server must share the predictor — see the protocol
    /// trait's `predictor()`).
    pub fn register(&self, object: ObjectId, predictor: Arc<dyn Predictor>) {
        self.shard_of(object).write(|s| s.register(object, predictor));
    }

    /// Removes an object from the service (store and spatial index). Returns
    /// `true` if the object was registered.
    pub fn deregister(&self, object: ObjectId) -> bool {
        self.shard_of(object).write(|s| s.deregister(object))
    }

    /// Number of registered objects.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.read(|st| st.object_count())).sum()
    }

    /// Number of objects currently carried in the spatial indexes (objects
    /// become indexed with their first accepted update).
    pub fn indexed_count(&self) -> usize {
        self.shards.iter().map(|s| s.read(|st| st.indexed_count())).sum()
    }

    /// Ingests an update message for an object, re-anchoring its spatial-index
    /// entry. Returns `false` if the object is not registered.
    pub fn apply_update(&self, object: ObjectId, update: &Update) -> bool {
        self.shard_of(object).write(|s| s.apply_update(object, update))
    }

    /// Ingests a batch of updates, taking each stripe's write lock **once**
    /// for all of the batch's updates that hash to it instead of once per
    /// update. Updates are applied in batch order within every shard, so the
    /// observable service state is identical to calling
    /// [`LocationService::apply_update`] for each element in order. Returns
    /// the number of updates applied to registered objects.
    pub fn apply_batch(&self, batch: &[(ObjectId, Update)]) -> usize {
        // One allocation for the whole batch: sort (shard, batch index) pairs
        // so each stripe's updates form a contiguous run, in batch order
        // (unstable sort is fine — the index makes every key distinct).
        let mut order: Vec<(usize, usize)> = batch
            .iter()
            .enumerate()
            .map(|(i, (object, _))| (self.shard_index(*object), i))
            .collect();
        order.sort_unstable();
        let mut applied = 0;
        let mut run_start = 0;
        while run_start < order.len() {
            let shard_index = order[run_start].0;
            let run_end = run_start
                + order[run_start..].iter().take_while(|&&(s, _)| s == shard_index).count();
            applied += self.shards[shard_index].write(|s| {
                order[run_start..run_end]
                    .iter()
                    .filter(|&&(_, i)| {
                        let (object, update) = &batch[i];
                        s.apply_update(*object, update)
                    })
                    .count()
            });
            run_start = run_end;
        }
        applied
    }

    /// Ingests one decoded wire [`Frame`]: all of its updates belong to the
    /// source object `ObjectId(frame.source)`, which lives on one shard, so
    /// the whole frame costs a single write-lock acquisition. Returns the
    /// number of updates applied (0 when the object is not registered).
    pub fn apply_frame(&self, frame: &Frame) -> usize {
        if frame.updates.is_empty() {
            return 0;
        }
        let object = ObjectId(frame.source);
        self.shard_of(object)
            .write(|s| frame.updates.iter().filter(|u| s.apply_update(object, u)).count())
    }

    /// Decodes an encoded frame straight off the wire and ingests it — the
    /// receive path of the uplink protocol. Truncated or corrupted buffers
    /// report the codec's typed error instead of touching any shard.
    ///
    /// Zero-copy: the frame is validated and consumed through a borrowed
    /// [`FrameView`], decoding each update into a stack value under the
    /// shard's single write-lock hold — no intermediate `Vec<Update>` is
    /// ever built, so steady-state ingest performs no heap allocation (the
    /// property the `mbdr-bench` counting-allocator gate enforces).
    ///
    /// With a journal attached (see [`LocationService::attach_journal`]) the
    /// validated frame bytes are appended to the write-ahead log *inside* the
    /// shard's write-lock hold, immediately before they are applied: readers
    /// can never observe applied state whose frame is not yet in the journal,
    /// which is what makes snapshot collection under shard read locks
    /// consistent with the journal's frame count. The append reuses the
    /// borrowed slice (stack-built record header, no re-encode), so journaled
    /// steady-state ingest stays allocation-free too.
    ///
    /// A failed append does **not** fail the ingest: the service flips to the
    /// degraded regime (see [`crate::durability`]), keeps applying frames, and
    /// counts every un-journaled apply until
    /// [`LocationService::probe_durability`] heals the journal. The
    /// steady-state durable path pays one extra relaxed atomic load.
    pub fn apply_frame_bytes(&self, bytes: &[u8]) -> Result<usize, DecodeError> {
        let view = FrameView::parse(bytes)?;
        if view.is_empty() {
            return Ok(0);
        }
        let object = ObjectId(view.source());
        let journal = self.journal.get();
        let applied = self.shard_of(object).write(|s| {
            if let Some(journal) = journal {
                if self.durability.is_degraded() {
                    self.durability.note_degraded_frame();
                } else if !journal.record_frame(bytes) {
                    self.durability.enter_degraded();
                    self.durability.note_degraded_frame();
                }
            }
            view.updates().filter(|u| s.apply_update(object, u)).count()
        });
        if let Some(journal) = journal {
            if journal.snapshot_pending() {
                self.snapshot_to_journal(journal);
            }
        }
        Ok(applied)
    }

    /// Recovery twin of [`LocationService::apply_frame_bytes`]: applies a
    /// frame that came *out of* the journal, without re-journaling it. Only
    /// the recovery path ([`crate::durable`]) uses this, before the journal is
    /// attached for live traffic.
    pub(crate) fn replay_frame_bytes(&self, bytes: &[u8]) -> Result<usize, DecodeError> {
        let view = FrameView::parse(bytes)?;
        if view.is_empty() {
            return Ok(0);
        }
        let object = ObjectId(view.source());
        Ok(self
            .shard_of(object)
            .write(|s| view.updates().filter(|u| s.apply_update(object, u)).count()))
    }

    /// Proposes and, if the journal grants it, installs a snapshot of the full
    /// tracker state. Collection takes each shard's read lock in turn; because
    /// appends happen inside the shard write hold *before* the apply, every
    /// frame counted by the journal at grant time is visible to the collection
    /// (frames appended concurrently after the grant may also be included,
    /// which is harmless: replaying them over the snapshot is rejected by the
    /// staleness rules). Failures are counted on the journal and swallowed —
    /// a snapshot that could not be written only delays compaction.
    pub(crate) fn snapshot_to_journal(&self, journal: &Journal) {
        let Some(frames) = journal.begin_snapshot() else {
            return;
        };
        self.write_snapshot(journal, frames);
    }

    /// Collects every shard's tracker state under read locks, sorted by
    /// object id (the snapshot codec's canonical order).
    fn collect_snapshot_entries(&self) -> Vec<SnapshotEntry> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            shard.read(|s| s.snapshot_entries_into(&mut entries));
        }
        entries.sort_unstable_by_key(|e| e.object);
        entries
    }

    /// Encodes and installs a snapshot for a grant already obtained from
    /// [`Journal::begin_snapshot`] / [`Journal::begin_forced_snapshot`].
    /// Returns whether the snapshot was durably installed; failures are
    /// counted on the journal and release the grant.
    fn write_snapshot(&self, journal: &Journal, frames: u64) -> bool {
        let entries = self.collect_snapshot_entries();
        let mut body = Vec::new();
        match encode_snapshot_into(frames, &entries, &mut body) {
            Ok(()) => {
                if journal.install_snapshot(frames, &body).is_err() {
                    journal.note_write_error();
                    return false;
                }
                true
            }
            Err(_) => {
                journal.note_write_error();
                journal.abort_snapshot();
                false
            }
        }
    }

    /// One durability re-probe: if the service is degraded, checks whether
    /// the journal's disk accepts writes again
    /// ([`Journal::repair_and_sync`] — repairs the torn tail and forces an
    /// fsync) and, if so, installs a **forced** snapshot of the current
    /// tracker state. The snapshot covers every frame applied while degraded,
    /// so it re-establishes the durability floor above the un-journaled
    /// window, and the service flips to [`mbdr_core::DurabilityState::Recovered`]
    /// — appends journal normally again.
    ///
    /// Returns `true` when the service is durable after the call (including
    /// "was never degraded"); `false` means the disk is still failing and the
    /// caller should back off and retry (`mbdr-net`'s server runs this on a
    /// background thread with capped exponential backoff).
    pub fn probe_durability(&self) -> bool {
        if !self.durability.is_degraded() {
            return true;
        }
        let Some(journal) = self.journal.get() else {
            // Unreachable: the service only degrades on a failed journal
            // append, which requires an attached journal.
            return true;
        };
        self.durability.note_probe_attempt();
        if journal.repair_and_sync().is_err() {
            return false;
        }
        let Some(frames) = journal.begin_forced_snapshot() else {
            // A threshold snapshot is in flight; let it finish and retry.
            return false;
        };
        if !self.write_snapshot(journal, frames) {
            return false;
        }
        self.durability.mark_recovered();
        true
    }

    /// Point-in-time copy of the durability state machine's counters.
    pub fn durability_stats(&self) -> DurabilityStatsSnapshot {
        self.durability.snapshot()
    }

    /// The service's health summary — the payload of the wire protocol's
    /// `REQ_HEALTH` / `RESP_HEALTH` pair: durability state, the degraded-window
    /// frame count, and the attached journal's recovery counters (zeros when
    /// no journal is attached).
    pub fn health_status(&self) -> HealthStatus {
        let durability = self.durability.snapshot();
        let journal = self.journal.get().map(|j| j.stats()).unwrap_or_default();
        HealthStatus {
            state: durability.state,
            degraded_frames: durability.degraded_frames,
            recovered_frames: journal.recovered_frames,
            truncated_bytes: journal.truncated_bytes,
            append_errors: journal.append_errors,
        }
    }

    /// Restores tracker state from decoded snapshot entries. Returns
    /// `(restored, skipped)` — an entry is skipped when its object is not
    /// registered on this service (recovery cannot invent the predictor).
    pub(crate) fn restore_entries(&self, entries: &[SnapshotEntry]) -> (u64, u64) {
        let mut restored = 0u64;
        let mut skipped = 0u64;
        for entry in entries {
            let object = ObjectId(entry.object);
            let ok = self.shard_of(object).write(|s| {
                s.restore_object(object, &entry.update, entry.updates_applied, entry.bytes_received)
            });
            if ok {
                restored += 1;
            } else {
                skipped += 1;
            }
        }
        (restored, skipped)
    }

    /// Total write-lock acquisitions across all stripes — a cheap diagnostic
    /// that makes lock traffic observable (batched ingest takes one per
    /// stripe per batch; per-update ingest takes one per update).
    pub fn write_lock_acquisitions(&self) -> u64 {
        self.shards.iter().map(|s| s.write_acquisitions()).sum()
    }

    /// The predicted position of one object at time `t`, or `None` if the
    /// object is unknown or has not reported yet.
    pub fn position_of(&self, object: ObjectId, t: f64) -> Option<PositionReport> {
        self.shard_of(object).read(|s| s.report_for(object, t))
    }

    /// All objects whose predicted position at time `t` lies inside `area`
    /// (the "all users inside a department" query). Results are sorted by
    /// object id for determinism.
    ///
    /// Index-pruned: only objects whose conservative index box intersects
    /// `area` are examined, never the whole store.
    ///
    /// Allocates the result `Vec` (plus internal scratch) per call — hot
    /// callers should hold a [`QueryScratch`] and a result buffer and use
    /// [`LocationService::objects_in_rect_into`] instead.
    pub fn objects_in_rect(&self, area: &Aabb, t: f64) -> Vec<PositionReport> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.objects_in_rect_into(area, t, &mut scratch, &mut out);
        out
    }

    /// The reusable-buffer form of [`LocationService::objects_in_rect`]:
    /// writes the answer into `out` (cleared first), using `scratch` for the
    /// spatial-index candidate walk. Identical results; with warm buffers a
    /// query performs **zero** heap allocations (enforced by the
    /// counting-allocator gate in `mbdr-bench`).
    pub fn objects_in_rect_into(
        &self,
        area: &Aabb,
        t: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<PositionReport>,
    ) {
        out.clear();
        for shard in &self.shards {
            shard.read_fresh(t, |s| s.collect_in_rect(area, t, &mut scratch.cand, out));
        }
        // Unstable sort: object ids are unique, so the order is total and
        // deterministic, and no stable-sort temp buffer is allocated.
        out.sort_unstable_by_key(|r| r.object);
    }

    /// The `k` objects whose predicted positions at time `t` are nearest to
    /// `from` (the "nearest taxi" query), nearest first (ties broken by id).
    ///
    /// Index-pruned: an expanding ring search over the shard indexes — the
    /// ring doubles until the k-th candidate's exact distance is inside it
    /// (or the ring provably covers every object), so dense fleets never get
    /// fully scanned. The candidate set is cut down with a partial selection
    /// (`select_nth_unstable_by`) instead of a full sort.
    ///
    /// Allocates the result `Vec` (plus internal scratch) per call — hot
    /// callers should use [`LocationService::nearest_objects_into`].
    pub fn nearest_objects(&self, from: &Point, t: f64, k: usize) -> Vec<PositionReport> {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        self.nearest_objects_into(from, t, k, &mut scratch, &mut out);
        out
    }

    /// The reusable-buffer form of [`LocationService::nearest_objects`]:
    /// writes the answer into `out` (cleared first), keeping the ring
    /// search's candidate set in `scratch`. Identical results; with warm
    /// buffers a query performs zero heap allocations.
    pub fn nearest_objects_into(
        &self,
        from: &Point,
        t: f64,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<PositionReport>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        // `total_cmp` agrees with `partial_cmp` on every value that can
        // occur here (squared distances: finite, non-negative, never -0.0)
        // and stays a total order if a NaN ever slipped in, so the sort can
        // never panic.
        let cmp = |a: &(f64, PositionReport), b: &(f64, PositionReport)| {
            a.0.total_cmp(&b.0).then(a.1.object.cmp(&b.1.object))
        };
        let mut radius = self.config.cell_size_m;
        let QueryScratch { cand, near: candidates } = scratch;
        loop {
            candidates.clear();
            // The termination extent is recomputed inside the same lock hold
            // as each shard's candidate collection, so lazily re-grown boxes
            // and concurrently moved objects are covered: when the ring
            // reaches a shard's extent, that shard was provably collected in
            // full at its own read time.
            let mut extent = self.config.cell_size_m;
            for shard in &self.shards {
                shard.read_fresh(t, |s| {
                    s.collect_near(from, radius, t, cand, candidates);
                    extent = extent.max(s.extent_radius(from));
                });
            }
            // Objects outside the ring are strictly farther than `radius`, so
            // once the k-th candidate distance fits inside the ring the true
            // k nearest are all among the candidates.
            let kth = (candidates.len() >= k).then(|| {
                candidates.select_nth_unstable_by(k - 1, cmp);
                candidates[k - 1].0
            });
            if kth.is_some_and(|d| d <= radius) || radius >= extent {
                let take = k.min(candidates.len());
                // Unstable sort on a total order (unique id tiebreak):
                // deterministic and allocation-free.
                candidates[..take].sort_unstable_by(cmp);
                out.extend(candidates[..take].iter().map(|(_, r)| *r));
                return;
            }
            radius = (radius * 2.0).max(kth.unwrap_or(0.0)).min(extent);
        }
    }

    /// Total number of updates ingested across all objects.
    pub fn total_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.read(|st| st.total_updates())).sum()
    }

    /// Spatial-index occupancy diagnostics aggregated over every shard.
    /// O(occupied cells) under shard read locks — cheap enough for stats
    /// endpoints and benchmark reports, not meant for per-query use.
    pub fn index_stats(&self) -> IndexStats {
        let mut stats = IndexStats::default();
        for shard in &self.shards {
            shard.read(|s| {
                let (cells, max) = s.index_occupancy();
                stats.indexed += s.indexed_count();
                stats.occupied_cells += cells;
                stats.max_cell_occupancy = stats.max_cell_occupancy.max(max);
            });
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_core::{LinearPredictor, ObjectState, StaticPredictor, UpdateKind};

    fn update(seq: u64, t: f64, x: f64, y: f64, speed: f64, heading: f64) -> Update {
        Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(x, y), speed, heading, t),
            kind: UpdateKind::DeviationBound,
        }
    }

    fn service_with_three_cars() -> LocationService {
        let s = LocationService::new();
        for i in 0..3 {
            s.register(ObjectId(i), Arc::new(StaticPredictor));
        }
        s.apply_update(ObjectId(0), &update(0, 0.0, 0.0, 0.0, 0.0, 0.0));
        s.apply_update(ObjectId(1), &update(0, 0.0, 100.0, 0.0, 0.0, 0.0));
        s.apply_update(ObjectId(2), &update(0, 0.0, 0.0, 300.0, 0.0, 0.0));
        s
    }

    #[test]
    fn register_apply_query_roundtrip() {
        let s = LocationService::new();
        s.register(ObjectId(7), Arc::new(LinearPredictor));
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.indexed_count(), 0, "not indexed before the first update");
        assert!(s.position_of(ObjectId(7), 5.0).is_none(), "no update yet");
        assert!(s.apply_update(
            ObjectId(7),
            &update(0, 0.0, 0.0, 0.0, 10.0, std::f64::consts::FRAC_PI_2)
        ));
        assert_eq!(s.indexed_count(), 1);
        let report = s.position_of(ObjectId(7), 5.0).unwrap();
        assert!((report.position.x - 50.0).abs() < 1e-9, "linear prediction applies");
        assert!((report.information_age - 5.0).abs() < 1e-9);
        assert_eq!(s.total_updates(), 1);
        assert!(s.deregister(ObjectId(7)));
        assert!(!s.deregister(ObjectId(7)), "second deregister is a no-op");
        assert_eq!(s.object_count(), 0);
        assert_eq!(s.indexed_count(), 0, "deregistration removes the index entry");
    }

    #[test]
    fn updates_for_unknown_objects_are_rejected() {
        let s = LocationService::new();
        assert!(!s.apply_update(ObjectId(9), &update(0, 0.0, 0.0, 0.0, 0.0, 0.0)));
    }

    #[test]
    fn range_query_finds_objects_inside_the_area() {
        let s = service_with_three_cars();
        let area = Aabb::new(Point::new(-10.0, -10.0), Point::new(150.0, 50.0));
        let inside = s.objects_in_rect(&area, 1.0);
        assert_eq!(inside.len(), 2);
        assert_eq!(inside[0].object, ObjectId(0));
        assert_eq!(inside[1].object, ObjectId(1));
    }

    #[test]
    fn nearest_query_orders_by_distance() {
        let s = service_with_three_cars();
        let nearest = s.nearest_objects(&Point::new(90.0, 0.0), 1.0, 2);
        assert_eq!(nearest.len(), 2);
        assert_eq!(nearest[0].object, ObjectId(1), "the 10 m away car first");
        assert_eq!(nearest[1].object, ObjectId(0));
        // k larger than the fleet returns everyone.
        assert_eq!(s.nearest_objects(&Point::ORIGIN, 1.0, 10).len(), 3);
        // k = 0 is empty.
        assert!(s.nearest_objects(&Point::ORIGIN, 1.0, 0).is_empty());
    }

    #[test]
    fn every_shard_count_answers_queries_identically() {
        for shards in [1, 3, 16, 64] {
            let s = LocationService::with_config(ServiceConfig::with_shards(shards));
            assert_eq!(s.shard_count(), shards);
            for i in 0..40u64 {
                s.register(ObjectId(i), Arc::new(StaticPredictor));
                s.apply_update(
                    ObjectId(i),
                    &update(0, 0.0, (i % 7) as f64 * 100.0, (i / 7) as f64 * 100.0, 0.0, 0.0),
                );
            }
            let area = Aabb::new(Point::new(-1.0, -1.0), Point::new(250.0, 250.0));
            let inside = s.objects_in_rect(&area, 10.0);
            assert_eq!(inside.len(), 9, "shards={shards}");
            assert!(inside.windows(2).all(|w| w[0].object < w[1].object), "sorted by id");
            let nearest = s.nearest_objects(&Point::new(310.0, 210.0), 10.0, 5);
            assert_eq!(nearest.len(), 5);
            assert_eq!(nearest[0].object, ObjectId(17), "(300, 200) is closest");
        }
    }

    #[test]
    fn queries_far_past_the_staleness_horizon_still_find_moving_objects() {
        let config = ServiceConfig { horizon_s: 5.0, slack_m: 10.0, ..ServiceConfig::default() };
        let s = LocationService::with_config(config);
        s.register(ObjectId(1), Arc::new(LinearPredictor));
        // Heading east at 10 m/s from the origin; index box initially covers
        // only ~5 s * 10 m/s of travel.
        s.apply_update(ObjectId(1), &update(0, 0.0, 0.0, 0.0, 10.0, std::f64::consts::FRAC_PI_2));
        // 500 s later the prediction is at x = 5000, far outside the original
        // box — the query must lazily re-grow the entry and still find it.
        let area = Aabb::around(Point::new(5_000.0, 0.0), 50.0);
        let inside = s.objects_in_rect(&area, 500.0);
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].object, ObjectId(1));
        let nearest = s.nearest_objects(&Point::new(5_100.0, 0.0), 500.0, 1);
        assert_eq!(nearest.len(), 1);
        assert!((nearest[0].position.x - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn rect_queries_prune_against_the_index() {
        // With everything clustered at the origin, a far-away rect query must
        // not visit any tracker — observable through a predictor that counts
        // its calls.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        struct CountingPredictor;
        impl Predictor for CountingPredictor {
            fn predict(&self, reported: &ObjectState, _t: f64) -> Point {
                CALLS.fetch_add(1, Ordering::Relaxed);
                reported.position
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }
        let s = LocationService::new();
        for i in 0..32u64 {
            s.register(ObjectId(i), Arc::new(CountingPredictor));
            s.apply_update(ObjectId(i), &update(0, 0.0, i as f64, 0.0, 0.0, 0.0));
        }
        CALLS.store(0, Ordering::Relaxed);
        let far = Aabb::around(Point::new(1.0e6, 1.0e6), 100.0);
        assert!(s.objects_in_rect(&far, 1.0).is_empty());
        assert_eq!(CALLS.load(Ordering::Relaxed), 0, "no tracker examined for a far-away rect");
    }

    #[test]
    fn apply_batch_matches_per_update_ingest_exactly() {
        // Same randomized update stream into two services — one batched, one
        // update-at-a-time — must leave bit-identical observable state.
        let make = |objects: u64| {
            let s = LocationService::with_config(ServiceConfig::with_shards(8));
            for i in 0..objects {
                s.register(ObjectId(i), Arc::new(LinearPredictor));
            }
            s
        };
        let objects = 24u64;
        let (batched, reference) = (make(objects), make(objects));
        let mut stream: Vec<(ObjectId, Update)> = Vec::new();
        let mut mix = 0x9E3779B97F4A7C15u64;
        for step in 0..400u64 {
            mix = mix.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = ObjectId(mix % (objects + 4)); // some ids unregistered
            let t = (step / 8) as f64;
            stream.push((
                id,
                update(step % 16, t, (mix % 5_000) as f64, (mix % 3_000) as f64, 8.0, 1.0),
            ));
        }
        let mut batch_applied = 0;
        for chunk in stream.chunks(37) {
            batch_applied += batched.apply_batch(chunk);
        }
        let mut one_applied = 0;
        for (id, u) in &stream {
            if reference.apply_update(*id, u) {
                one_applied += 1;
            }
        }
        assert_eq!(batch_applied, one_applied);
        assert_eq!(batched.total_updates(), reference.total_updates());
        assert_eq!(batched.indexed_count(), reference.indexed_count());
        for i in 0..objects {
            let (b, r) =
                (batched.position_of(ObjectId(i), 60.0), reference.position_of(ObjectId(i), 60.0));
            assert_eq!(b.map(|p| p.position), r.map(|p| p.position), "object {i}");
        }
        let area = Aabb::new(Point::new(-1.0, -1.0), Point::new(6_000.0, 6_000.0));
        assert_eq!(batched.objects_in_rect(&area, 60.0), reference.objects_in_rect(&area, 60.0));
    }

    #[test]
    fn apply_batch_takes_each_stripe_lock_once() {
        let s = LocationService::with_config(ServiceConfig::with_shards(4));
        for i in 0..16u64 {
            s.register(ObjectId(i), Arc::new(StaticPredictor));
        }
        let batch: Vec<(ObjectId, Update)> = (0..128u64)
            .map(|i| (ObjectId(i % 16), update(i / 16, (i / 16) as f64, i as f64, 0.0, 0.0, 0.0)))
            .collect();
        let before = s.write_lock_acquisitions();
        assert_eq!(s.apply_batch(&batch), 128);
        let batched_locks = s.write_lock_acquisitions() - before;
        assert!(batched_locks <= 4, "one write lock per touched stripe, got {batched_locks}");
        // The same traffic one update at a time costs one lock per update.
        let before = s.write_lock_acquisitions();
        for (id, u) in &batch {
            s.apply_update(*id, u);
        }
        assert_eq!(s.write_lock_acquisitions() - before, 128);
    }

    #[test]
    fn apply_frame_ingests_a_decoded_wire_frame_under_one_lock() {
        use mbdr_core::Frame;
        let s = LocationService::new();
        s.register(ObjectId(9), Arc::new(LinearPredictor));
        let mut frame = Frame::new(9);
        for i in 0..5u64 {
            frame.push(update(i, i as f64, 100.0 * i as f64, 0.0, 10.0, 0.0));
        }
        let bytes = frame.encode().unwrap();
        let before = s.write_lock_acquisitions();
        assert_eq!(s.apply_frame_bytes(&bytes).unwrap(), 5);
        assert_eq!(s.write_lock_acquisitions() - before, 1, "one frame, one lock");
        let report = s.position_of(ObjectId(9), 4.0).unwrap();
        assert!((report.position.x - 400.0).abs() < 1e-6, "newest update wins");
        // A frame for an unregistered source applies nothing but decodes fine.
        assert_eq!(
            s.apply_frame_bytes(&Frame::single(77, frame.updates[0]).encode().unwrap()),
            Ok(0)
        );
        // Corrupted bytes report the codec's typed error without panicking.
        assert!(s.apply_frame_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert_eq!(s.total_updates(), 5);
    }

    #[test]
    fn buffer_reuse_queries_agree_with_the_allocating_ones() {
        let s = service_with_three_cars();
        let mut scratch = QueryScratch::default();
        // Stale buffer contents must be cleared, not appended to.
        let mut out = vec![PositionReport {
            object: ObjectId(999),
            position: Point::ORIGIN,
            information_age: 0.0,
        }];
        let area = Aabb::new(Point::new(-10.0, -10.0), Point::new(150.0, 50.0));
        s.objects_in_rect_into(&area, 1.0, &mut scratch, &mut out);
        assert_eq!(out, s.objects_in_rect(&area, 1.0));
        for k in [0, 1, 2, 10] {
            s.nearest_objects_into(&Point::new(90.0, 0.0), 1.0, k, &mut scratch, &mut out);
            assert_eq!(out, s.nearest_objects(&Point::new(90.0, 0.0), 1.0, k), "k={k}");
        }
    }

    #[test]
    fn concurrent_updates_and_queries_do_not_deadlock() {
        let s = Arc::new(LocationService::new());
        for i in 0..8 {
            s.register(ObjectId(i), Arc::new(LinearPredictor));
        }
        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for step in 0..200u64 {
                    let id = ObjectId((worker * 2 + step) % 8);
                    s.apply_update(
                        id,
                        &update(step, step as f64, step as f64, worker as f64, 5.0, 0.0),
                    );
                    let _ = s.nearest_objects(&Point::ORIGIN, step as f64, 3);
                    let _ = s.objects_in_rect(&Aabb::around(Point::ORIGIN, 500.0), step as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.total_updates() > 0);
    }
}
