//! Anchor crate for the workspace-level `examples/` binaries and `tests/`
//! integration tests (Cargo targets must belong to a package; the target
//! paths in this package's manifest point one level up).
