//! Fleet simulation: many objects tracked concurrently on one shared map.
//!
//! The paper's motivating applications ("find the nearest taxi cab", "address
//! all users that are currently inside a department of a store") track whole
//! fleets against one location service. This module simulates that workload:
//! one city map, `objects` vehicles each driving its own errand route, every
//! vehicle running its own update protocol against its own server-side
//! tracker. Per-object simulations are independent and run on crossbeam
//! scoped threads.

use crate::metrics::RunMetrics;
use crate::protocols::{ProtocolContext, ProtocolKind};
use crate::runner::{run_protocol, RunConfig};
use mbdr_roadnet::NodeId;
use mbdr_trace::gps::GpsNoiseModel;
use mbdr_trace::motion::{simulate_motion, MotionConfig};
use mbdr_trace::route_plan::{plan_wandering_route, trip_from_route};
use mbdr_trace::{DriverProfile, Fix, Scenario, ScenarioData, ScenarioKind, Trace};

/// Configuration of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of tracked objects.
    pub objects: usize,
    /// Trip length per object, metres.
    pub trip_length_m: f64,
    /// Requested accuracy `u_s`, metres.
    pub requested_accuracy: f64,
    /// Protocol every object runs.
    pub protocol: ProtocolKind,
    /// Random seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            objects: 16,
            trip_length_m: 8_000.0,
            requested_accuracy: 100.0,
            protocol: ProtocolKind::MapBased,
            seed: 0xF1EE7,
        }
    }
}

/// Result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-object run metrics.
    pub per_object: Vec<RunMetrics>,
    /// Per-object traces (for feeding a location service afterwards).
    pub traces: Vec<Trace>,
    /// Total updates across the fleet.
    pub total_updates: u64,
    /// Mean updates per hour per object.
    pub mean_updates_per_hour: f64,
}

/// Builds one object's scenario data on the shared city map (also the per-
/// vehicle trace generator of [`crate::service_workload`]).
pub(crate) fn object_scenario(
    base: &ScenarioData,
    object_index: usize,
    fleet_seed: u64,
    trip_length_m: f64,
) -> ScenarioData {
    let seed = fleet_seed ^ (object_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let network = &base.network;
    let start = NodeId((seed % network.node_count() as u64) as u32);
    let profile = DriverProfile::city_car();
    let route = plan_wandering_route(network, start, trip_length_m, seed);
    let trip = trip_from_route(network, route, &profile, seed ^ 0x7);
    let truth = simulate_motion(
        &trip.path,
        &trip.speed_limits,
        &trip.stops,
        &profile,
        &MotionConfig { seed: seed ^ 0x9, ..MotionConfig::default() },
    );
    let mut gps = GpsNoiseModel::dgps(seed ^ 0xB);
    let accuracy = gps.nominal_accuracy();
    let mut trace = Trace::new();
    let mut prev_t = None;
    for g in truth {
        let dt = prev_t.map(|p| g.t - p).unwrap_or(1.0);
        prev_t = Some(g.t);
        let sensed = gps.observe(g.position, dt);
        trace.push(g, Fix { t: g.t, position: sensed, accuracy });
    }
    ScenarioData { trace, trip, ..base.clone() }
}

/// Runs the fleet simulation.
pub fn run_fleet(config: &FleetConfig) -> FleetResult {
    assert!(config.objects > 0, "a fleet needs at least one object");
    // One shared city map for the whole fleet (scale only controls the unused
    // base trip; the map itself is the full default grid).
    let base = Scenario { kind: ScenarioKind::City, scale: 0.02, seed: config.seed }.build();
    let base_ctx = ProtocolContext::for_scenario(&base);

    let mut results: Vec<Option<(RunMetrics, Trace)>> = Vec::new();
    results.resize_with(config.objects, || None);
    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(config.objects);
    let chunk = config.objects.div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        for (worker_index, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let base = &base;
            let base_ctx = &base_ctx;
            scope.spawn(move |_| {
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    let object_index = worker_index * chunk + offset;
                    let data =
                        object_scenario(base, object_index, config.seed, config.trip_length_m);
                    // Each object gets its own protocol instance but shares the
                    // map and spatial index through the context.
                    let protocol = config.protocol.build(base_ctx, config.requested_accuracy);
                    let outcome = run_protocol(&data.trace, protocol, RunConfig::default());
                    *slot = Some((outcome.metrics, data.trace));
                }
            });
        }
    })
    .expect("fleet worker panicked");

    let mut per_object = Vec::with_capacity(config.objects);
    let mut traces = Vec::with_capacity(config.objects);
    for r in results {
        let (m, t) = r.expect("every object ran");
        per_object.push(m);
        traces.push(t);
    }
    let total_updates = per_object.iter().map(|m| m.updates).sum();
    let mean_updates_per_hour =
        per_object.iter().map(|m| m.updates_per_hour).sum::<f64>() / per_object.len() as f64;
    FleetResult { per_object, traces, total_updates, mean_updates_per_hour }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_runs_every_object_and_aggregates() {
        let config = FleetConfig {
            objects: 4,
            trip_length_m: 2_000.0,
            requested_accuracy: 150.0,
            protocol: ProtocolKind::MapBased,
            seed: 9,
        };
        let result = run_fleet(&config);
        assert_eq!(result.per_object.len(), 4);
        assert_eq!(result.traces.len(), 4);
        assert!(result.total_updates >= 4, "each object sends at least the initial update");
        assert!(result.mean_updates_per_hour > 0.0);
        // Objects drive different routes, so their traces differ.
        assert_ne!(
            result.traces[0].fixes.last().map(|f| f.position),
            result.traces[1].fixes.last().map(|f| f.position)
        );
    }

    #[test]
    fn map_based_fleet_sends_fewer_updates_than_distance_based_fleet() {
        let base = FleetConfig {
            objects: 3,
            trip_length_m: 2_500.0,
            requested_accuracy: 100.0,
            protocol: ProtocolKind::MapBased,
            seed: 11,
        };
        let map = run_fleet(&base);
        let dist = run_fleet(&FleetConfig { protocol: ProtocolKind::DistanceBased, ..base });
        assert!(
            map.total_updates < dist.total_updates,
            "map-based {} vs distance-based {}",
            map.total_updates,
            dist.total_updates
        );
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_fleet_is_rejected() {
        let _ = run_fleet(&FleetConfig { objects: 0, ..FleetConfig::default() });
    }
}
