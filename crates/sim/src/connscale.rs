//! The high-connection-count axis of the serving layer: thousands of
//! mostly-idle connections with a small hot subset.
//!
//! [`crate::net_workload`] measures wire throughput with a handful of busy
//! connections; this workload measures the dimension the reactor refactor
//! exists for — *connection count*. It opens `connections` loopback
//! sockets, leaves all but `hot_connections` of them completely idle, and
//! drives the hot subset through the usual ingest → flush → rect-query
//! cycle. The server must hold every idle connection on its **fixed**
//! thread pool (asserted via [`ConnScaleReport::pool_threads`] against the
//! observed [`ConnScaleReport::resident_threads`]) while the hot subset's
//! counts stay exact: an idle crowd that slowed, dropped or corrupted the
//! hot path would show up in the strictly-gated counters.
//!
//! Determinism contract (what `reproduce connscale --check` gates
//! strictly): update/frame counts, rect result counts, byte totals and the
//! thread accounting are all fixed by the seed; wall clocks, rates,
//! latencies and the readiness diagnostics are machine-dependent.

use mbdr_core::{Frame, ObjectState, StaticPredictor, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig};
use mbdr_net::{NetClient, NetServer, ServerConfig, ServerStatsSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Half-extent of the square world the hot objects live in, metres.
const WORLD_HALF_M: f64 = 5_000.0;

/// Configuration of a connection-scale run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnScaleConfig {
    /// Total concurrent connections (idle crowd + hot subset).
    pub connections: usize,
    /// Connections that actually stream updates (one object each).
    pub hot_connections: usize,
    /// Frames each hot connection sends.
    pub frames_per_hot: usize,
    /// Updates batched per frame.
    pub updates_per_frame: usize,
    /// Rect queries issued after the hot subset flushed.
    pub rect_queries: usize,
    /// Threads opening the idle crowd concurrently.
    pub opener_threads: usize,
    /// Reactor threads of the server under test.
    pub reactor_workers: usize,
    /// Ingest worker threads of the server under test.
    pub ingest_workers: usize,
    /// Shard count of the served location store.
    pub shards: usize,
    /// Random seed (object placement and query rectangles).
    pub seed: u64,
}

impl Default for ConnScaleConfig {
    fn default() -> Self {
        ConnScaleConfig {
            connections: 4096,
            hot_connections: 64,
            frames_per_hot: 32,
            updates_per_frame: 4,
            rect_queries: 256,
            opener_threads: 8,
            reactor_workers: 2,
            ingest_workers: 2,
            shards: 16,
            seed: 0xC0_55CA1E,
        }
    }
}

/// Outcome of a connection-scale run.
#[derive(Debug, Clone)]
pub struct ConnScaleReport {
    /// Total concurrent connections held open.
    pub connections: usize,
    /// Hot (streaming) connections among them.
    pub hot_connections: usize,
    /// Updates the hot subset generated.
    pub updates_sent: u64,
    /// Updates the server applied (must equal `updates_sent`).
    pub updates_applied: u64,
    /// Frames the hot subset sent.
    pub frames_sent: u64,
    /// Wall clock to open every connection, seconds.
    pub open_wall_s: f64,
    /// Connection-open throughput, connections per second.
    pub opens_per_sec: f64,
    /// Wall clock of the slowest hot driver (flush barrier included).
    pub ingest_wall_s: f64,
    /// Hot-subset ingest throughput, updates per second.
    pub updates_per_sec: f64,
    /// Rect queries issued.
    pub rect_queries: u64,
    /// Objects returned by those queries (seed-deterministic).
    pub rect_results: u64,
    /// Median rect round-trip latency with the idle crowd attached, ms.
    pub latency_p50_ms: f64,
    /// 99th-percentile rect round-trip latency, ms.
    pub latency_p99_ms: f64,
    /// The server's fixed pool size (accept + reactors + ingest workers).
    pub pool_threads: usize,
    /// OS threads of this process at full connection load (Linux: counted
    /// from `/proc/self/task`; 0 where unsupported). With every connection
    /// multiplexed, this stays at `pool_threads` plus the driver's own
    /// threads instead of growing with `connections`.
    pub resident_threads: usize,
    /// The server's counters at full load (before the crowd disconnects, so
    /// close accounting does not race the snapshot).
    pub server: ServerStatsSnapshot,
}

impl ConnScaleReport {
    /// Renders the report as one JSON object, consumed by
    /// `reproduce connscale`. Connection-close counters are deliberately
    /// absent: the snapshot is taken at full load, where they are zero by
    /// construction and would otherwise race the teardown.
    pub fn to_json(&self) -> String {
        let s = &self.server;
        format!(
            "{{\"connections\":{},\"hot_connections\":{},\"updates_sent\":{},\
             \"updates_applied\":{},\"frames_sent\":{},\"open_wall_s\":{:.4},\
             \"opens_per_sec\":{:.1},\"ingest_wall_s\":{:.4},\"updates_per_sec\":{:.1},\
             \"rect_queries\":{},\"rect_results\":{},\"latency_p50_ms\":{:.3},\
             \"latency_p99_ms\":{:.3},\"pool_threads\":{},\"resident_threads\":{},\
             \"server\":{{\"connections_accepted\":{},\"connections_dropped\":{},\
             \"frames_received\":{},\"updates_applied\":{},\"frame_decode_errors\":{},\
             \"request_decode_errors\":{},\"queries_answered\":{},\"bytes_received\":{},\
             \"bytes_sent\":{},\"evicted_slow\":{},\"backpressure_stalls\":{},\
             \"readiness_wakeups\":{},\"spurious_wakeups\":{},\"register_failures\":{}}}}}",
            self.connections,
            self.hot_connections,
            self.updates_sent,
            self.updates_applied,
            self.frames_sent,
            self.open_wall_s,
            self.opens_per_sec,
            self.ingest_wall_s,
            self.updates_per_sec,
            self.rect_queries,
            self.rect_results,
            self.latency_p50_ms,
            self.latency_p99_ms,
            self.pool_threads,
            self.resident_threads,
            s.connections_accepted,
            s.connections_dropped,
            s.frames_received,
            s.updates_applied,
            s.frame_decode_errors,
            s.request_decode_errors,
            s.queries_answered,
            s.bytes_received,
            s.bytes_sent,
            s.evicted_slow,
            s.backpressure_stalls,
            s.readiness_wakeups,
            s.spurious_wakeups,
            s.register_failures,
        )
    }
}

/// OS threads of this process (Linux `/proc/self/task`; 0 elsewhere).
pub fn resident_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|entries| entries.count()).unwrap_or(0)
}

/// The deterministic update script of one hot connection: `frames_per_hot`
/// frames for object `hot` walking a seeded path, sequences and timestamps
/// strictly increasing so every update is accepted.
pub fn hot_frames(config: &ConnScaleConfig, hot: usize) -> Vec<Frame> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (hot as u64 + 1).wrapping_mul(0x9E37_79B9));
    let mut x = rng.gen_range(-WORLD_HALF_M..WORLD_HALF_M);
    let mut y = rng.gen_range(-WORLD_HALF_M..WORLD_HALF_M);
    let mut sequence = 0u64;
    let mut frames = Vec::with_capacity(config.frames_per_hot);
    for f in 0..config.frames_per_hot {
        let mut updates = Vec::with_capacity(config.updates_per_frame);
        for u in 0..config.updates_per_frame {
            x = (x + rng.gen_range(-25.0..25.0)).clamp(-WORLD_HALF_M, WORLD_HALF_M);
            y = (y + rng.gen_range(-25.0..25.0)).clamp(-WORLD_HALF_M, WORLD_HALF_M);
            let t = (f * config.updates_per_frame + u) as f64;
            updates.push(Update {
                sequence,
                state: ObjectState::basic(Point::new(x, y), 0.0, 0.0, t),
                kind: UpdateKind::DeviationBound,
            });
            sequence += 1;
        }
        frames.push(Frame { source: hot as u64, updates });
    }
    frames
}

/// The instant the rect queries are pinned to (after the last update).
pub fn query_time(config: &ConnScaleConfig) -> f64 {
    (config.frames_per_hot * config.updates_per_frame) as f64
}

/// The seeded rect-query sequence the workload issues (exposed so tests can
/// replay the identical queries against a directly-driven service).
pub fn query_rects(config: &ConnScaleConfig) -> Vec<Aabb> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBADC_AB1E);
    (0..config.rect_queries)
        .map(|_| {
            let center = Point::new(
                rng.gen_range(-WORLD_HALF_M..WORLD_HALF_M),
                rng.gen_range(-WORLD_HALF_M..WORLD_HALF_M),
            );
            Aabb::around(center, rng.gen_range(200.0..2_500.0))
        })
        .collect()
}

/// Builds the served store with one registered object per hot connection.
pub fn build_service(config: &ConnScaleConfig) -> Arc<LocationService> {
    let service = Arc::new(LocationService::with_config(ServiceConfig {
        shards: config.shards,
        ..ServiceConfig::default()
    }));
    for hot in 0..config.hot_connections {
        service.register(ObjectId(hot as u64), Arc::new(StaticPredictor));
    }
    service
}

/// Runs the connection-scale workload over loopback.
pub fn run_connscale_workload(config: &ConnScaleConfig) -> ConnScaleReport {
    assert!(config.connections > 0, "workload needs at least one connection");
    assert!(config.hot_connections > 0, "workload needs at least one hot connection");
    assert!(
        config.hot_connections <= config.connections,
        "hot subset cannot exceed the connection count"
    );
    let service = build_service(config);
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            reactor_workers: config.reactor_workers,
            ingest_workers: config.ingest_workers,
            max_connections: config.connections + 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Phase 1: open the whole crowd. The first `hot_connections` clients
    // will stream; the rest sit idle for the entire run.
    let openers = config.opener_threads.max(1).min(config.connections);
    let opened_at = Instant::now();
    let mut clients: Vec<NetClient> = Vec::with_capacity(config.connections);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for o in 0..openers {
            let share = (config.connections + openers - 1 - o) / openers;
            handles.push(scope.spawn(move |_| {
                let mut batch = Vec::with_capacity(share);
                for _ in 0..share {
                    batch.push(NetClient::connect(addr).expect("crowd connects"));
                }
                batch
            }));
        }
        for handle in handles {
            clients.extend(handle.join().expect("opener panicked"));
        }
    })
    .expect("opener scope panicked");
    let open_wall_s = opened_at.elapsed().as_secs_f64().max(1e-9);

    // The whole crowd is connected: this is the moment the fixed-pool claim
    // is about.
    let resident_threads = resident_thread_count();

    // Phase 2: drive the hot subset (flush barrier per connection).
    let mut hot: Vec<NetClient> = clients.drain(..config.hot_connections).collect();
    let drivers = config.hot_connections.clamp(1, 8);
    let per_driver = config.hot_connections.div_ceil(drivers);
    let mut applied_total = 0u64;
    let mut frames_total = 0u64;
    let mut walls: Vec<f64> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (d, chunk) in hot.chunks_mut(per_driver).enumerate() {
            let base = d * per_driver;
            handles.push(scope.spawn(move |_| {
                let started = Instant::now();
                let mut applied = 0u64;
                let mut frames = 0u64;
                for (i, client) in chunk.iter_mut().enumerate() {
                    for frame in hot_frames(config, base + i) {
                        client.send_frame(&frame).expect("hot send");
                        frames += 1;
                    }
                    let flush = client.flush().expect("hot flush");
                    assert_eq!(flush.frames, config.frames_per_hot as u64);
                    applied += flush.updates_applied;
                }
                (applied, frames, started.elapsed().as_secs_f64())
            }));
        }
        for handle in handles {
            let (applied, frames, wall) = handle.join().expect("hot driver panicked");
            applied_total += applied;
            frames_total += frames;
            walls.push(wall);
        }
    })
    .expect("hot scope panicked");
    let ingest_wall_s = walls.iter().copied().fold(0.0, f64::max).max(1e-9);

    // Phase 3: rect queries at the pinned instant, idle crowd still attached.
    let t_q = query_time(config);
    let mut query_client = NetClient::connect(addr).expect("query connects");
    let mut records = Vec::new();
    let mut latencies: Vec<f64> = Vec::with_capacity(config.rect_queries);
    let mut rect_results = 0u64;
    for area in query_rects(config) {
        let at = Instant::now();
        query_client.objects_in_rect_into(&area, t_q, &mut records).expect("rect query");
        latencies.push(at.elapsed().as_secs_f64() * 1e3);
        rect_results += records.len() as u64;
    }
    latencies.sort_by(f64::total_cmp);

    // Snapshot at full load, then let everything go.
    let stats = server.stats();
    let updates_sent =
        (config.hot_connections * config.frames_per_hot * config.updates_per_frame) as u64;
    let pool_threads = server.pool_threads();
    drop(query_client);
    drop(hot);
    drop(clients);
    drop(server);

    let p = |q: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            let index = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[index.min(latencies.len() - 1)]
        }
    };
    ConnScaleReport {
        connections: config.connections,
        hot_connections: config.hot_connections,
        updates_sent,
        updates_applied: applied_total,
        frames_sent: frames_total,
        open_wall_s,
        opens_per_sec: config.connections as f64 / open_wall_s,
        ingest_wall_s,
        updates_per_sec: applied_total as f64 / ingest_wall_s,
        rect_queries: config.rect_queries as u64,
        rect_results,
        latency_p50_ms: p(0.50),
        latency_p99_ms: p(0.99),
        pool_threads,
        resident_threads,
        server: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ConnScaleConfig {
        ConnScaleConfig {
            connections: 96,
            hot_connections: 8,
            frames_per_hot: 6,
            updates_per_frame: 3,
            rect_queries: 32,
            opener_threads: 4,
            ..ConnScaleConfig::default()
        }
    }

    #[test]
    fn connscale_holds_the_crowd_and_keeps_hot_counts_exact() {
        let config = small_config();
        let report = run_connscale_workload(&config);
        assert_eq!(report.connections, 96);
        assert_eq!(report.updates_sent, 8 * 6 * 3);
        assert_eq!(report.updates_applied, report.updates_sent, "no update lost");
        assert_eq!(report.frames_sent, 8 * 6);
        assert_eq!(report.server.frames_received, report.frames_sent);
        assert_eq!(report.server.connections_accepted, 96 + 1, "crowd + query connection");
        assert_eq!(report.server.connections_dropped, 0);
        assert_eq!(report.server.register_failures, 0);
        assert_eq!(report.server.evicted_slow, 0);
        assert_eq!(report.rect_queries, 32);
        assert_eq!(report.pool_threads, 1 + 2 + 2);
        assert!(report.opens_per_sec > 0.0);
    }

    #[test]
    fn connscale_results_are_deterministic_and_json_is_well_formed() {
        let config = small_config();
        let (a, b) = (run_connscale_workload(&config), run_connscale_workload(&config));
        assert_eq!(a.rect_results, b.rect_results);
        assert_eq!(a.server.bytes_received, b.server.bytes_received);
        assert_eq!(a.server.bytes_sent, b.server.bytes_sent);
        let json = a.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pool_threads\":5"));
        assert!(json.contains("\"server\":{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    #[should_panic(expected = "hot subset cannot exceed")]
    fn oversized_hot_subset_is_rejected() {
        let _ = run_connscale_workload(&ConnScaleConfig {
            connections: 4,
            hot_connections: 8,
            ..small_config()
        });
    }
}
