//! # mbdr-sim — the tracking simulator
//!
//! The paper evaluates its protocols by simulating a mobile object from
//! recorded traces and counting the update messages each protocol needs while
//! checking the accuracy actually delivered at the server (Section 4). This
//! crate is that simulator:
//!
//! * [`runner`] — runs one protocol over one trace: feeds every sensor fix to
//!   the source protocol, ships resulting updates over a [`channel`] with cost
//!   accounting, applies them to the server-side tracker, and samples the
//!   server's predicted position against the ground truth.
//! * [`metrics`] — what comes out: update counts, updates per hour, payload
//!   bytes, and the distribution of the server-side deviation.
//! * [`sweep`] — the experiment driver: a grid of (scenario × protocol ×
//!   requested accuracy) runs, executed in parallel with crossbeam scoped
//!   threads, producing the data behind Figures 7–10.
//! * [`degraded`] — the lossy-link channel model: a [`channel::MessageChannel`]
//!   carrying encoded frames that are dropped, duplicated, jittered and
//!   reordered under a seeded RNG, with per-cause statistics.
//! * [`lossy`] — the loss-rate sweep over the degraded link: encode → channel
//!   → decode → apply, reporting accuracy degradation and message overhead as
//!   functions of the loss rate (`reproduce wire` emits its JSON baseline).
//! * [`faultplan`] — the seeded disk-outage schedule: `(total_frames, seed)`
//!   → one deterministic kill/heal window, the pure-function contract behind
//!   `reproduce faults` (the fsync-kill must be reproducible from the seed
//!   alone).
//! * [`fleet`] — many objects tracked concurrently against one shared map
//!   (the location-service workload of the paper's introduction).
//! * [`service_workload`] — the whole fleet replayed against one shared,
//!   sharded [`mbdr_locserver::LocationService`]: concurrent producer threads
//!   ingesting updates while query threads issue the motivating range /
//!   nearest / zone queries, measuring ingest throughput, query throughput
//!   and query-observed accuracy.
//! * [`scale_workload`] — the million-object axis: synthetic fleets placed
//!   uniformly or with Zipf hotspot skew, ingested in full-fleet rounds and
//!   queried with rect / nearest traffic, measuring the spatial data plane
//!   at N up to 10⁶ (`reproduce scale` emits its baseline).
//! * [`net_workload`] — the same fleet driven over real loopback TCP through
//!   `mbdr_net`'s serving layer: producer connections stream encoded frames,
//!   query connections issue the binary query protocol, and the report adds
//!   p50/p99 query round-trip latency (`reproduce net` emits its baseline).
//! * [`connscale`] — the connection-count axis: thousands of mostly-idle
//!   TCP connections held on the server's fixed reactor pool while a small
//!   hot subset streams and queries (`reproduce connscale` emits its
//!   baseline).
//! * [`report`] — plain-text table/CSV rendering of the results.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod channel;
pub mod connscale;
pub mod degraded;
pub mod faultplan;
pub mod fleet;
pub mod lossy;
pub mod metrics;
pub mod net_workload;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod scale_workload;
pub mod service_workload;
pub mod sweep;

pub use channel::{MessageChannel, WirePayload};
pub use connscale::{run_connscale_workload, ConnScaleConfig, ConnScaleReport};
pub use degraded::{DegradedChannel, LinkConfig, LinkStats};
pub use faultplan::FaultPlan;
pub use fleet::{FleetConfig, FleetResult};
pub use lossy::{run_loss_sweep, LossPoint, LossSweepConfig, LossSweepResult};
pub use metrics::{DeviationStats, RunMetrics};
pub use net_workload::{run_net_workload, NetWorkloadConfig, NetWorkloadReport};
pub use protocols::ProtocolKind;
pub use report::{render_csv, render_json, render_table};
pub use runner::{run_protocol, RunConfig};
pub use scale_workload::{run_scale_workload, ScaleConfig, ScaleReport};
pub use service_workload::{run_service_workload, QueryMix, WorkloadConfig, WorkloadReport};
pub use sweep::{sweep_scenario, SweepPoint, SweepResult};
