//! The seeded disk-outage schedule behind `reproduce faults`.
//!
//! A [`FaultPlan`] turns `(total_frames, seed)` into one deterministic
//! outage window: the disk dies just before frame `kill_frame` is journaled
//! and heals just before frame `heal_frame`. Deriving the window from the
//! seed (instead of hard-coding it) keeps the fault workload honest — the
//! acceptance criterion is that the seeded fsync-kill is reproducible from
//! the seed alone, so the schedule must be a pure function of it. The same
//! SplitMix64 mixer as the journal's own fault scheduler is used, so one
//! seed word drives both layers identically across runs.

/// One deterministic disk-outage window over a frame schedule.
///
/// Invariants (guaranteed by [`FaultPlan::derive`] for `total_frames >= 8`):
/// `0 < kill_frame < heal_frame < total_frames`, so every run has a durable
/// prefix, a degraded window, and a durable tail to journal after recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Frame index whose journal append is the first to fail (the disk dies
    /// immediately before this frame is recorded).
    pub kill_frame: u64,
    /// Frame index at which the disk heals (this frame and everything after
    /// it journals again once the probe repairs durability).
    pub heal_frame: u64,
}

impl FaultPlan {
    /// Derives the outage window for a schedule of `total_frames` frames.
    ///
    /// The kill lands in the second quarter of the schedule and the window
    /// spans between one eighth and one quarter of it, clamped so a durable
    /// tail of at least one eighth always remains. Pure in `(total_frames,
    /// seed)`: same inputs, same window, on every machine.
    pub fn derive(total_frames: u64, seed: u64) -> FaultPlan {
        // Fold the schedule length into the mixer state so that nearby
        // lengths land in different windows even when they share the same
        // quarter/eighth buckets below.
        let mut state = seed ^ total_frames.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let eighth = (total_frames / 8).max(1);
        let quarter = (total_frames / 4).max(1);
        let kill_frame = quarter + splitmix64(&mut state) % quarter;
        let window = eighth + splitmix64(&mut state) % eighth;
        let latest_heal = total_frames.saturating_sub(eighth).max(kill_frame + 1);
        let heal_frame = (kill_frame + window).min(latest_heal);
        FaultPlan { kill_frame, heal_frame }
    }

    /// Frames acknowledged inside the outage window (`heal - kill`): the
    /// exact number of applies the server must count as degraded.
    pub fn degraded_frames(&self) -> u64 {
        self.heal_frame - self.kill_frame
    }
}

/// SplitMix64: the statelessly-seedable mixer used across the workspace for
/// schedule derivation (identical constants to the journal's fault seeder).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_a_pure_function_of_frames_and_seed() {
        let a = FaultPlan::derive(1280, 2001);
        let b = FaultPlan::derive(1280, 2001);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::derive(1280, 2002), "seed must matter");
        assert_ne!(a, FaultPlan::derive(1281, 2001), "schedule length must matter");
    }

    #[test]
    fn window_invariants_hold_across_seeds_and_sizes() {
        for total in [8u64, 12, 100, 160, 1280, 99_991] {
            for seed in 0..64u64 {
                let plan = FaultPlan::derive(total, seed);
                assert!(plan.kill_frame > 0, "{total}/{seed}: durable prefix required");
                assert!(plan.kill_frame < plan.heal_frame, "{total}/{seed}: window non-empty");
                assert!(plan.heal_frame < total, "{total}/{seed}: durable tail required");
                assert_eq!(plan.degraded_frames(), plan.heal_frame - plan.kill_frame);
            }
        }
    }
}
