//! Running one protocol over one trace.

use crate::channel::MessageChannel;
use crate::metrics::{DeviationStats, RunMetrics};
use mbdr_core::{ServerTracker, Sighting, Update, UpdateProtocol};
use mbdr_trace::Trace;

/// Configuration of a single protocol run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// One-way source→server latency, seconds (0 reproduces the paper's
    /// idealised setting).
    pub channel_latency: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { channel_latency: 0.0 }
    }
}

/// The full outcome of a run: the aggregate metrics plus the update log
/// (used by the Fig. 3 / Fig. 6 style "where were updates sent" analysis).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregate metrics.
    pub metrics: RunMetrics,
    /// Every update the source sent, in order.
    pub updates: Vec<Update>,
}

/// Feeds a trace through a source protocol and the server tracker, measuring
/// update traffic and server-side accuracy.
///
/// For every sensor fix the source decides whether to send an update; updates
/// travel over the channel and are applied to the server. After processing the
/// fix, the server's predicted position is compared against the ground truth
/// at that instant — that deviation is what the requested accuracy `u_s`
/// bounds.
pub fn run_protocol(
    trace: &Trace,
    mut protocol: Box<dyn UpdateProtocol>,
    config: RunConfig,
) -> RunOutcome {
    let protocol_config = protocol.config();
    let mut channel = MessageChannel::new(config.channel_latency);
    let mut server = ServerTracker::new(protocol.predictor());
    let mut deviations = Vec::with_capacity(trace.len());
    let mut updates = Vec::new();

    for (fix, truth) in trace.fixes.iter().zip(trace.ground_truth.iter()) {
        let sighting = Sighting { t: fix.t, position: fix.position, accuracy: fix.accuracy };
        if let Some(update) = protocol.on_sighting(sighting) {
            channel.send(fix.t, update);
            updates.push(update);
        }
        for delivered in channel.deliver_until(fix.t) {
            server.apply(&delivered);
        }
        if let Some(predicted) = server.position_at(fix.t) {
            deviations.push(predicted.distance(&truth.position));
        }
    }

    let duration = trace.duration();
    let stats = channel.stats();
    // The guarantee is u_s on top of what the sensor itself cannot see (u_p);
    // a small numerical slack avoids counting boundary-equal samples.
    let allowance = protocol_config.requested_accuracy
        + trace.fixes.first().map(|f| f.accuracy).unwrap_or(0.0)
        + 1.0;
    let metrics = RunMetrics {
        protocol: protocol.name().to_string(),
        requested_accuracy: protocol_config.requested_accuracy,
        updates: stats.messages,
        payload_bytes: stats.payload_bytes,
        duration_s: duration,
        updates_per_hour: RunMetrics::rate_per_hour(stats.messages, duration),
        deviation: DeviationStats::from_samples(deviations, allowance),
    };
    RunOutcome { metrics, updates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{ProtocolContext, ProtocolKind};
    use mbdr_trace::{Scenario, ScenarioKind};

    fn quick_city() -> mbdr_trace::ScenarioData {
        Scenario { kind: ScenarioKind::City, scale: 0.05, seed: 7 }.build()
    }

    #[test]
    fn run_produces_consistent_metrics() {
        let data = quick_city();
        let ctx = ProtocolContext::for_scenario(&data);
        let outcome = run_protocol(
            &data.trace,
            ProtocolKind::Linear.build(&ctx, 100.0),
            RunConfig::default(),
        );
        let m = &outcome.metrics;
        assert!(m.updates >= 1);
        assert_eq!(m.updates as usize, outcome.updates.len());
        assert!(m.payload_bytes > 0);
        assert!((m.duration_s - data.trace.duration()).abs() < 1e-9);
        assert!(m.updates_per_hour > 0.0);
        assert_eq!(m.requested_accuracy, 100.0);
        assert_eq!(m.deviation.samples, data.trace.len());
    }

    #[test]
    fn accuracy_guarantee_holds_for_the_dead_reckoning_protocols() {
        let data = quick_city();
        let ctx = ProtocolContext::for_scenario(&data);
        for kind in [ProtocolKind::DistanceBased, ProtocolKind::Linear, ProtocolKind::MapBased] {
            let outcome = run_protocol(&data.trace, kind.build(&ctx, 100.0), RunConfig::default());
            let violations = outcome.metrics.deviation.bound_violations;
            let samples = outcome.metrics.deviation.samples;
            // The bound is checked against the *sensed* position at 1 Hz, so the
            // true deviation can exceed it only by the GPS error and by what
            // accumulates within one second; allow a tiny violation fraction.
            assert!(
                violations as f64 <= samples as f64 * 0.01,
                "{kind:?}: {violations}/{samples} samples violated the bound"
            );
        }
    }

    #[test]
    fn delayed_channel_delivers_in_send_order_and_server_applies_every_update() {
        // The non-idealised setting: every update crosses a 3 s uplink. The
        // channel must hand updates to the server in exactly the order they
        // were sent, and by the end of the trace the server must have applied
        // every update that had time to arrive (in-flight leftovers are the
        // only permissible gap).
        use crate::channel::MessageChannel;
        use mbdr_core::ServerTracker;

        let data = quick_city();
        let ctx = ProtocolContext::for_scenario(&data);
        let outcome = run_protocol(
            &data.trace,
            ProtocolKind::Linear.build(&ctx, 100.0),
            RunConfig { channel_latency: 3.0 },
        );
        // Replay the same updates through a fresh channel and tracker,
        // checking ordering at every delivery instant.
        let mut channel = MessageChannel::new(3.0);
        let mut server = ServerTracker::new(std::sync::Arc::new(mbdr_core::LinearPredictor));
        let mut last_sequence = None;
        let end = data.trace.fixes.last().unwrap().t;
        for update in &outcome.updates {
            channel.send(update.state.timestamp, *update);
        }
        for delivered in channel.deliver_until(end) {
            assert!(last_sequence < Some(delivered.sequence), "strictly ascending sequences");
            last_sequence = Some(delivered.sequence);
            server.apply(&delivered);
        }
        let undelivered = channel.in_flight() as u64;
        assert_eq!(
            server.updates_applied() + undelivered,
            outcome.metrics.updates,
            "everything sent is either applied or still in flight at trace end"
        );
        assert!(
            undelivered as f64 <= 3.0 + 1.0,
            "at 3 s latency at most the last few updates can be in flight"
        );
    }

    #[test]
    fn reordered_paths_cannot_roll_the_server_back() {
        // Two network paths with different latencies deliver out of order:
        // the newer update (seq 1) overtakes the older one (seq 0). The
        // server tracker must reject the stale arrival.
        use crate::channel::MessageChannel;
        use mbdr_core::{ObjectState, ServerTracker, Update, UpdateKind};
        use mbdr_geo::Point;

        let make = |seq: u64, t: f64, x: f64| Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(x, 0.0), 5.0, 0.0, t),
            kind: UpdateKind::DeviationBound,
        };
        let mut slow = MessageChannel::new(10.0);
        let mut fast = MessageChannel::new(1.0);
        let mut server = ServerTracker::new(std::sync::Arc::new(mbdr_core::LinearPredictor));
        slow.send(0.0, make(0, 0.0, 0.0)); // arrives at t = 10
        fast.send(2.0, make(1, 2.0, 100.0)); // arrives at t = 3
        for t in [3.0, 12.0] {
            for u in fast.deliver_until(t) {
                server.apply(&u);
            }
            for u in slow.deliver_until(t) {
                server.apply(&u);
            }
        }
        assert_eq!(server.updates_applied(), 1, "the stale seq-0 arrival is dropped");
        assert_eq!(server.last_state().unwrap().position.x, 100.0, "seq 1 remains current");
        // Equal sequence numbers (a duplicate delivery) are dropped too.
        server.apply(&make(1, 2.0, 555.0));
        assert_eq!(server.updates_applied(), 1);
        assert_eq!(server.last_state().unwrap().position.x, 100.0);
    }

    #[test]
    fn channel_latency_is_tolerated() {
        let data = quick_city();
        let ctx = ProtocolContext::for_scenario(&data);
        let ideal = run_protocol(
            &data.trace,
            ProtocolKind::MapBased.build(&ctx, 100.0),
            RunConfig::default(),
        );
        let delayed = run_protocol(
            &data.trace,
            ProtocolKind::MapBased.build(&ctx, 100.0),
            RunConfig { channel_latency: 2.0 },
        );
        // Latency does not change what the source sends, only when the server
        // learns about it — so the update count matches and the deviation can
        // only grow.
        assert_eq!(ideal.metrics.updates, delayed.metrics.updates);
        assert!(delayed.metrics.deviation.mean >= ideal.metrics.deviation.mean - 1e-9);
    }
}
