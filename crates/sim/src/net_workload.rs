//! The TCP serving-layer workload: the fleet's update streams and the
//! motivating queries driven over real loopback sockets.
//!
//! [`crate::service_workload`] measures the sharded store with in-process
//! calls; this module measures the same store behind `mbdr_net`'s serving
//! layer — every update crosses a socket as an encoded frame and every query
//! is a request–response round trip, so the reported numbers include codec,
//! framing, kernel and queueing costs.
//!
//! ## Phases
//!
//! 1. **Ingest**: `producer_connections` threads each open one
//!    [`NetClient`], stream their share of the fleet's protocol-generated
//!    updates as frames of up to `frame_batch` updates (timestamp order per
//!    object, so every update is accepted), and end with a
//!    [`NetClient::flush`] barrier. Ingest throughput is total applied
//!    updates over the slowest producer's wall clock — flush included, so
//!    queue drain time is charged.
//! 2. **Query**: `query_connections` threads each open their own connection,
//!    subscribe two zones, and issue a seeded mix of rect / nearest / zone
//!    polls at the fixed query time `t = virtual_duration`. Per-query
//!    latency is measured around the full round trip.
//!
//! Because the query phase starts only after every producer flushed and
//! always queries the same instant, the *result counts* (objects returned,
//! zone events) are deterministic for a given seed — which is what lets
//! `reproduce net --check` gate them strictly while treating throughput and
//! latency as machine-dependent.

use crate::protocols::ProtocolKind;
use crate::service_workload::build_scripts;
use mbdr_core::Frame;
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ServiceConfig};
use mbdr_net::{NetClient, NetServer, ServerConfig, ServerStatsSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a serving-layer workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetWorkloadConfig {
    /// Fleet size.
    pub objects: usize,
    /// Producer connections streaming frames.
    pub producer_connections: usize,
    /// Query connections issuing the rect / nearest / zone mix.
    pub query_connections: usize,
    /// Queries each query connection issues (exact, for deterministic
    /// counts).
    pub queries_per_connection: usize,
    /// Updates batched per frame.
    pub frame_batch: usize,
    /// Shard count of the served location store.
    pub shards: usize,
    /// Ingest worker threads of the server.
    pub ingest_workers: usize,
    /// Trip length per vehicle, metres.
    pub trip_length_m: f64,
    /// Requested accuracy `u_s`, metres.
    pub requested_accuracy: f64,
    /// Update protocol every vehicle runs.
    pub protocol: ProtocolKind,
    /// Random seed.
    pub seed: u64,
}

impl Default for NetWorkloadConfig {
    fn default() -> Self {
        NetWorkloadConfig {
            objects: 48,
            producer_connections: 4,
            query_connections: 4,
            queries_per_connection: 200,
            frame_batch: 8,
            shards: 16,
            ingest_workers: 2,
            trip_length_m: 1_500.0,
            requested_accuracy: 100.0,
            protocol: ProtocolKind::MapBased,
            seed: 0x7CB_BEEF,
        }
    }
}

/// Outcome of a serving-layer workload run.
#[derive(Debug, Clone)]
pub struct NetWorkloadReport {
    /// Fleet size.
    pub objects: usize,
    /// Producer connection count.
    pub producer_connections: usize,
    /// Query connection count.
    pub query_connections: usize,
    /// Updates batched per frame.
    pub frame_batch: usize,
    /// Virtual (simulated) duration of the replayed traffic, seconds.
    pub virtual_duration_s: f64,
    /// Updates the protocols generated.
    pub updates_sent: u64,
    /// Frames the producers put on the wire.
    pub frames_sent: u64,
    /// Updates the server applied (equals `updates_sent` — asserted by the
    /// tests: TCP is reliable and per-object streams are in order).
    pub updates_applied: u64,
    /// Wall clock of the slowest producer, flush barrier included, seconds.
    pub ingest_wall_s: f64,
    /// Ingest throughput over the wire, updates per second.
    pub updates_per_sec: f64,
    /// Queries issued (exactly `query_connections · queries_per_connection`).
    pub queries_issued: u64,
    /// Rect queries issued.
    pub rect_queries: u64,
    /// Nearest queries issued.
    pub nearest_queries: u64,
    /// Zone polls issued.
    pub zone_polls: u64,
    /// Objects returned by rect queries.
    pub rect_results: u64,
    /// Objects returned by nearest queries.
    pub nearest_results: u64,
    /// Zone enter/leave events received.
    pub zone_events: u64,
    /// Wall clock of the slowest query connection, seconds.
    pub query_wall_s: f64,
    /// Query throughput over the wire, queries per second.
    pub queries_per_sec: f64,
    /// Median query round-trip latency, milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile query round-trip latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Bytes the clients put on the wire (length prefixes included).
    pub client_bytes_sent: u64,
    /// The server's final counters.
    pub server: ServerStatsSnapshot,
}

impl NetWorkloadReport {
    /// Renders the report as one JSON object (hand-written like the other
    /// baselines), consumed by `reproduce net`.
    pub fn to_json(&self) -> String {
        let s = &self.server;
        format!(
            "{{\"objects\":{},\"producer_connections\":{},\"query_connections\":{},\
             \"frame_batch\":{},\"virtual_duration_s\":{:.1},\"updates_sent\":{},\
             \"frames_sent\":{},\"updates_applied\":{},\"ingest_wall_s\":{:.4},\
             \"updates_per_sec\":{:.1},\"queries_issued\":{},\"rect_queries\":{},\
             \"nearest_queries\":{},\"zone_polls\":{},\"rect_results\":{},\
             \"nearest_results\":{},\"zone_events\":{},\"query_wall_s\":{:.4},\
             \"queries_per_sec\":{:.1},\"latency_p50_ms\":{:.3},\"latency_p99_ms\":{:.3},\
             \"client_bytes_sent\":{},\"server\":{{\"connections_accepted\":{},\
             \"connections_closed\":{},\"connections_dropped\":{},\"frames_received\":{},\
             \"updates_applied\":{},\"frame_decode_errors\":{},\"request_decode_errors\":{},\
             \"oversized_messages\":{},\"queries_answered\":{},\"zone_events_emitted\":{},\
             \"bytes_received\":{},\"bytes_sent\":{},\"evicted_slow\":{},\
             \"backpressure_stalls\":{},\"readiness_wakeups\":{},\"spurious_wakeups\":{},\
             \"register_failures\":{}}}}}",
            self.objects,
            self.producer_connections,
            self.query_connections,
            self.frame_batch,
            self.virtual_duration_s,
            self.updates_sent,
            self.frames_sent,
            self.updates_applied,
            self.ingest_wall_s,
            self.updates_per_sec,
            self.queries_issued,
            self.rect_queries,
            self.nearest_queries,
            self.zone_polls,
            self.rect_results,
            self.nearest_results,
            self.zone_events,
            self.query_wall_s,
            self.queries_per_sec,
            self.latency_p50_ms,
            self.latency_p99_ms,
            self.client_bytes_sent,
            s.connections_accepted,
            s.connections_closed,
            s.connections_dropped,
            s.frames_received,
            s.updates_applied,
            s.frame_decode_errors,
            s.request_decode_errors,
            s.oversized_messages,
            s.queries_answered,
            s.zone_events_emitted,
            s.bytes_received,
            s.bytes_sent,
            s.evicted_slow,
            s.backpressure_stalls,
            s.readiness_wakeups,
            s.spurious_wakeups,
            s.register_failures,
        )
    }
}

/// Per-query-connection tallies.
#[derive(Default, Clone)]
struct QueryTally {
    rect: u64,
    nearest: u64,
    zone: u64,
    rect_results: u64,
    nearest_results: u64,
    zone_events: u64,
    latencies_ms: Vec<f64>,
    bytes_sent: u64,
    wall_s: f64,
}

/// Bounded wait for the server to observe every client's clean close. The
/// reactor processes peer FINs asynchronously, so a snapshot taken right
/// after the last client dropped could miss closes still in flight — and
/// the baselines gate `connections_closed` strictly.
pub(crate) fn await_clean_closes(server: &mbdr_net::NetServer, expected: u64) {
    let deadline = Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().connections_closed < expected && Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// The `q`-th sorted sample (nearest-rank on the closed interval).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let index = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[index.min(sorted_ms.len() - 1)]
}

/// Runs the whole serving-layer workload over loopback.
pub fn run_net_workload(config: &NetWorkloadConfig) -> NetWorkloadReport {
    assert!(config.objects > 0, "workload needs at least one object");
    assert!(config.producer_connections > 0, "workload needs at least one producer connection");
    assert!(config.query_connections > 0, "workload needs at least one query connection");
    assert!(config.frame_batch > 0, "frames must carry at least one update");
    let (base, scripts) = build_scripts(
        config.objects,
        config.trip_length_m,
        config.requested_accuracy,
        config.protocol,
        config.seed,
    );
    let service = Arc::new(LocationService::with_config(ServiceConfig {
        shards: config.shards,
        slack_m: config.requested_accuracy,
        ..ServiceConfig::default()
    }));
    for script in &scripts {
        service.register(script.id, Arc::clone(&script.predictor));
    }
    let updates_sent: u64 = scripts.iter().map(|s| s.updates.len() as u64).sum();
    let virtual_duration = scripts.iter().map(|s| s.trace.duration()).fold(0.0, f64::max).max(1.0);
    let map_bounds =
        base.network.bounding_box().unwrap_or_else(|| Aabb::around(Point::ORIGIN, 1_000.0));

    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig { ingest_workers: config.ingest_workers, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Phase 1: concurrent producer connections, round-robin fleet partition.
    let mut ingest_results: Vec<(u64, u64, u64, f64)> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..config.producer_connections {
            let scripts = &scripts;
            handles.push(scope.spawn(move |_| {
                let mut client = NetClient::connect(addr).expect("producer connects");
                let started = Instant::now();
                let mut frames = 0u64;
                for script in scripts.iter().skip(p).step_by(config.producer_connections) {
                    for chunk in script.updates.chunks(config.frame_batch) {
                        let frame = Frame { source: script.id.0, updates: chunk.to_vec() };
                        client.send_frame(&frame).expect("producer sends");
                        frames += 1;
                    }
                }
                let flush = client.flush().expect("flush barrier");
                assert_eq!(flush.frames, frames, "server saw every frame");
                (
                    frames,
                    flush.updates_applied,
                    client.bytes_sent(),
                    started.elapsed().as_secs_f64(),
                )
            }));
        }
        for handle in handles {
            ingest_results.push(handle.join().expect("producer connection panicked"));
        }
    })
    .expect("producer scope panicked");

    let frames_sent: u64 = ingest_results.iter().map(|r| r.0).sum();
    let updates_applied: u64 = ingest_results.iter().map(|r| r.1).sum();
    let ingest_wall_s = ingest_results.iter().map(|r| r.3).fold(0.0, f64::max).max(1e-9);

    // Phase 2: concurrent query connections at the fixed post-ingest instant.
    let t_q = virtual_duration;
    let mut query_results: Vec<QueryTally> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for q in 0..config.query_connections {
            handles.push(scope.spawn(move |_| {
                let mut client = NetClient::connect(addr).expect("query connection connects");
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ (q as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
                );
                let center = map_bounds.center();
                client
                    .subscribe_zone(0, &Aabb::new(map_bounds.min, center))
                    .expect("subscribe sw zone");
                client
                    .subscribe_zone(1, &Aabb::new(center, map_bounds.max))
                    .expect("subscribe ne zone");
                let span_x = map_bounds.max.x - map_bounds.min.x;
                let span_y = map_bounds.max.y - map_bounds.min.y;
                let mut tally = QueryTally::default();
                // One reusable record buffer per connection: the rect and
                // nearest answers decode into it without allocating per
                // response (the server side reuses its buffers too).
                let mut records = Vec::new();
                let started = Instant::now();
                for _ in 0..config.queries_per_connection {
                    let p = Point::new(
                        map_bounds.min.x + rng.gen_range(0.0..1.0) * span_x,
                        map_bounds.min.y + rng.gen_range(0.0..1.0) * span_y,
                    );
                    let draw = rng.gen_range(0u32..3);
                    let at = Instant::now();
                    match draw {
                        0 => {
                            let area = Aabb::around(p, rng.gen_range(100.0..1_200.0));
                            tally.rect += 1;
                            client
                                .objects_in_rect_into(&area, t_q, &mut records)
                                .expect("rect query");
                            tally.rect_results += records.len() as u64;
                        }
                        1 => {
                            let k = rng.gen_range(1u16..8);
                            tally.nearest += 1;
                            client
                                .nearest_objects_into(&p, t_q, k, &mut records)
                                .expect("nearest query");
                            tally.nearest_results += records.len() as u64;
                        }
                        _ => {
                            tally.zone += 1;
                            tally.zone_events +=
                                client.poll_zones(t_q).expect("zone poll").len() as u64;
                        }
                    }
                    tally.latencies_ms.push(at.elapsed().as_secs_f64() * 1e3);
                }
                tally.wall_s = started.elapsed().as_secs_f64();
                tally.bytes_sent = client.bytes_sent();
                tally
            }));
        }
        for handle in handles {
            query_results.push(handle.join().expect("query connection panicked"));
        }
    })
    .expect("query scope panicked");

    let queries_issued = (config.query_connections * config.queries_per_connection) as u64;
    let query_wall_s = query_results.iter().map(|t| t.wall_s).fold(0.0, f64::max).max(1e-9);
    let mut latencies: Vec<f64> =
        query_results.iter().flat_map(|t| t.latencies_ms.iter().copied()).collect();
    latencies.sort_by(f64::total_cmp);
    let client_bytes_sent = ingest_results.iter().map(|r| r.2).sum::<u64>()
        + query_results.iter().map(|t| t.bytes_sent).sum::<u64>();

    await_clean_closes(&server, (config.producer_connections + config.query_connections) as u64);
    let server_stats = server.shutdown();
    NetWorkloadReport {
        objects: config.objects,
        producer_connections: config.producer_connections,
        query_connections: config.query_connections,
        frame_batch: config.frame_batch,
        virtual_duration_s: virtual_duration,
        updates_sent,
        frames_sent,
        updates_applied,
        ingest_wall_s,
        updates_per_sec: updates_applied as f64 / ingest_wall_s,
        queries_issued,
        rect_queries: query_results.iter().map(|t| t.rect).sum(),
        nearest_queries: query_results.iter().map(|t| t.nearest).sum(),
        zone_polls: query_results.iter().map(|t| t.zone).sum(),
        rect_results: query_results.iter().map(|t| t.rect_results).sum(),
        nearest_results: query_results.iter().map(|t| t.nearest_results).sum(),
        zone_events: query_results.iter().map(|t| t.zone_events).sum(),
        query_wall_s,
        queries_per_sec: queries_issued as f64 / query_wall_s,
        latency_p50_ms: percentile(&latencies, 0.50),
        latency_p99_ms: percentile(&latencies, 0.99),
        client_bytes_sent,
        server: server_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NetWorkloadConfig {
        NetWorkloadConfig {
            objects: 12,
            producer_connections: 3,
            query_connections: 2,
            queries_per_connection: 30,
            trip_length_m: 400.0,
            ..NetWorkloadConfig::default()
        }
    }

    #[test]
    fn net_workload_completes_with_exact_counts() {
        let report = run_net_workload(&small_config());
        assert_eq!(report.objects, 12);
        assert_eq!(report.updates_applied, report.updates_sent, "no update lost on TCP");
        assert_eq!(report.server.frames_received, report.frames_sent);
        assert_eq!(report.server.updates_applied, report.updates_applied);
        assert_eq!(report.queries_issued, 2 * 30);
        assert_eq!(
            report.rect_queries + report.nearest_queries + report.zone_polls,
            report.queries_issued
        );
        assert_eq!(report.server.connections_accepted, 3 + 2);
        assert_eq!(report.server.connections_dropped, 0);
        assert_eq!(report.server.frame_decode_errors, 0);
        assert_eq!(report.server.request_decode_errors, 0);
        assert!(report.updates_per_sec > 0.0);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.latency_p50_ms > 0.0);
        assert!(report.latency_p99_ms >= report.latency_p50_ms);
    }

    #[test]
    fn query_results_are_deterministic_across_runs() {
        // The strict half of the `reproduce net --check` contract: with the
        // query phase pinned to one post-flush instant, everything but wall
        // clock and latency must reproduce exactly.
        let (a, b) = (run_net_workload(&small_config()), run_net_workload(&small_config()));
        assert_eq!(a.updates_sent, b.updates_sent);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.rect_results, b.rect_results);
        assert_eq!(a.nearest_results, b.nearest_results);
        assert_eq!(a.zone_events, b.zone_events);
        assert_eq!(a.client_bytes_sent, b.client_bytes_sent);
        assert_eq!(a.server.bytes_received, b.server.bytes_received);
        assert_eq!(a.server.bytes_sent, b.server.bytes_sent);
    }

    #[test]
    fn net_workload_json_is_well_formed() {
        let report = run_net_workload(&NetWorkloadConfig {
            objects: 8,
            producer_connections: 2,
            query_connections: 2,
            queries_per_connection: 10,
            trip_length_m: 300.0,
            ..NetWorkloadConfig::default()
        });
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"updates_per_sec\":"));
        assert!(json.contains("\"latency_p99_ms\":"));
        assert!(json.contains("\"server\":{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    #[should_panic(expected = "at least one producer connection")]
    fn zero_producer_connections_are_rejected() {
        let _ = run_net_workload(&NetWorkloadConfig {
            producer_connections: 0,
            ..NetWorkloadConfig::default()
        });
    }
}
