//! Plain-text rendering of sweep results.
//!
//! The paper presents its results as figures (updates per hour vs. requested
//! accuracy, absolute and relative to the distance-based baseline); without a
//! plotting dependency the same data is rendered as aligned text tables and as
//! CSV for external plotting.

use crate::protocols::ProtocolKind;
use crate::sweep::SweepResult;
use std::fmt::Write as _;

/// Renders the sweep as a human-readable table: one row per requested
/// accuracy, one column pair (updates/h, % of baseline) per protocol.
pub fn render_table(result: &SweepResult, protocols: &[ProtocolKind]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario: {}", result.scenario);
    let _ = write!(out, "{:>8} ", "u_s [m]");
    for p in protocols {
        let _ = write!(out, "| {:>22} ", p.label());
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:->9}", "");
    for _ in protocols {
        let _ = write!(out, "+{:->24}", "");
    }
    let _ = writeln!(out);
    for &a in &result.accuracies {
        let _ = write!(out, "{a:>8.0} ");
        for &p in protocols {
            match result.point(p, a) {
                Some(point) => {
                    let rel = point
                        .relative_to_baseline_pct
                        .map(|r| format!("{r:5.1}%"))
                        .unwrap_or_else(|| "   n/a".to_string());
                    let _ = write!(
                        out,
                        "| {:>9.1}/h {:>10} ",
                        point.metrics.updates_per_hour, rel
                    );
                }
                None => {
                    let _ = write!(out, "| {:>22} ", "—");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the sweep as CSV with the columns
/// `scenario,protocol,requested_accuracy_m,updates,updates_per_hour,relative_pct,mean_deviation_m,max_deviation_m`.
pub fn render_csv(result: &SweepResult) -> String {
    let mut out = String::from(
        "scenario,protocol,requested_accuracy_m,updates,updates_per_hour,relative_pct,mean_deviation_m,max_deviation_m\n",
    );
    for p in &result.points {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{},{:.2},{:.2}",
            result.scenario,
            p.protocol.label(),
            p.requested_accuracy,
            p.metrics.updates,
            p.metrics.updates_per_hour,
            p.relative_to_baseline_pct.map(|r| format!("{r:.2}")).unwrap_or_default(),
            p.metrics.deviation.mean,
            p.metrics.deviation.max,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DeviationStats, RunMetrics};
    use crate::sweep::SweepPoint;

    fn fake_result() -> SweepResult {
        let metrics = |rate: f64| RunMetrics {
            protocol: "x".into(),
            requested_accuracy: 50.0,
            updates: (rate as u64).max(1),
            payload_bytes: 100,
            duration_s: 3600.0,
            updates_per_hour: rate,
            deviation: DeviationStats::from_samples(vec![1.0, 2.0, 3.0], 60.0),
        };
        SweepResult {
            scenario: "car, freeway".into(),
            accuracies: vec![50.0],
            points: vec![
                SweepPoint {
                    protocol: ProtocolKind::DistanceBased,
                    requested_accuracy: 50.0,
                    metrics: metrics(400.0),
                    relative_to_baseline_pct: Some(100.0),
                },
                SweepPoint {
                    protocol: ProtocolKind::MapBased,
                    requested_accuracy: 50.0,
                    metrics: metrics(40.0),
                    relative_to_baseline_pct: Some(10.0),
                },
            ],
        }
    }

    #[test]
    fn table_contains_every_protocol_and_accuracy() {
        let text = render_table(&fake_result(), &[ProtocolKind::DistanceBased, ProtocolKind::MapBased]);
        assert!(text.contains("car, freeway"));
        assert!(text.contains("distance-based"));
        assert!(text.contains("map-based dr"));
        assert!(text.contains("10.0%"));
        assert!(text.contains("400.0/h"));
    }

    #[test]
    fn missing_points_render_as_a_dash() {
        let text = render_table(&fake_result(), &[ProtocolKind::Linear]);
        assert!(text.contains('—'));
    }

    #[test]
    fn csv_has_a_row_per_point_plus_header() {
        let csv = render_csv(&fake_result());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().starts_with("scenario,protocol"));
        assert!(csv.contains("map-based dr,50,"));
    }
}
