//! Plain-text rendering of sweep results.
//!
//! The paper presents its results as figures (updates per hour vs. requested
//! accuracy, absolute and relative to the distance-based baseline); without a
//! plotting dependency the same data is rendered as aligned text tables and as
//! CSV for external plotting.

use crate::protocols::ProtocolKind;
use crate::sweep::SweepResult;
use std::fmt::Write as _;

/// Renders the sweep as a human-readable table: one row per requested
/// accuracy, one column pair (updates/h, % of baseline) per protocol.
pub fn render_table(result: &SweepResult, protocols: &[ProtocolKind]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario: {}", result.scenario);
    let _ = write!(out, "{:>8} ", "u_s [m]");
    for p in protocols {
        let _ = write!(out, "| {:>22} ", p.label());
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:->9}", "");
    for _ in protocols {
        let _ = write!(out, "+{:->24}", "");
    }
    let _ = writeln!(out);
    for &a in &result.accuracies {
        let _ = write!(out, "{a:>8.0} ");
        for &p in protocols {
            match result.point(p, a) {
                Some(point) => {
                    let rel = point
                        .relative_to_baseline_pct
                        .map(|r| format!("{r:5.1}%"))
                        .unwrap_or_else(|| "   n/a".to_string());
                    let _ = write!(out, "| {:>9.1}/h {:>10} ", point.metrics.updates_per_hour, rel);
                }
                None => {
                    let _ = write!(out, "| {:>22} ", "—");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the sweep as CSV with the columns
/// `scenario,protocol,requested_accuracy_m,updates,updates_per_hour,relative_pct,mean_deviation_m,max_deviation_m`.
pub fn render_csv(result: &SweepResult) -> String {
    let mut out = String::from(
        "scenario,protocol,requested_accuracy_m,updates,updates_per_hour,relative_pct,mean_deviation_m,max_deviation_m\n",
    );
    for p in &result.points {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{},{:.2},{:.2}",
            result.scenario,
            p.protocol.label(),
            p.requested_accuracy,
            p.metrics.updates,
            p.metrics.updates_per_hour,
            p.relative_to_baseline_pct.map(|r| format!("{r:.2}")).unwrap_or_default(),
            p.metrics.deviation.mean,
            p.metrics.deviation.max,
        );
    }
    out
}

/// Renders the sweep as a JSON object (hand-written, no serializer dep):
/// scenario, the swept accuracies, and one entry per (protocol, accuracy)
/// point carrying the update counts and deviation statistics. This is the
/// machine-readable form consumed as a perf/regression baseline.
pub fn render_json(result: &SweepResult) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"scenario\":{}", json_string(&result.scenario));
    let _ = write!(out, ",\"accuracies_m\":[");
    for (i, a) in result.accuracies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_number(*a));
    }
    out.push_str("],\"points\":[");
    for (i, p) in result.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"protocol\":{},\"requested_accuracy_m\":{},\"updates\":{},\
             \"updates_per_hour\":{},\"payload_bytes\":{},\"duration_s\":{},\
             \"relative_to_baseline_pct\":{},\"deviation\":{{\"mean_m\":{},\"p95_m\":{},\
             \"max_m\":{},\"samples\":{},\"bound_violations\":{}}}}}",
            json_string(p.protocol.label()),
            json_number(p.requested_accuracy),
            p.metrics.updates,
            json_number(p.metrics.updates_per_hour),
            p.metrics.payload_bytes,
            json_number(p.metrics.duration_s),
            p.relative_to_baseline_pct.map_or_else(|| "null".to_string(), json_number),
            json_number(p.metrics.deviation.mean),
            json_number(p.metrics.deviation.p95),
            json_number(p.metrics.deviation.max),
            p.metrics.deviation.samples,
            p.metrics.deviation.bound_violations,
        );
    }
    out.push_str("]}");
    out
}

/// Formats a float as a JSON number (non-finite values become `null`).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a string for JSON.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DeviationStats, RunMetrics};
    use crate::sweep::SweepPoint;

    fn fake_result() -> SweepResult {
        let metrics = |rate: f64| RunMetrics {
            protocol: "x".into(),
            requested_accuracy: 50.0,
            updates: (rate as u64).max(1),
            payload_bytes: 100,
            duration_s: 3600.0,
            updates_per_hour: rate,
            deviation: DeviationStats::from_samples(vec![1.0, 2.0, 3.0], 60.0),
        };
        SweepResult {
            scenario: "car, freeway".into(),
            accuracies: vec![50.0],
            points: vec![
                SweepPoint {
                    protocol: ProtocolKind::DistanceBased,
                    requested_accuracy: 50.0,
                    metrics: metrics(400.0),
                    relative_to_baseline_pct: Some(100.0),
                },
                SweepPoint {
                    protocol: ProtocolKind::MapBased,
                    requested_accuracy: 50.0,
                    metrics: metrics(40.0),
                    relative_to_baseline_pct: Some(10.0),
                },
            ],
        }
    }

    #[test]
    fn table_contains_every_protocol_and_accuracy() {
        let text =
            render_table(&fake_result(), &[ProtocolKind::DistanceBased, ProtocolKind::MapBased]);
        assert!(text.contains("car, freeway"));
        assert!(text.contains("distance-based"));
        assert!(text.contains("map-based dr"));
        assert!(text.contains("10.0%"));
        assert!(text.contains("400.0/h"));
    }

    #[test]
    fn missing_points_render_as_a_dash() {
        let text = render_table(&fake_result(), &[ProtocolKind::Linear]);
        assert!(text.contains('—'));
    }

    #[test]
    fn json_is_well_formed_and_carries_update_counts() {
        let json = render_json(&fake_result());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"car, freeway\""));
        assert!(json.contains("\"protocol\":\"map-based dr\""));
        assert!(json.contains("\"updates\":400"));
        assert!(json.contains("\"relative_to_baseline_pct\":10"));
        // Balanced braces/brackets — a cheap structural well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_strings_and_maps_non_finite_to_null() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(2.5), "2.5");
    }

    #[test]
    fn csv_has_a_row_per_point_plus_header() {
        let csv = render_csv(&fake_result());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().starts_with("scenario,protocol"));
        assert!(csv.contains("map-based dr,50,"));
    }
}
