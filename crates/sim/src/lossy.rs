//! The lossy-link experiment: accuracy degradation and message overhead as
//! functions of the uplink loss rate.
//!
//! This closes the wire loop end to end: a protocol run's updates are encoded
//! into [`Frame`]s, the frames travel as raw bytes through a
//! [`DegradedChannel`] that drops/duplicates/jitters/reorders them, and the
//! server *decodes* whatever arrives before applying it — so the bytes the
//! simulator charges for are exactly the bytes that reconstruct the state the
//! server predicts from. Sweeping the loss rate then shows what the paper's
//! idealised evaluation cannot: how the accuracy guarantee erodes and how the
//! cost per *applied* update grows when the GSM/GPRS uplink actually
//! misbehaves.
//!
//! Loss fates are nested across the sweep (see [`crate::degraded`]): the
//! frames lost at 10 % are a subset of those lost at 30 %, so the reported
//! degradation is monotone in the loss rate rather than an artefact of
//! resampled randomness. The initial update travels on the reliable control
//! channel ([`DegradedChannel::send_reliable`]) so every sweep point starts
//! from the same known state.

use crate::degraded::{DegradedChannel, LinkConfig, LinkStats};
use crate::metrics::DeviationStats;
use crate::protocols::{ProtocolContext, ProtocolKind};
use crate::runner::{run_protocol, RunConfig};
use mbdr_core::{Frame, ServerTracker, Update, UpdateKind};
use mbdr_trace::{Scenario, ScenarioKind, Trace};
use std::sync::Arc;

/// Source id the swept object uses in its frames.
const SOURCE_ID: u64 = 1;

/// Configuration of a loss-rate sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LossSweepConfig {
    /// Scenario whose trace is replayed.
    pub scenario: ScenarioKind,
    /// Trace scale in `(0, 1]`.
    pub scale: f64,
    /// Map/trace/noise seed (also folded into the link seed).
    pub seed: u64,
    /// The update protocol the source runs.
    pub protocol: ProtocolKind,
    /// Requested accuracy `u_s`, metres.
    pub requested_accuracy: f64,
    /// The loss rates swept, ascending.
    pub loss_rates: Vec<f64>,
    /// Link impairments shared by every point (`loss` is overridden per
    /// point).
    pub link: LinkConfig,
}

impl Default for LossSweepConfig {
    fn default() -> Self {
        LossSweepConfig {
            scenario: ScenarioKind::City,
            scale: 0.2,
            seed: 0xC0FFEE,
            protocol: ProtocolKind::MapBased,
            requested_accuracy: 100.0,
            loss_rates: vec![0.0, 0.05, 0.1, 0.2, 0.35, 0.5],
            link: LinkConfig::gprs(0xC0FFEE),
        }
    }
}

/// One loss-rate measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct LossPoint {
    /// The loss rate of this point.
    pub loss_rate: f64,
    /// Per-cause link statistics.
    pub link: LinkStats,
    /// Frames that failed to decode at the receiver (0 unless the channel is
    /// made to corrupt payloads — asserted by the tests).
    pub decode_errors: u64,
    /// Updates the server tracker accepted (duplicates and reordered
    /// leftovers are rejected by the tracker, not the channel).
    pub updates_applied: u64,
    /// Fraction of sent frames that reached the receiver at least once.
    pub delivered_ratio: f64,
    /// Transmitted payload bytes per applied update — the message overhead,
    /// which grows with the loss rate while the raw byte count stays flat.
    /// `NaN` (rendered `null` in JSON) when nothing was applied.
    pub bytes_per_applied_update: f64,
    /// Server-side deviation statistics under this loss rate.
    pub deviation: DeviationStats,
}

/// The result of sweeping one scenario over the loss rates.
#[derive(Debug, Clone, PartialEq)]
pub struct LossSweepResult {
    /// Scenario name (Table 1 row label).
    pub scenario: String,
    /// Protocol name.
    pub protocol: String,
    /// Requested accuracy `u_s`, metres.
    pub requested_accuracy: f64,
    /// Trace scale.
    pub scale: f64,
    /// Seed.
    pub seed: u64,
    /// Updates the protocol generated (identical for every point).
    pub updates_sent: u64,
    /// The measurements, in the order of the configured loss rates.
    pub points: Vec<LossPoint>,
}

impl LossSweepResult {
    /// Renders the sweep as one JSON document (schema `mbdr-wire/1`,
    /// hand-written like the other baselines), consumed by `reproduce wire`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"mbdr-wire/1\",\"scenario\":\"{}\",\"protocol\":\"{}\",\
             \"requested_accuracy\":{},\"scale\":{},\"seed\":{},\"updates_sent\":{},\"points\":[",
            self.scenario,
            self.protocol,
            self.requested_accuracy,
            self.scale,
            self.seed,
            self.updates_sent,
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let l = &p.link;
            let d = &p.deviation;
            let overhead = if p.bytes_per_applied_update.is_finite() {
                format!("{:.1}", p.bytes_per_applied_update)
            } else {
                String::from("null")
            };
            out.push_str(&format!(
                "{{\"loss_rate\":{},\"frames_sent\":{},\"frames_dropped\":{},\
                 \"frames_duplicated\":{},\"frames_reordered\":{},\"frames_delivered\":{},\
                 \"delivered_out_of_order\":{},\"payload_bytes\":{},\"decode_errors\":{},\
                 \"updates_applied\":{},\"delivered_ratio\":{:.4},\
                 \"bytes_per_applied_update\":{},\"deviation\":{{\"samples\":{},\
                 \"mean_m\":{:.2},\"p95_m\":{:.2},\"max_m\":{:.2},\"bound_violations\":{}}}}}",
                p.loss_rate,
                l.frames_sent,
                l.frames_dropped,
                l.frames_duplicated,
                l.frames_reordered,
                l.frames_delivered,
                l.delivered_out_of_order,
                l.payload_bytes,
                p.decode_errors,
                p.updates_applied,
                p.delivered_ratio,
                overhead,
                d.samples,
                d.mean,
                d.p95,
                d.max,
                d.bound_violations,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Runs the loss-rate sweep: one protocol run generates the update stream,
/// then every loss rate replays the same stream through its own degraded
/// link against a fresh server tracker.
pub fn run_loss_sweep(config: &LossSweepConfig) -> LossSweepResult {
    assert!(config.scale > 0.0 && config.scale <= 1.0, "scale must be in (0, 1]");
    let data = Scenario { kind: config.scenario, scale: config.scale, seed: config.seed }.build();
    let ctx = ProtocolContext::for_scenario(&data);
    let protocol = config.protocol.build(&ctx, config.requested_accuracy);
    let protocol_name = protocol.name().to_string();
    let predictor = protocol.predictor();
    let outcome = run_protocol(&data.trace, protocol, RunConfig::default());
    // Same violation allowance as the runner: `u_s` + sensor uncertainty +
    // numerical slack.
    let allowance = config.requested_accuracy
        + data.trace.fixes.first().map(|f| f.accuracy).unwrap_or(0.0)
        + 1.0;

    let points = config
        .loss_rates
        .iter()
        .map(|&loss_rate| {
            let link = LinkConfig { loss: loss_rate, ..config.link };
            replay_with_link(
                &data.trace,
                &outcome.updates,
                Arc::clone(&predictor),
                link,
                allowance,
                loss_rate,
            )
        })
        .collect();

    LossSweepResult {
        scenario: data.scenario.kind.name().to_string(),
        protocol: protocol_name,
        requested_accuracy: config.requested_accuracy,
        scale: config.scale,
        seed: config.seed,
        updates_sent: outcome.updates.len() as u64,
        points,
    }
}

/// Replays one update stream through a degraded link: encode → channel →
/// decode → apply, sampling the server deviation at every fix.
fn replay_with_link(
    trace: &Trace,
    updates: &[Update],
    predictor: Arc<dyn mbdr_core::Predictor>,
    link: LinkConfig,
    allowance: f64,
    loss_rate: f64,
) -> LossPoint {
    let mut channel = DegradedChannel::new(link);
    let mut server = ServerTracker::new(predictor);
    let mut decode_errors = 0u64;
    let mut deviations = Vec::with_capacity(trace.len());
    let mut next = 0usize;
    for (fix, truth) in trace.fixes.iter().zip(trace.ground_truth.iter()) {
        while next < updates.len() && updates[next].state.timestamp <= fix.t + 1e-9 {
            let update = updates[next];
            let bytes = Frame::single(SOURCE_ID, update).encode().expect("protocol updates encode");
            if update.kind == UpdateKind::Initial {
                channel.send_reliable(fix.t, bytes);
            } else {
                channel.send(fix.t, bytes);
            }
            next += 1;
        }
        for bytes in channel.deliver_until(fix.t) {
            match Frame::decode(&bytes) {
                Ok(frame) => {
                    for update in &frame.updates {
                        server.apply(update);
                    }
                }
                Err(_) => decode_errors += 1,
            }
        }
        if let Some(predicted) = server.position_at(fix.t) {
            deviations.push(predicted.distance(&truth.position));
        }
    }
    // Drain the tail: frames still in flight at the last fix (latency +
    // jitter + reorder/duplicate lag) are delivered and applied past trace
    // end, so every non-dropped frame really reaches the receiver and the
    // delivered ratio below is exact, not an in-flight overestimate.
    for bytes in channel.deliver_until(f64::INFINITY) {
        match Frame::decode(&bytes) {
            Ok(frame) => {
                for update in &frame.updates {
                    server.apply(update);
                }
            }
            Err(_) => decode_errors += 1,
        }
    }
    let stats = channel.stats();
    let unique_delivered = stats.frames_sent - stats.frames_dropped;
    let updates_applied = server.updates_applied();
    LossPoint {
        loss_rate,
        link: stats,
        decode_errors,
        updates_applied,
        delivered_ratio: if stats.frames_sent > 0 {
            unique_delivered as f64 / stats.frames_sent as f64
        } else {
            1.0
        },
        bytes_per_applied_update: if updates_applied > 0 {
            stats.payload_bytes as f64 / updates_applied as f64
        } else {
            // Undefined when nothing was applied; `to_json` renders null.
            f64::NAN
        },
        deviation: DeviationStats::from_samples(deviations, allowance),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LossSweepConfig {
        LossSweepConfig {
            scale: 0.06,
            loss_rates: vec![0.0, 0.15, 0.35, 0.6],
            ..LossSweepConfig::default()
        }
    }

    #[test]
    fn ideal_link_reproduces_the_runner() {
        // With every impairment off the wire loop must be invisible up to the
        // codec's documented f32 narrowing: encode → decode → apply gives the
        // same update count and deviation statistics (to well under the
        // centimetre) as the in-memory runner, which never serialises at all.
        let config = LossSweepConfig {
            scale: 0.06,
            loss_rates: vec![0.0],
            link: LinkConfig::ideal(),
            ..LossSweepConfig::default()
        };
        let result = run_loss_sweep(&config);
        let data =
            Scenario { kind: config.scenario, scale: config.scale, seed: config.seed }.build();
        let ctx = ProtocolContext::for_scenario(&data);
        let reference = run_protocol(
            &data.trace,
            config.protocol.build(&ctx, config.requested_accuracy),
            RunConfig::default(),
        );
        let point = &result.points[0];
        assert_eq!(point.decode_errors, 0);
        assert_eq!(point.updates_applied, reference.metrics.updates);
        let (wire, mem) = (&point.deviation, &reference.metrics.deviation);
        assert_eq!(wire.samples, mem.samples);
        assert_eq!(wire.bound_violations, mem.bound_violations);
        assert!((wire.mean - mem.mean).abs() < 0.01, "{} vs {}", wire.mean, mem.mean);
        assert!((wire.max - mem.max).abs() < 0.01);
        assert!((wire.p95 - mem.p95).abs() < 0.01);
    }

    #[test]
    fn accuracy_degrades_monotonically_with_loss() {
        let result = run_loss_sweep(&quick_config());
        assert_eq!(result.points.len(), 4);
        for pair in result.points.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            assert!(
                hi.deviation.mean >= lo.deviation.mean,
                "mean deviation fell from {:.2} to {:.2} when loss rose {} -> {}",
                lo.deviation.mean,
                hi.deviation.mean,
                lo.loss_rate,
                hi.loss_rate
            );
            assert!(hi.delivered_ratio <= lo.delivered_ratio + 1e-12);
            assert!(hi.updates_applied <= lo.updates_applied);
            assert!(hi.bytes_per_applied_update >= lo.bytes_per_applied_update);
        }
        // Every point transmitted the same update stream; the only byte-cost
        // difference is duplicates that higher loss pre-empts (a dropped
        // frame is never retransmitted-in-duplicate), so bytes fall slightly
        // as loss rises while the frame count stays fixed.
        for pair in result.points.windows(2) {
            assert!(pair[1].link.payload_bytes <= pair[0].link.payload_bytes);
        }
        for p in &result.points {
            assert_eq!(p.link.frames_sent, result.updates_sent);
            assert_eq!(p.decode_errors, 0, "every delivered frame decodes");
        }
    }

    #[test]
    fn heavy_loss_violates_the_bound_more_often() {
        let result = run_loss_sweep(&quick_config());
        let clean = &result.points.first().unwrap().deviation;
        let lossy = &result.points.last().unwrap().deviation;
        assert!(
            lossy.bound_violations >= clean.bound_violations,
            "loss cannot reduce bound violations ({} -> {})",
            clean.bound_violations,
            lossy.bound_violations
        );
        assert!(lossy.max >= clean.max);
    }

    #[test]
    fn sweep_json_is_well_formed() {
        let result = run_loss_sweep(&LossSweepConfig {
            scale: 0.05,
            loss_rates: vec![0.0, 0.3],
            ..LossSweepConfig::default()
        });
        let json = result.to_json();
        assert!(json.starts_with("{\"schema\":\"mbdr-wire/1\""));
        assert!(json.contains("\"loss_rate\":0.3"));
        assert!(json.contains("\"bytes_per_applied_update\":"));
        assert!(json.contains("\"deviation\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
