//! Concurrent fleet workload against one shared, sharded location service.
//!
//! [`crate::fleet`] measures per-object protocol cost, but every vehicle
//! there runs against its own private tracker — nothing exercises the shared
//! [`LocationService`] the paper's motivating queries need. This module closes
//! that gap: one service, `producers` threads ingesting the whole fleet's
//! update streams concurrently with `query_threads` threads issuing the
//! motivating queries (range, k-nearest, zone subscriptions), reporting
//! ingest throughput, query throughput and *query-observed accuracy* — the
//! deviation between what a dispatcher is told and where the vehicles truly
//! are.
//!
//! ## Replay model
//!
//! Updates are generated offline (phase 1) by running each vehicle's update
//! protocol over its trace, then replayed (phase 2) in virtual-time rounds of
//! one second: every producer applies its updates for round `r`, publishes its
//! frontier, and waits for the others before starting round `r + 1` (a
//! lockstep barrier, so producers never drift more than one virtual second
//! apart). Query threads read the minimum frontier `m` and query at
//! `t = m − ½`: every update with an earlier timestamp is guaranteed applied,
//! and at most 2.5 virtual seconds of "future" updates may additionally be
//! visible — which bounds the query-observed error by the protocol's
//! accuracy bound plus sensor noise plus 2.5 s of vehicle travel. Producers
//! can sprint ahead while a query thread is descheduled mid-sample, so an
//! accuracy sample only counts if the frontier is unchanged when it
//! completes; with that filter the bound holds regardless of thread
//! interleaving. Throughput numbers are wall-clock; all counts are exact.

use crate::fleet::object_scenario;
use crate::protocols::{ProtocolContext, ProtocolKind};
use crate::runner::{run_protocol, RunConfig};
use mbdr_core::{Predictor, Update};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig, ZoneWatcher};
use mbdr_trace::{Scenario, ScenarioData, ScenarioKind, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Relative weights of the three query kinds a query thread cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMix {
    /// Range queries ("all users inside a department").
    pub rect: u32,
    /// k-nearest queries ("nearest taxi").
    pub nearest: u32,
    /// Zone-watcher evaluations (enter/leave subscriptions).
    pub zone: u32,
}

impl QueryMix {
    /// Mostly range queries.
    pub const RECT_HEAVY: QueryMix = QueryMix { rect: 4, nearest: 1, zone: 1 };
    /// Mostly nearest-neighbour queries.
    pub const NEAREST_HEAVY: QueryMix = QueryMix { rect: 1, nearest: 4, zone: 1 };
    /// Even thirds.
    pub const BALANCED: QueryMix = QueryMix { rect: 1, nearest: 1, zone: 1 };

    /// Short label for reports.
    pub fn label(&self) -> String {
        format!("rect{}:near{}:zone{}", self.rect, self.nearest, self.zone)
    }

    fn total(&self) -> u32 {
        (self.rect + self.nearest + self.zone).max(1)
    }
}

/// Configuration of a service workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Fleet size.
    pub objects: usize,
    /// Shard count of the shared service.
    pub shards: usize,
    /// Threads ingesting updates.
    pub producers: usize,
    /// Threads issuing queries.
    pub query_threads: usize,
    /// Queries each query thread issues (exact, for deterministic counts).
    pub queries_per_thread: usize,
    /// Relative query-kind weights.
    pub query_mix: QueryMix,
    /// Trip length per vehicle, metres.
    pub trip_length_m: f64,
    /// Requested accuracy `u_s`, metres.
    pub requested_accuracy: f64,
    /// Update protocol every vehicle runs.
    pub protocol: ProtocolKind,
    /// When set, each producer ingests a whole virtual-time round of updates
    /// through [`LocationService::apply_batch`] — one write-lock acquisition
    /// per touched stripe per round — instead of one `apply_update` (and one
    /// lock) per update. Observable state is identical either way.
    pub batched_ingest: bool,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            objects: 64,
            shards: 16,
            producers: 4,
            query_threads: 4,
            queries_per_thread: 250,
            query_mix: QueryMix::BALANCED,
            trip_length_m: 1_500.0,
            requested_accuracy: 100.0,
            protocol: ProtocolKind::MapBased,
            batched_ingest: false,
            seed: 0x5EAF00D,
        }
    }
}

/// Query-observed accuracy statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryAccuracy {
    /// Number of (query answer, ground truth) comparisons.
    pub samples: u64,
    /// Mean observed deviation, metres.
    pub mean_m: f64,
    /// Maximum observed deviation, metres.
    pub max_m: f64,
    /// The analytic bound the deviation is checked against: `u_s` + sensor
    /// accuracy + the distance a vehicle can travel within the replay's
    /// worst-case producer/query skew.
    pub bound_m: f64,
    /// Samples within the bound.
    pub within_bound: u64,
}

/// Outcome of a service workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Fleet size.
    pub objects: usize,
    /// Service shard count.
    pub shards: usize,
    /// Producer thread count.
    pub producers: usize,
    /// Query thread count.
    pub query_threads: usize,
    /// Query mix label.
    pub query_mix: String,
    /// Whether producers ingested via per-round `apply_batch` calls.
    pub batched_ingest: bool,
    /// Virtual (simulated) duration replayed, seconds.
    pub virtual_duration_s: f64,
    /// Updates generated by the protocols (phase 1).
    pub updates_sent: u64,
    /// Updates accepted by the service (phase 2; equals `updates_sent` —
    /// asserted by the tests).
    pub updates_applied: u64,
    /// Wall-clock of the slowest producer, seconds.
    pub ingest_wall_s: f64,
    /// Ingest throughput, updates per wall-clock second.
    pub updates_per_sec: f64,
    /// Total queries issued (exactly `query_threads · queries_per_thread`).
    pub queries_issued: u64,
    /// Wall-clock of the slowest query thread, seconds.
    pub query_wall_s: f64,
    /// Query throughput, queries per wall-clock second.
    pub queries_per_sec: f64,
    /// Range queries issued.
    pub rect_queries: u64,
    /// Nearest queries issued.
    pub nearest_queries: u64,
    /// Zone evaluations issued.
    pub zone_queries: u64,
    /// Total objects returned by range queries.
    pub rect_results: u64,
    /// Total objects returned by nearest queries.
    pub nearest_results: u64,
    /// Total zone enter/leave events observed.
    pub zone_events: u64,
    /// Query-observed accuracy.
    pub accuracy: QueryAccuracy,
}

impl WorkloadReport {
    /// Renders the report as one JSON object (hand-written, no serializer
    /// dependency), consumed by `reproduce throughput` as a perf baseline.
    pub fn to_json(&self) -> String {
        let a = &self.accuracy;
        format!(
            "{{\"objects\":{},\"shards\":{},\"producers\":{},\"query_threads\":{},\
             \"query_mix\":\"{}\",\"batched_ingest\":{},\"virtual_duration_s\":{:.1},\
             \"updates_sent\":{},\"updates_applied\":{},\"ingest_wall_s\":{:.4},\
             \"updates_per_sec\":{:.1},\"queries_issued\":{},\"query_wall_s\":{:.4},\
             \"queries_per_sec\":{:.1},\"rect_queries\":{},\"nearest_queries\":{},\
             \"zone_queries\":{},\"rect_results\":{},\"nearest_results\":{},\
             \"zone_events\":{},\"accuracy\":{{\"samples\":{},\"mean_m\":{:.2},\
             \"max_m\":{:.2},\"bound_m\":{:.2},\"within_bound\":{}}}}}",
            self.objects,
            self.shards,
            self.producers,
            self.query_threads,
            self.query_mix,
            self.batched_ingest,
            self.virtual_duration_s,
            self.updates_sent,
            self.updates_applied,
            self.ingest_wall_s,
            self.updates_per_sec,
            self.queries_issued,
            self.query_wall_s,
            self.queries_per_sec,
            self.rect_queries,
            self.nearest_queries,
            self.zone_queries,
            self.rect_results,
            self.nearest_results,
            self.zone_events,
            a.samples,
            a.mean_m,
            a.max_m,
            a.bound_m,
            a.within_bound,
        )
    }
}

/// One vehicle's pre-generated replay script (also fed to the TCP workload
/// in [`crate::net_workload`]).
pub(crate) struct ObjectScript {
    pub(crate) id: ObjectId,
    pub(crate) predictor: Arc<dyn Predictor>,
    pub(crate) updates: Vec<Update>,
    pub(crate) trace: Trace,
}

/// Phase 1: simulate every vehicle and run its protocol offline, capturing
/// the update stream the replay will ingest.
pub(crate) fn build_scripts(
    objects: usize,
    trip_length_m: f64,
    requested_accuracy: f64,
    protocol: ProtocolKind,
    seed: u64,
) -> (ScenarioData, Vec<ObjectScript>) {
    let base = Scenario { kind: ScenarioKind::City, scale: 0.02, seed }.build();
    let base_ctx = ProtocolContext::for_scenario(&base);
    let mut slots: Vec<Option<ObjectScript>> = Vec::new();
    slots.resize_with(objects, || None);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(objects);
    let chunk = objects.div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        for (worker_index, out_chunk) in slots.chunks_mut(chunk).enumerate() {
            let base = &base;
            let base_ctx = &base_ctx;
            scope.spawn(move |_| {
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    let object_index = worker_index * chunk + offset;
                    let data = object_scenario(base, object_index, seed, trip_length_m);
                    let protocol = protocol.build(base_ctx, requested_accuracy);
                    let predictor = protocol.predictor();
                    let outcome = run_protocol(&data.trace, protocol, RunConfig::default());
                    *slot = Some(ObjectScript {
                        id: ObjectId(object_index as u64),
                        predictor,
                        updates: outcome.updates,
                        trace: data.trace,
                    });
                }
            });
        }
    })
    .expect("script builder panicked");
    (base, slots.into_iter().map(|s| s.expect("every object built")).collect())
}

/// Waits (yielding) until every frontier has reached `round`.
fn wait_for_round(frontiers: &[AtomicU64], round: u64) {
    while frontiers.iter().any(|f| f.load(Ordering::Acquire) < round) {
        std::thread::yield_now();
    }
}

/// The minimum producer frontier: every update with a timestamp below it has
/// been applied to the service.
fn min_frontier(frontiers: &[AtomicU64]) -> u64 {
    frontiers.iter().map(|f| f.load(Ordering::Acquire)).min().unwrap_or(0)
}

/// Per-query-thread tallies, merged into the report after the run.
#[derive(Default, Clone, Copy)]
struct QueryTally {
    rect: u64,
    nearest: u64,
    zone: u64,
    rect_results: u64,
    nearest_results: u64,
    zone_events: u64,
    samples: u64,
    error_sum: f64,
    error_max: f64,
    within: u64,
    wall_s: f64,
}

/// Phase 2 + aggregation: runs the whole workload and reports throughput and
/// query-observed accuracy.
pub fn run_service_workload(config: &WorkloadConfig) -> WorkloadReport {
    assert!(config.objects > 0, "workload needs at least one object");
    assert!(config.producers > 0, "workload needs at least one producer");
    assert!(config.query_threads > 0, "workload needs at least one query thread");
    let (base, scripts) = build_scripts(
        config.objects,
        config.trip_length_m,
        config.requested_accuracy,
        config.protocol,
        config.seed,
    );

    let service = LocationService::with_config(ServiceConfig {
        shards: config.shards,
        slack_m: config.requested_accuracy,
        ..ServiceConfig::default()
    });
    for script in &scripts {
        service.register(script.id, Arc::clone(&script.predictor));
    }

    let updates_sent: u64 = scripts.iter().map(|s| s.updates.len() as u64).sum();
    let virtual_duration = scripts.iter().map(|s| s.trace.duration()).fold(0.0, f64::max).max(1.0);
    let rounds = virtual_duration.ceil() as u64 + 1;

    // Partition the fleet round-robin over producers and pre-merge each
    // partition's updates by timestamp so replay is a single pass.
    let mut partitions: Vec<Vec<(ObjectId, &Update)>> = vec![Vec::new(); config.producers];
    for (i, script) in scripts.iter().enumerate() {
        let part = &mut partitions[i % config.producers];
        part.extend(script.updates.iter().map(|u| (script.id, u)));
    }
    for part in &mut partitions {
        part.sort_by(|a, b| {
            a.1.state
                .timestamp
                .total_cmp(&b.1.state.timestamp)
                .then(a.0.cmp(&b.0))
                .then(a.1.sequence.cmp(&b.1.sequence))
        });
    }

    let frontiers: Vec<AtomicU64> = (0..config.producers).map(|_| AtomicU64::new(0)).collect();
    let map_bounds =
        base.network.bounding_box().unwrap_or_else(|| Aabb::around(Point::ORIGIN, 1_000.0));
    // Skew bound for an *accepted* accuracy sample (frontier unchanged at
    // `m` across the sample): a producer only works round `r` once every
    // frontier reached `r`, so any state applied before the sample has
    // `r ≤ m` and a timestamp below `m + 1` — at most 1.5 virtual seconds
    // past the query time `m − ½`. The bound uses 2.5 s for margin; 10 m of
    // slack absorbs truth interpolation.
    let v_max = scripts
        .iter()
        .flat_map(|s| s.trace.ground_truth.iter())
        .map(|g| g.speed)
        .fold(0.0, f64::max);
    let u_p = scripts
        .iter()
        .filter_map(|s| s.trace.fixes.first())
        .map(|f| f.accuracy)
        .fold(0.0, f64::max);
    let accuracy_bound = config.requested_accuracy + u_p + v_max * 2.5 + 10.0;

    let mut ingest_results: Vec<(u64, f64)> = Vec::new();
    let mut query_results: Vec<QueryTally> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut producer_handles = Vec::new();
        for (p, part) in partitions.iter().enumerate() {
            let frontiers = &frontiers;
            let service = &service;
            producer_handles.push(scope.spawn(move |_| {
                let started = Instant::now();
                let mut pos = 0usize;
                let mut applied = 0u64;
                let mut batch: Vec<(ObjectId, Update)> = Vec::new();
                for r in 0..rounds {
                    let limit = (r + 1) as f64;
                    let round_start = pos;
                    while pos < part.len() && part[pos].1.state.timestamp < limit {
                        pos += 1;
                    }
                    if config.batched_ingest {
                        batch.clear();
                        batch.extend(part[round_start..pos].iter().map(|(id, u)| (*id, **u)));
                        applied += service.apply_batch(&batch) as u64;
                    } else {
                        for &(id, update) in &part[round_start..pos] {
                            if service.apply_update(id, update) {
                                applied += 1;
                            }
                        }
                    }
                    frontiers[p].store(r + 1, Ordering::Release);
                    wait_for_round(frontiers, r + 1);
                }
                (applied, started.elapsed().as_secs_f64())
            }));
        }

        let mut query_handles = Vec::new();
        for q in 0..config.query_threads {
            let frontiers = &frontiers;
            let service = &service;
            let scripts = &scripts;
            query_handles.push(scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ (q as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
                );
                let mut tally = QueryTally::default();
                let mut watcher = ZoneWatcher::new();
                let center = map_bounds.center();
                watcher.add_zone("sw", Aabb::new(map_bounds.min, center));
                watcher.add_zone("ne", Aabb::new(center, map_bounds.max));
                let started = Instant::now();
                let span_x = map_bounds.max.x - map_bounds.min.x;
                let span_y = map_bounds.max.y - map_bounds.min.y;
                let weights = config.query_mix;
                for _ in 0..config.queries_per_thread {
                    // Wait for the first completed round, then query just
                    // behind the slowest producer.
                    let mut m = min_frontier(frontiers);
                    while m == 0 {
                        std::thread::yield_now();
                        m = min_frontier(frontiers);
                    }
                    let t_q = (m as f64 - 0.5).min(virtual_duration);
                    let p = Point::new(
                        map_bounds.min.x + rng.gen_range(0.0..1.0) * span_x,
                        map_bounds.min.y + rng.gen_range(0.0..1.0) * span_y,
                    );
                    let draw = rng.gen_range(0..weights.total());
                    if draw < weights.rect {
                        let area = Aabb::around(p, rng.gen_range(100.0..1_200.0));
                        tally.rect += 1;
                        tally.rect_results += service.objects_in_rect(&area, t_q).len() as u64;
                    } else if draw < weights.rect + weights.nearest {
                        let k = rng.gen_range(1usize..8);
                        tally.nearest += 1;
                        tally.nearest_results += service.nearest_objects(&p, t_q, k).len() as u64;
                    } else {
                        tally.zone += 1;
                        tally.zone_events += watcher.evaluate(service, t_q).len() as u64;
                    }
                    // Accuracy sample: what the service answers for one random
                    // vehicle vs. where that vehicle truly is at t_q. Only
                    // counted if the frontier did not advance while sampling —
                    // otherwise producers may have applied states arbitrarily
                    // far past t_q and the 2.5 s skew bound would not apply.
                    let script = &scripts[rng.gen_range(0usize..scripts.len())];
                    if t_q <= script.trace.duration() {
                        if let (Some(report), Some(truth)) = (
                            service.position_of(script.id, t_q),
                            script.trace.true_position_at(t_q),
                        ) {
                            if min_frontier(frontiers) == m {
                                let error = report.position.distance(&truth);
                                tally.samples += 1;
                                tally.error_sum += error;
                                tally.error_max = tally.error_max.max(error);
                                if error <= accuracy_bound {
                                    tally.within += 1;
                                }
                            }
                        }
                    }
                }
                tally.wall_s = started.elapsed().as_secs_f64();
                tally
            }));
        }

        for h in producer_handles {
            ingest_results.push(h.join().expect("producer panicked"));
        }
        for h in query_handles {
            query_results.push(h.join().expect("query thread panicked"));
        }
    })
    .expect("workload thread panicked");

    let updates_applied: u64 = ingest_results.iter().map(|(n, _)| n).sum();
    let ingest_wall_s = ingest_results.iter().map(|&(_, s)| s).fold(0.0, f64::max).max(1e-9);
    let query_wall_s = query_results.iter().map(|t| t.wall_s).fold(0.0, f64::max).max(1e-9);
    let queries_issued = (config.query_threads * config.queries_per_thread) as u64;
    let samples: u64 = query_results.iter().map(|t| t.samples).sum();
    let accuracy = QueryAccuracy {
        samples,
        mean_m: if samples > 0 {
            query_results.iter().map(|t| t.error_sum).sum::<f64>() / samples as f64
        } else {
            0.0
        },
        max_m: query_results.iter().map(|t| t.error_max).fold(0.0, f64::max),
        bound_m: accuracy_bound,
        within_bound: query_results.iter().map(|t| t.within).sum(),
    };
    WorkloadReport {
        objects: config.objects,
        shards: service.shard_count(),
        producers: config.producers,
        query_threads: config.query_threads,
        query_mix: config.query_mix.label(),
        batched_ingest: config.batched_ingest,
        virtual_duration_s: virtual_duration,
        updates_sent,
        updates_applied,
        ingest_wall_s,
        updates_per_sec: updates_applied as f64 / ingest_wall_s,
        queries_issued,
        query_wall_s,
        queries_per_sec: queries_issued as f64 / query_wall_s,
        rect_queries: query_results.iter().map(|t| t.rect).sum(),
        nearest_queries: query_results.iter().map(|t| t.nearest).sum(),
        zone_queries: query_results.iter().map(|t| t.zone).sum(),
        rect_results: query_results.iter().map(|t| t.rect_results).sum(),
        nearest_results: query_results.iter().map(|t| t.nearest_results).sum(),
        zone_events: query_results.iter().map(|t| t.zone_events).sum(),
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_workload_completes_with_verifiable_metrics() {
        // The acceptance shape: ≥ 64 objects ingested by concurrent producers
        // while ≥ 4 query threads hammer the shared service.
        let config = WorkloadConfig {
            objects: 64,
            shards: 8,
            producers: 4,
            query_threads: 4,
            queries_per_thread: 60,
            trip_length_m: 400.0,
            ..WorkloadConfig::default()
        };
        let report = run_service_workload(&config);
        // Deterministic counts.
        assert_eq!(report.objects, 64);
        assert_eq!(report.updates_applied, report.updates_sent, "no update lost or rejected");
        assert!(report.updates_sent >= 64, "every vehicle sends at least its initial update");
        assert_eq!(report.queries_issued, 4 * 60);
        assert_eq!(
            report.rect_queries + report.nearest_queries + report.zone_queries,
            report.queries_issued
        );
        // Throughput numbers exist and are positive.
        assert!(report.updates_per_sec > 0.0);
        assert!(report.queries_per_sec > 0.0);
        // Query-observed accuracy: every sample is bounded by the analytic
        // skew bound (up to the protocol's own rare boundary violations).
        assert!(report.accuracy.samples > 0, "accuracy was sampled");
        assert!(
            report.accuracy.within_bound as f64 >= report.accuracy.samples as f64 * 0.95,
            "{}/{} samples within {:.0} m",
            report.accuracy.within_bound,
            report.accuracy.samples,
            report.accuracy.bound_m
        );
        assert!(report.accuracy.mean_m < report.accuracy.bound_m);
    }

    #[test]
    fn workload_report_json_is_well_formed() {
        let config = WorkloadConfig {
            objects: 6,
            shards: 2,
            producers: 2,
            query_threads: 2,
            queries_per_thread: 10,
            trip_length_m: 300.0,
            query_mix: QueryMix::RECT_HEAVY,
            ..WorkloadConfig::default()
        };
        let report = run_service_workload(&config);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"updates_per_sec\":"));
        assert!(json.contains("\"queries_per_sec\":"));
        assert!(json.contains("\"query_mix\":\"rect4:near1:zone1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn batched_ingest_applies_the_same_updates() {
        let base = WorkloadConfig {
            objects: 24,
            shards: 8,
            producers: 3,
            query_threads: 2,
            queries_per_thread: 30,
            trip_length_m: 400.0,
            ..WorkloadConfig::default()
        };
        let batched = run_service_workload(&WorkloadConfig { batched_ingest: true, ..base });
        let per_update = run_service_workload(&base);
        // Same scripts (same seed) either way: every generated update is
        // accepted by both ingest modes.
        assert!(batched.batched_ingest);
        assert_eq!(batched.updates_sent, per_update.updates_sent);
        assert_eq!(batched.updates_applied, batched.updates_sent);
        assert_eq!(per_update.updates_applied, per_update.updates_sent);
        assert!(batched.to_json().contains("\"batched_ingest\":true"));
        // The accuracy bound holds under batched ingest too.
        assert!(
            batched.accuracy.within_bound as f64 >= batched.accuracy.samples as f64 * 0.95,
            "{}/{} samples within {:.0} m",
            batched.accuracy.within_bound,
            batched.accuracy.samples,
            batched.accuracy.bound_m
        );
    }

    #[test]
    #[should_panic(expected = "at least one producer")]
    fn zero_producers_are_rejected() {
        let _ = run_service_workload(&WorkloadConfig { producers: 0, ..WorkloadConfig::default() });
    }
}
