//! The message channel between source and server.
//!
//! The paper's motivation is the cost of wide-area wireless messages, so the
//! simulator accounts for every payload shipped: message count, payload
//! bytes, and (optionally) a fixed delivery latency so that the server
//! applies an update slightly after the source sent it — the situation a
//! GSM/GPRS uplink creates in practice.
//!
//! The channel is generic over what it carries ([`WirePayload`]): protocol
//! runs ship [`Update`]s directly, while the lossy-link model
//! ([`crate::degraded`]) ships encoded [`Frame`] bytes. Deliveries come out
//! in *arrival-time* order — with a fixed latency that equals send order, but
//! [`MessageChannel::send_delayed`] lets a caller add per-message delay
//! (jitter), in which case later sends can overtake earlier ones exactly as
//! on a real packet link.

use mbdr_core::{Frame, Update};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Accumulated traffic statistics of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Number of messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub payload_bytes: u64,
}

/// Anything the channel can carry and charge for: the payload knows the wire
/// bytes it occupies.
pub trait WirePayload {
    /// Bytes this payload occupies on the wire.
    fn wire_len(&self) -> usize;
}

impl WirePayload for Update {
    fn wire_len(&self) -> usize {
        self.encoded_len()
    }
}

impl WirePayload for Frame {
    fn wire_len(&self) -> usize {
        self.encoded_len()
    }
}

impl WirePayload for Vec<u8> {
    fn wire_len(&self) -> usize {
        self.len()
    }
}

/// One queued message (min-heap by arrival time, ties broken by send order).
#[derive(Debug, Clone)]
struct InFlight<T> {
    arrival: f64,
    sent_index: u64,
    payload: T,
}

impl<T> PartialEq for InFlight<T> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival.total_cmp(&other.arrival).is_eq() && self.sent_index == other.sent_index
    }
}

impl<T> Eq for InFlight<T> {}

impl<T> Ord for InFlight<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.arrival.total_cmp(&other.arrival).then(self.sent_index.cmp(&other.sent_index))
    }
}

impl<T> PartialOrd for InFlight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A unidirectional source→server channel with per-message accounting, a
/// fixed base latency and optional per-message extra delay.
#[derive(Debug, Clone)]
pub struct MessageChannel<T = Update> {
    latency: f64,
    next_index: u64,
    in_flight: BinaryHeap<Reverse<InFlight<T>>>,
    stats: ChannelStats,
}

impl<T: WirePayload> MessageChannel<T> {
    /// Creates a channel with the given one-way latency in seconds.
    pub fn new(latency: f64) -> Self {
        assert!(latency >= 0.0);
        MessageChannel {
            latency,
            next_index: 0,
            in_flight: BinaryHeap::new(),
            stats: ChannelStats::default(),
        }
    }

    /// An ideal, zero-latency channel (what the paper's simulation assumes).
    pub fn instantaneous() -> Self {
        MessageChannel::new(0.0)
    }

    /// The configured one-way latency, seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Sends a payload at time `sent_at`.
    pub fn send(&mut self, sent_at: f64, payload: T) {
        self.send_delayed(sent_at, 0.0, payload);
    }

    /// Sends a payload at time `sent_at` with `extra_delay` seconds added on
    /// top of the base latency (per-message jitter). Messages with enough
    /// extra delay arrive after — and are delivered after — later sends.
    pub fn send_delayed(&mut self, sent_at: f64, extra_delay: f64, payload: T) {
        assert!(extra_delay >= 0.0);
        self.stats.messages += 1;
        self.stats.payload_bytes += payload.wire_len() as u64;
        let message = InFlight {
            arrival: sent_at + self.latency + extra_delay,
            sent_index: self.next_index,
            payload,
        };
        self.next_index += 1;
        self.in_flight.push(Reverse(message));
    }

    /// Delivers every payload whose arrival time is ≤ `now`, in arrival
    /// order (send order breaks ties).
    pub fn deliver_until(&mut self, now: f64) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(Reverse(front)) = self.in_flight.peek() {
            if front.arrival <= now + 1e-9 {
                let Reverse(message) = self.in_flight.pop().expect("peeked");
                out.push(message.payload);
            } else {
                break;
            }
        }
        out
    }

    /// Number of payloads currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_core::{ObjectState, UpdateKind};
    use mbdr_geo::Point;

    fn update(seq: u64) -> Update {
        Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(1.0, 2.0), 3.0, 0.0, seq as f64),
            kind: UpdateKind::DeviationBound,
        }
    }

    #[test]
    fn instantaneous_channel_delivers_immediately() {
        let mut c = MessageChannel::instantaneous();
        c.send(10.0, update(0));
        assert_eq!(c.deliver_until(10.0).len(), 1);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.stats().messages, 1);
        assert!(c.stats().payload_bytes > 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut c = MessageChannel::new(2.5);
        c.send(10.0, update(0));
        assert!(c.deliver_until(11.0).is_empty());
        assert_eq!(c.in_flight(), 1);
        let delivered = c.deliver_until(12.6);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].sequence, 0);
    }

    #[test]
    fn delivery_preserves_order_and_counts_everything() {
        let mut c = MessageChannel::new(1.0);
        c.send(0.0, update(0));
        c.send(1.0, update(1));
        c.send(2.0, update(2));
        let first = c.deliver_until(2.0);
        assert_eq!(first.iter().map(|u| u.sequence).collect::<Vec<_>>(), vec![0, 1]);
        let second = c.deliver_until(10.0);
        assert_eq!(second.iter().map(|u| u.sequence).collect::<Vec<_>>(), vec![2]);
        assert_eq!(c.stats().messages, 3);
    }

    #[test]
    fn extra_delay_lets_later_sends_overtake() {
        let mut c = MessageChannel::new(1.0);
        c.send_delayed(0.0, 5.0, update(0)); // arrives at t = 6
        c.send(0.5, update(1)); // arrives at t = 1.5
        let early = c.deliver_until(2.0);
        assert_eq!(early.iter().map(|u| u.sequence).collect::<Vec<_>>(), vec![1]);
        let late = c.deliver_until(10.0);
        assert_eq!(late.iter().map(|u| u.sequence).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn byte_payloads_are_charged_by_length() {
        let mut c: MessageChannel<Vec<u8>> = MessageChannel::new(0.0);
        c.send(0.0, vec![0u8; 42]);
        c.send(0.0, vec![0u8; 10]);
        assert_eq!(c.stats().payload_bytes, 52);
        assert_eq!(c.deliver_until(0.0).len(), 2);
    }

    #[test]
    fn equal_arrivals_deliver_in_send_order() {
        let mut c = MessageChannel::new(1.0);
        c.send_delayed(0.0, 1.0, update(0)); // arrives at t = 2
        c.send(1.0, update(1)); // arrives at t = 2 as well
        let both = c.deliver_until(2.0);
        assert_eq!(both.iter().map(|u| u.sequence).collect::<Vec<_>>(), vec![0, 1]);
    }
}
