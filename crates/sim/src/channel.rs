//! The message channel between source and server.
//!
//! The paper's motivation is the cost of wide-area wireless messages, so the
//! simulator accounts for every update shipped: message count, payload bytes,
//! and (optionally) a fixed delivery latency so that the server applies an
//! update slightly after the source sent it — the situation a GSM/GPRS uplink
//! creates in practice.

use mbdr_core::Update;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Accumulated traffic statistics of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Number of update messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub payload_bytes: u64,
}

/// A unidirectional source→server channel with fixed latency and per-message
/// accounting.
#[derive(Debug, Clone)]
pub struct MessageChannel {
    latency: f64,
    in_flight: VecDeque<(f64, Update)>,
    stats: ChannelStats,
}

impl MessageChannel {
    /// Creates a channel with the given one-way latency in seconds.
    pub fn new(latency: f64) -> Self {
        assert!(latency >= 0.0);
        MessageChannel { latency, in_flight: VecDeque::new(), stats: ChannelStats::default() }
    }

    /// An ideal, zero-latency channel (what the paper's simulation assumes).
    pub fn instantaneous() -> Self {
        MessageChannel::new(0.0)
    }

    /// The configured one-way latency, seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Sends an update at time `sent_at`.
    pub fn send(&mut self, sent_at: f64, update: Update) {
        self.stats.messages += 1;
        self.stats.payload_bytes += update.encoded_len() as u64;
        self.in_flight.push_back((sent_at + self.latency, update));
    }

    /// Delivers every update whose arrival time is ≤ `now`, in order.
    pub fn deliver_until(&mut self, now: f64) -> Vec<Update> {
        let mut out = Vec::new();
        while let Some(&(arrival, _)) = self.in_flight.front() {
            if arrival <= now + 1e-9 {
                out.push(self.in_flight.pop_front().expect("front exists").1);
            } else {
                break;
            }
        }
        out
    }

    /// Number of updates currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_core::{ObjectState, UpdateKind};
    use mbdr_geo::Point;

    fn update(seq: u64) -> Update {
        Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(1.0, 2.0), 3.0, 0.0, seq as f64),
            kind: UpdateKind::DeviationBound,
        }
    }

    #[test]
    fn instantaneous_channel_delivers_immediately() {
        let mut c = MessageChannel::instantaneous();
        c.send(10.0, update(0));
        assert_eq!(c.deliver_until(10.0).len(), 1);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.stats().messages, 1);
        assert!(c.stats().payload_bytes > 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut c = MessageChannel::new(2.5);
        c.send(10.0, update(0));
        assert!(c.deliver_until(11.0).is_empty());
        assert_eq!(c.in_flight(), 1);
        let delivered = c.deliver_until(12.6);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].sequence, 0);
    }

    #[test]
    fn delivery_preserves_order_and_counts_everything() {
        let mut c = MessageChannel::new(1.0);
        c.send(0.0, update(0));
        c.send(1.0, update(1));
        c.send(2.0, update(2));
        let first = c.deliver_until(2.0);
        assert_eq!(first.iter().map(|u| u.sequence).collect::<Vec<_>>(), vec![0, 1]);
        let second = c.deliver_until(10.0);
        assert_eq!(second.iter().map(|u| u.sequence).collect::<Vec<_>>(), vec![2]);
        assert_eq!(c.stats().messages, 3);
    }
}
