//! Protocol factory: build any protocol variant for a given scenario.
//!
//! The sweep driver and the benchmark harness describe *which* protocols to
//! compare with [`ProtocolKind`] values and let [`ProtocolKind::build`]
//! assemble the concrete protocol with the scenario's map, spatial index,
//! interpolation window and matching tolerance. Heavy shared structures (the
//! road network, the link locator, the route geometry, the transition table)
//! are built once per scenario in [`ProtocolContext`] and shared by reference
//! counting across all runs — exactly what a real deployment would do.

use mbdr_core::map_prob::learn_transitions_from_route;
use mbdr_core::{
    AdaptiveDeadReckoning, AdaptivePolicy, DistanceBasedReporting, HigherOrderDeadReckoning,
    IntersectionPolicy, KnownRouteDeadReckoning, LinearDeadReckoning, MapBasedDeadReckoning,
    ProbabilityMapDeadReckoning, ProtocolConfig, UpdateProtocol,
};
use mbdr_geo::Polyline;
use mbdr_roadnet::{LinkLocator, RoadNetwork, TransitionTable};
use mbdr_trace::ScenarioData;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The protocol variants the simulator can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Non-DR distance-based reporting (the baseline of Figs. 7–10).
    DistanceBased,
    /// Linear-prediction dead reckoning.
    Linear,
    /// Higher-order (arc) dead reckoning.
    HigherOrder,
    /// Map-based dead reckoning (the paper's contribution).
    MapBased,
    /// Map-based dead reckoning with transition probabilities learned from the
    /// object's own route (user-specific training).
    MapProbability,
    /// Map-based dead reckoning that prefers main roads at intersections
    /// (ablation of the intersection policy).
    MapMainRoad,
    /// Map-based dead reckoning that always picks the first outgoing link
    /// (ablation lower bound for the intersection policy).
    MapFirstLink,
    /// Dead reckoning with the route known in advance (Wolfson et al.).
    KnownRoute,
    /// Wolfson-style adaptive dead reckoning (cost-balancing threshold).
    Adaptive,
    /// Wolfson-style disconnection-detection dead reckoning (declining
    /// threshold).
    DisconnectionDetection,
}

impl ProtocolKind {
    /// The three protocols evaluated in the paper's figures.
    pub const PAPER_SET: [ProtocolKind; 3] =
        [ProtocolKind::DistanceBased, ProtocolKind::Linear, ProtocolKind::MapBased];

    /// Short label used in tables and plots.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::DistanceBased => "distance-based",
            ProtocolKind::Linear => "linear-pred dr",
            ProtocolKind::HigherOrder => "higher-order dr",
            ProtocolKind::MapBased => "map-based dr",
            ProtocolKind::MapProbability => "map-based+prob dr",
            ProtocolKind::MapMainRoad => "map-based+mainroad dr",
            ProtocolKind::MapFirstLink => "map-based+firstlink dr",
            ProtocolKind::KnownRoute => "known-route dr",
            ProtocolKind::Adaptive => "adr",
            ProtocolKind::DisconnectionDetection => "dtdr",
        }
    }
}

/// Shared per-scenario structures from which protocols are built.
pub struct ProtocolContext {
    /// The road map.
    pub network: Arc<RoadNetwork>,
    /// Spatial index over the map, shared by all map-based protocol instances.
    pub locator: Arc<LinkLocator>,
    /// The trip geometry (for the known-route baseline).
    pub route_geometry: Arc<Polyline>,
    /// Transition table trained on the trip's own route (user-specific
    /// probabilities for the probability-enhanced variant).
    pub transitions: Arc<TransitionTable>,
    /// Speed/direction interpolation window (number of fixes).
    pub interpolation_window: usize,
    /// Map-matching tolerance `u_m`, metres.
    pub matching_tolerance: f64,
    /// Sensor uncertainty `u_p`, metres.
    pub sensor_uncertainty: f64,
}

impl ProtocolContext {
    /// Builds the context for a scenario.
    pub fn for_scenario(data: &ScenarioData) -> Self {
        let network = Arc::new(data.network.clone());
        let locator = Arc::new(LinkLocator::build(&network));
        let route_geometry = Arc::new(data.trip.path.clone());
        let mut transitions = TransitionTable::new();
        learn_transitions_from_route(&network, &data.trip.route, &mut transitions);
        let sensor_uncertainty = data.trace.fixes.first().map(|f| f.accuracy).unwrap_or(3.0);
        ProtocolContext {
            network,
            locator,
            route_geometry,
            transitions: Arc::new(transitions),
            interpolation_window: data.interpolation_window,
            matching_tolerance: data.matching_tolerance,
            sensor_uncertainty,
        }
    }

    /// The protocol configuration for a requested accuracy `u_s`.
    pub fn config(&self, requested_accuracy: f64) -> ProtocolConfig {
        ProtocolConfig::new(requested_accuracy).with_sensor_uncertainty(self.sensor_uncertainty)
    }
}

impl ProtocolKind {
    /// Builds a ready-to-run protocol instance for the given context and
    /// requested accuracy.
    pub fn build(self, ctx: &ProtocolContext, requested_accuracy: f64) -> Box<dyn UpdateProtocol> {
        let config = ctx.config(requested_accuracy);
        let window = ctx.interpolation_window;
        match self {
            ProtocolKind::DistanceBased => Box::new(DistanceBasedReporting::new(config)),
            ProtocolKind::Linear => Box::new(LinearDeadReckoning::new(config, window)),
            ProtocolKind::HigherOrder => Box::new(HigherOrderDeadReckoning::new(config, window)),
            ProtocolKind::MapBased => Box::new(MapBasedDeadReckoning::with_locator(
                Arc::clone(&ctx.network),
                Arc::clone(&ctx.locator),
                config,
                window,
                ctx.matching_tolerance,
                IntersectionPolicy::SmallestAngle,
            )),
            ProtocolKind::MapProbability => Box::new(ProbabilityMapDeadReckoning::new(
                Arc::clone(&ctx.network),
                Arc::clone(&ctx.transitions),
                config,
                window,
                ctx.matching_tolerance,
            )),
            ProtocolKind::MapMainRoad => Box::new(MapBasedDeadReckoning::with_locator(
                Arc::clone(&ctx.network),
                Arc::clone(&ctx.locator),
                config,
                window,
                ctx.matching_tolerance,
                IntersectionPolicy::MainRoad,
            )),
            ProtocolKind::MapFirstLink => Box::new(MapBasedDeadReckoning::with_locator(
                Arc::clone(&ctx.network),
                Arc::clone(&ctx.locator),
                config,
                window,
                ctx.matching_tolerance,
                IntersectionPolicy::FirstLink,
            )),
            ProtocolKind::KnownRoute => Box::new(KnownRouteDeadReckoning::new(
                Arc::clone(&ctx.route_geometry),
                config,
                window,
            )),
            ProtocolKind::Adaptive => Box::new(AdaptiveDeadReckoning::new(
                AdaptivePolicy::CostBased { update_cost: 1_000.0, deviation_cost: 1.0 },
                config,
                window,
            )),
            ProtocolKind::DisconnectionDetection => Box::new(AdaptiveDeadReckoning::new(
                AdaptivePolicy::Declining { decay_per_second: 0.01, floor: 20.0 },
                config,
                window,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_trace::{Scenario, ScenarioKind};

    #[test]
    fn every_protocol_kind_builds_and_reports_its_config() {
        let data = Scenario { kind: ScenarioKind::City, scale: 0.03, seed: 5 }.build();
        let ctx = ProtocolContext::for_scenario(&data);
        for kind in [
            ProtocolKind::DistanceBased,
            ProtocolKind::Linear,
            ProtocolKind::HigherOrder,
            ProtocolKind::MapBased,
            ProtocolKind::MapProbability,
            ProtocolKind::MapMainRoad,
            ProtocolKind::MapFirstLink,
            ProtocolKind::KnownRoute,
            ProtocolKind::Adaptive,
            ProtocolKind::DisconnectionDetection,
        ] {
            let p = kind.build(&ctx, 120.0);
            assert_eq!(p.config().requested_accuracy, 120.0);
            assert!(!p.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn paper_set_is_the_three_figure_protocols() {
        assert_eq!(ProtocolKind::PAPER_SET.len(), 3);
        assert!(ProtocolKind::PAPER_SET.contains(&ProtocolKind::MapBased));
        assert!(ProtocolKind::PAPER_SET.contains(&ProtocolKind::Linear));
        assert!(ProtocolKind::PAPER_SET.contains(&ProtocolKind::DistanceBased));
    }
}
