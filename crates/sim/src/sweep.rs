//! Parameter sweeps: the experiment driver behind Figures 7–10.
//!
//! A sweep runs a set of protocols over one scenario trace for every requested
//! accuracy in the paper's range (20–500 m for cars, 20–250 m for the walking
//! person) and reports updates per hour, absolute and relative to the
//! distance-based baseline — exactly the two panels of each figure.
//!
//! Runs are independent, so they execute in parallel on crossbeam scoped
//! threads; the shared map, spatial index and trace are only read.

use crate::metrics::RunMetrics;
use crate::protocols::{ProtocolContext, ProtocolKind};
use crate::runner::{run_protocol, RunConfig};
use mbdr_trace::ScenarioData;
use serde::{Deserialize, Serialize};

/// One (protocol, requested accuracy) measurement of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Protocol that was run.
    pub protocol: ProtocolKind,
    /// Requested accuracy `u_s`, metres.
    pub requested_accuracy: f64,
    /// Full metrics of the run.
    pub metrics: RunMetrics,
    /// Updates per hour relative to the distance-based baseline at the same
    /// accuracy, in percent (the right-hand panels of Figs. 7–10). `None` if
    /// the baseline was not part of the sweep or sent no updates.
    pub relative_to_baseline_pct: Option<f64>,
}

/// The result of sweeping one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Scenario name (Table 1 row label).
    pub scenario: String,
    /// The accuracies swept, metres.
    pub accuracies: Vec<f64>,
    /// All measurements.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The measurement for a given protocol and accuracy, if present.
    pub fn point(&self, protocol: ProtocolKind, accuracy: f64) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.protocol == protocol && (p.requested_accuracy - accuracy).abs() < 1e-9)
    }

    /// Maximum reduction (in percent) of the given protocol's update rate
    /// relative to another protocol across the sweep — the statistic behind
    /// claims like "reduces the number of updates by up to 83 %".
    pub fn max_reduction_pct(&self, of: ProtocolKind, versus: ProtocolKind) -> Option<f64> {
        let mut best: Option<f64> = None;
        for &a in &self.accuracies {
            let (Some(p), Some(q)) = (self.point(of, a), self.point(versus, a)) else { continue };
            let (r_of, r_vs) = (p.metrics.updates_per_hour, q.metrics.updates_per_hour);
            if r_vs <= 0.0 {
                continue;
            }
            let reduction = (1.0 - r_of / r_vs) * 100.0;
            best = Some(best.map_or(reduction, |b: f64| b.max(reduction)));
        }
        best
    }
}

/// Runs the sweep: every protocol at every accuracy, in parallel.
pub fn sweep_scenario(
    data: &ScenarioData,
    protocols: &[ProtocolKind],
    accuracies: &[f64],
    run_config: RunConfig,
) -> SweepResult {
    let ctx = ProtocolContext::for_scenario(data);
    let mut jobs: Vec<(ProtocolKind, f64)> = Vec::new();
    for &p in protocols {
        for &a in accuracies {
            jobs.push((p, a));
        }
    }

    // Parallel fan-out over independent (protocol, accuracy) runs.
    let mut outcomes: Vec<Option<(ProtocolKind, f64, RunMetrics)>> = Vec::new();
    outcomes.resize_with(jobs.len(), || None);
    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(jobs.len().max(1));
    crossbeam::thread::scope(|scope| {
        for (chunk_jobs, chunk_out) in jobs
            .chunks(jobs.len().div_ceil(workers))
            .zip(outcomes.chunks_mut(jobs.len().div_ceil(workers)))
        {
            let ctx = &ctx;
            let data = &data;
            scope.spawn(move |_| {
                for ((kind, accuracy), slot) in chunk_jobs.iter().zip(chunk_out.iter_mut()) {
                    let protocol = kind.build(ctx, *accuracy);
                    let outcome = run_protocol(&data.trace, protocol, run_config);
                    *slot = Some((*kind, *accuracy, outcome.metrics));
                }
            });
        }
    })
    .expect("sweep worker panicked");

    // Relative rates against the distance-based baseline.
    let flat: Vec<(ProtocolKind, f64, RunMetrics)> =
        outcomes.into_iter().map(|o| o.expect("every job ran")).collect();
    let baseline_rate = |accuracy: f64| -> Option<f64> {
        flat.iter()
            .find(|(k, a, _)| *k == ProtocolKind::DistanceBased && (*a - accuracy).abs() < 1e-9)
            .map(|(_, _, m)| m.updates_per_hour)
    };
    let points = flat
        .iter()
        .map(|(kind, accuracy, metrics)| {
            let relative = baseline_rate(*accuracy).and_then(|b| {
                if b > 0.0 {
                    Some(metrics.updates_per_hour / b * 100.0)
                } else {
                    None
                }
            });
            SweepPoint {
                protocol: *kind,
                requested_accuracy: *accuracy,
                metrics: metrics.clone(),
                relative_to_baseline_pct: relative,
            }
        })
        .collect();

    SweepResult {
        scenario: data.scenario.kind.name().to_string(),
        accuracies: accuracies.to_vec(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_trace::{Scenario, ScenarioKind};

    #[test]
    fn sweep_covers_every_protocol_and_accuracy() {
        let data = Scenario { kind: ScenarioKind::Freeway, scale: 0.05, seed: 3 }.build();
        let accuracies = [50.0, 200.0];
        let result =
            sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
        assert_eq!(result.points.len(), 6);
        assert!(result.point(ProtocolKind::MapBased, 50.0).is_some());
        assert!(result.point(ProtocolKind::MapBased, 75.0).is_none());
        assert_eq!(result.scenario, "car, freeway");
    }

    #[test]
    fn dead_reckoning_beats_the_baseline_and_rates_fall_with_accuracy() {
        let data = Scenario { kind: ScenarioKind::Freeway, scale: 0.08, seed: 4 }.build();
        let accuracies = [50.0, 250.0];
        let result =
            sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
        for &a in &accuracies {
            let base = result.point(ProtocolKind::DistanceBased, a).unwrap();
            let linear = result.point(ProtocolKind::Linear, a).unwrap();
            let map = result.point(ProtocolKind::MapBased, a).unwrap();
            assert!(
                linear.metrics.updates_per_hour <= base.metrics.updates_per_hour,
                "at {a} m linear must not exceed the baseline"
            );
            assert!(
                map.metrics.updates_per_hour <= linear.metrics.updates_per_hour * 1.1,
                "at {a} m map-based should be at least on par with linear"
            );
            // Relative percentages are populated and sensible.
            assert!(base.relative_to_baseline_pct.unwrap() > 99.0);
            assert!(linear.relative_to_baseline_pct.unwrap() <= 100.0);
        }
        // Looser accuracy ⇒ fewer updates for the baseline.
        let tight = result.point(ProtocolKind::DistanceBased, 50.0).unwrap();
        let loose = result.point(ProtocolKind::DistanceBased, 250.0).unwrap();
        assert!(loose.metrics.updates_per_hour < tight.metrics.updates_per_hour);
        // The headline statistic is computable.
        let reduction = result.max_reduction_pct(ProtocolKind::Linear, ProtocolKind::DistanceBased);
        assert!(reduction.unwrap() > 0.0);
    }
}
