//! The million-object-scale workload: synthetic fleets placed uniformly or
//! with rush-hour hotspot skew, ingested into one sharded
//! [`LocationService`] and queried with rect / nearest traffic.
//!
//! Unlike [`service_workload`](crate::service_workload), which replays full
//! protocol traces for tens of objects, this workload is about the *spatial
//! data plane*: it generates bare position updates directly (no uplink
//! protocol, no accuracy accounting) so object count — not trace synthesis —
//! is the dominant cost, and N can reach 10⁶.
//!
//! ## The skew model
//!
//! Real fleets are not uniform: rush hour concentrates a large fraction of
//! the objects in a few grid cells (the business district, the stadium). The
//! hotspot mode models this with a Zipf-weighted draw over a small contiguous
//! block of [`ScaleConfig::hotspot_cells`] cells at the world's centre:
//! each object joins the hotspot with probability
//! [`ScaleConfig::hotspot_fraction`] (~30%), and within the hotspot the cell
//! is Zipf(1)-distributed, so the first cell alone holds roughly
//! `fraction / H_harmonic` of the whole fleet. Everything is driven by one
//! seeded SplitMix64 stream, so reports are bit-deterministic for a
//! given config — which is what lets `reproduce scale --check` gate the
//! result counts and occupancy diagnostics strictly.
//!
//! Ingest runs [`ScaleConfig::update_rounds`] full-fleet rounds *after* the
//! initial placement round, so the steady-state move path (unregister from
//! the old cells, re-register in the new) dominates the measurement — that
//! is the path hotspot density punishes.

use mbdr_core::{LinearPredictor, ObjectState, Predictor, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, PositionReport, QueryScratch, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one scale-workload run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Fleet size (the N axis; up to 10⁶).
    pub objects: usize,
    /// Service lock stripes.
    pub shards: usize,
    /// Grid cell size, metres (also the service's index cell size).
    pub cell_size_m: f64,
    /// World half-extent in cells: the world spans `±world_cells` cells in
    /// each axis around the origin.
    pub world_cells: i64,
    /// Hotspot skew on (rush hour) or off (uniform placement).
    pub hotspot: bool,
    /// Number of cells in the hotspot block.
    pub hotspot_cells: usize,
    /// Fraction of the fleet drawn into the hotspot block.
    pub hotspot_fraction: f64,
    /// Fraction of objects that move between rounds (the rest are parked).
    pub mover_fraction: f64,
    /// Full-fleet update rounds after the initial placement round.
    pub update_rounds: usize,
    /// Seconds of simulated time between rounds.
    pub round_interval_s: f64,
    /// Timed rect queries.
    pub rect_queries: usize,
    /// Timed nearest queries.
    pub nearest_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleConfig {
    /// The standard configuration for a fleet of `objects`, in uniform or
    /// hotspot mode (the two points of the baseline grid differ only here).
    pub fn standard(objects: usize, hotspot: bool, seed: u64) -> Self {
        ScaleConfig {
            objects,
            shards: 16,
            cell_size_m: 250.0,
            world_cells: 40,
            hotspot,
            hotspot_cells: 8,
            hotspot_fraction: 0.3,
            mover_fraction: 0.1,
            update_rounds: 2,
            round_interval_s: 10.0,
            rect_queries: 400,
            nearest_queries: 400,
            seed,
        }
    }
}

/// What one scale-workload run measured. The `*_wall_s` / `*_per_sec`
/// fields are machine-dependent timings; everything else is fully
/// seed-deterministic and gated strictly by `reproduce scale --check`.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Fleet size.
    pub objects: usize,
    /// Whether hotspot skew was on.
    pub hotspot: bool,
    /// Updates ingested (placement round + update rounds).
    pub updates_applied: u64,
    /// Wall-clock seconds spent ingesting.
    pub ingest_wall_s: f64,
    /// Ingest throughput, updates per second.
    pub updates_per_sec: f64,
    /// Timed rect queries issued.
    pub rect_queries: usize,
    /// Timed nearest queries issued.
    pub nearest_queries: usize,
    /// Total rect-query results (seed-deterministic).
    pub rect_hits: u64,
    /// Total nearest-query results (seed-deterministic).
    pub nearest_hits: u64,
    /// Wall-clock seconds spent in rect queries.
    pub rect_wall_s: f64,
    /// Wall-clock seconds spent in nearest queries.
    pub nearest_wall_s: f64,
    /// Rect-query throughput, queries per second.
    pub rect_per_sec: f64,
    /// Nearest-query throughput, queries per second.
    pub nearest_per_sec: f64,
    /// Objects carried in the shard indexes after ingest.
    pub indexed: usize,
    /// Occupied grid cells summed over shards after ingest.
    pub occupied_cells: usize,
    /// Highest entry count in any single cell — the skew observable; in
    /// hotspot mode this is a large fraction of one shard's fleet.
    pub max_cell_occupancy: usize,
    /// Index candidates inspected across the timed queries (duplicates
    /// included: one inspection per overlapped cell).
    pub candidates_inspected: u64,
    /// Unique candidates after deduplication.
    pub candidates_unique: u64,
}

/// SplitMix64: tiny, seedable, and (unlike thread-count-dependent streams)
/// trivially deterministic — every draw of the workload comes from one
/// instance so reports are bit-identical for a given config.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Per-object motion state: parked objects re-report the same position every
/// round; movers advance along a fixed heading at constant speed (matching
/// the linear predictor the server runs for them).
struct Motion {
    base: Point,
    speed: f64,
    heading: f64,
}

impl Motion {
    fn position_at(&self, t: f64) -> Point {
        // Same axis convention as LinearPredictor: heading 0 = +y.
        Point::new(
            self.base.x + self.speed * t * self.heading.sin(),
            self.base.y + self.speed * t * self.heading.cos(),
        )
    }

    fn update(&self, sequence: u64, t: f64) -> Update {
        Update {
            sequence,
            state: ObjectState::basic(self.position_at(t), self.speed, self.heading, t),
            kind: UpdateKind::DeviationBound,
        }
    }
}

/// The hotspot block: a contiguous strip of cells straddling the world
/// centre, listed in Zipf rank order (rank 0 = densest).
fn hotspot_block(config: &ScaleConfig) -> Vec<(i64, i64)> {
    (0..config.hotspot_cells as i64).map(|i| (i % 4, i / 4)).collect()
}

/// Draws a hotspot cell with Zipf(1) weights (`w_rank ∝ 1 / (rank + 1)`).
fn zipf_rank(rng: &mut SplitMix64, n: usize) -> usize {
    let harmonic: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
    let mut target = rng.next_f64() * harmonic;
    for rank in 0..n {
        target -= 1.0 / (rank + 1) as f64;
        if target <= 0.0 {
            return rank;
        }
    }
    n - 1
}

fn place_fleet(config: &ScaleConfig, rng: &mut SplitMix64) -> Vec<Motion> {
    let cell = config.cell_size_m;
    let world = config.world_cells as f64 * cell;
    let block = hotspot_block(config);
    (0..config.objects)
        .map(|_| {
            let base = if config.hotspot && rng.next_f64() < config.hotspot_fraction {
                let (cx, cy) = block[zipf_rank(rng, block.len())];
                Point::new((cx as f64 + rng.next_f64()) * cell, (cy as f64 + rng.next_f64()) * cell)
            } else {
                Point::new(
                    (rng.next_f64() * 2.0 - 1.0) * world,
                    (rng.next_f64() * 2.0 - 1.0) * world,
                )
            };
            let (speed, heading) = if rng.next_f64() < config.mover_fraction {
                (3.0 + 12.0 * rng.next_f64(), rng.next_f64() * std::f64::consts::TAU)
            } else {
                (0.0, 0.0)
            };
            Motion { base, speed, heading }
        })
        .collect()
}

/// Runs the scale workload. Single-threaded by design: every count in the
/// report is reproducible bit-for-bit, so the baseline gate can be strict.
pub fn run_scale_workload(config: &ScaleConfig) -> ScaleReport {
    let mut rng = SplitMix64(config.seed ^ 0xA076_1D64_78BD_642F);
    let fleet = place_fleet(config, &mut rng);

    let service = LocationService::with_config(ServiceConfig {
        shards: config.shards,
        cell_size_m: config.cell_size_m,
        ..ServiceConfig::default()
    });
    let predictor: Arc<dyn Predictor> = Arc::new(LinearPredictor);
    for id in 0..config.objects as u64 {
        service.register(ObjectId(id), Arc::clone(&predictor));
    }

    // --- Ingest: placement round + update rounds, batched per round. The
    // batch is rebuilt (untimed) each round; only apply_batch is timed.
    let mut ingest_wall_s = 0.0;
    let mut updates_applied = 0u64;
    let mut batch: Vec<(ObjectId, Update)> = Vec::with_capacity(config.objects);
    for round in 0..=config.update_rounds {
        let t = round as f64 * config.round_interval_s;
        batch.clear();
        batch.extend(
            fleet
                .iter()
                .enumerate()
                .map(|(id, m)| (ObjectId(id as u64), m.update(round as u64, t))),
        );
        let started = Instant::now();
        updates_applied += service.apply_batch(&batch) as u64;
        ingest_wall_s += started.elapsed().as_secs_f64();
    }
    let index = service.index_stats();

    // --- Queries at the last report instant (inside every validity horizon).
    // Hotspot mode aims half the traffic at the dense block, mirroring real
    // load: the queries go where the objects are.
    let t_q = config.update_rounds as f64 * config.round_interval_s;
    let cell = config.cell_size_m;
    let world = config.world_cells as f64 * cell;
    let mut scratch = QueryScratch::default();
    let mut out: Vec<PositionReport> = Vec::new();

    let rect_for = |i: usize, rng: &mut SplitMix64| {
        let center = if config.hotspot && i.is_multiple_of(2) {
            Point::new(rng.next_f64() * 4.0 * cell, rng.next_f64() * 2.0 * cell)
        } else {
            Point::new((rng.next_f64() * 2.0 - 1.0) * world, (rng.next_f64() * 2.0 - 1.0) * world)
        };
        Aabb::around(center, cell + rng.next_f64() * 5.0 * cell)
    };
    let nearest_for = |i: usize, rng: &mut SplitMix64| {
        let from = if config.hotspot && i.is_multiple_of(2) {
            Point::new(rng.next_f64() * 4.0 * cell, rng.next_f64() * 2.0 * cell)
        } else {
            Point::new((rng.next_f64() * 2.0 - 1.0) * world, (rng.next_f64() * 2.0 - 1.0) * world)
        };
        (from, 1 + rng.next_below(16) as usize)
    };

    // Warm the scratch buffers so the timed loops measure steady state.
    for i in 0..8 {
        service.objects_in_rect_into(&rect_for(i, &mut rng), t_q, &mut scratch, &mut out);
        let (from, k) = nearest_for(i, &mut rng);
        service.nearest_objects_into(&from, t_q, k, &mut scratch, &mut out);
    }

    let started = Instant::now();
    let mut rect_hits = 0u64;
    for i in 0..config.rect_queries {
        service.objects_in_rect_into(&rect_for(i, &mut rng), t_q, &mut scratch, &mut out);
        rect_hits += out.len() as u64;
    }
    let rect_wall_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut nearest_hits = 0u64;
    for i in 0..config.nearest_queries {
        let (from, k) = nearest_for(i, &mut rng);
        service.nearest_objects_into(&from, t_q, k, &mut scratch, &mut out);
        nearest_hits += out.len() as u64;
    }
    let nearest_wall_s = started.elapsed().as_secs_f64();
    let (candidates_inspected, candidates_unique) = scratch.dedup_counters();

    ScaleReport {
        objects: config.objects,
        hotspot: config.hotspot,
        updates_applied,
        ingest_wall_s,
        updates_per_sec: updates_applied as f64 / ingest_wall_s.max(1e-9),
        rect_queries: config.rect_queries,
        nearest_queries: config.nearest_queries,
        rect_hits,
        nearest_hits,
        rect_wall_s,
        nearest_wall_s,
        rect_per_sec: config.rect_queries as f64 / rect_wall_s.max(1e-9),
        nearest_per_sec: config.nearest_queries as f64 / nearest_wall_s.max(1e-9),
        indexed: index.indexed,
        occupied_cells: index.occupied_cells,
        max_cell_occupancy: index.max_cell_occupancy,
        candidates_inspected,
        candidates_unique,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_hotspot_runs_are_deterministic_and_skew_is_visible() {
        let n = 3_000;
        let uniform = run_scale_workload(&ScaleConfig {
            rect_queries: 40,
            nearest_queries: 40,
            ..ScaleConfig::standard(n, false, 11)
        });
        let hotspot = run_scale_workload(&ScaleConfig {
            rect_queries: 40,
            nearest_queries: 40,
            ..ScaleConfig::standard(n, true, 11)
        });
        assert_eq!(uniform.indexed, n);
        assert_eq!(hotspot.indexed, n);
        assert_eq!(uniform.updates_applied, 3 * n as u64);
        // Hotspot placement concentrates ~30% of the fleet in 8 cells: the
        // densest cell must dwarf the uniform world's densest cell.
        assert!(
            hotspot.max_cell_occupancy > 4 * uniform.max_cell_occupancy,
            "hotspot {} vs uniform {}",
            hotspot.max_cell_occupancy,
            uniform.max_cell_occupancy
        );
        assert!(hotspot.occupied_cells < uniform.occupied_cells);
        assert!(hotspot.rect_hits > 0 && hotspot.nearest_hits > 0);

        // Same config, same numbers — the property the strict gate rests on.
        let again = run_scale_workload(&ScaleConfig {
            rect_queries: 40,
            nearest_queries: 40,
            ..ScaleConfig::standard(n, true, 11)
        });
        assert_eq!(again.rect_hits, hotspot.rect_hits);
        assert_eq!(again.nearest_hits, hotspot.nearest_hits);
        assert_eq!(again.max_cell_occupancy, hotspot.max_cell_occupancy);
        assert_eq!(again.candidates_inspected, hotspot.candidates_inspected);
    }

    #[test]
    fn query_answers_match_a_full_scan_reference() {
        // The workload's service answers must equal brute force over the
        // fleet's exact predicted positions — on a skewed fleet, where the
        // index does the most pruning work.
        let config = ScaleConfig {
            rect_queries: 0,
            nearest_queries: 0,
            ..ScaleConfig::standard(2_000, true, 5)
        };
        let mut rng = SplitMix64(config.seed ^ 0xA076_1D64_78BD_642F);
        let fleet = place_fleet(&config, &mut rng);
        let service = LocationService::with_config(ServiceConfig {
            shards: config.shards,
            cell_size_m: config.cell_size_m,
            ..ServiceConfig::default()
        });
        let predictor: Arc<dyn Predictor> = Arc::new(LinearPredictor);
        for id in 0..config.objects as u64 {
            service.register(ObjectId(id), Arc::clone(&predictor));
        }
        for (id, m) in fleet.iter().enumerate() {
            service.apply_update(ObjectId(id as u64), &m.update(0, 0.0));
        }
        let t = 7.0;
        let area = Aabb::around(Point::new(2.0 * config.cell_size_m, 100.0), 700.0);
        let got = service.objects_in_rect(&area, t);
        let mut expected: Vec<ObjectId> = fleet
            .iter()
            .enumerate()
            .filter(|(_, m)| area.contains(&m.position_at(t)))
            .map(|(id, _)| ObjectId(id as u64))
            .collect();
        expected.sort_unstable();
        assert!(!expected.is_empty(), "query area hits the hotspot");
        assert_eq!(got.iter().map(|r| r.object).collect::<Vec<_>>(), expected);

        let nn = service.nearest_objects(&Point::new(200.0, 200.0), t, 12);
        let mut brute: Vec<(f64, ObjectId)> = fleet
            .iter()
            .enumerate()
            .map(|(id, m)| {
                (Point::new(200.0, 200.0).distance(&m.position_at(t)), ObjectId(id as u64))
            })
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        assert_eq!(
            nn.iter().map(|r| r.object).collect::<Vec<_>>(),
            brute[..12].iter().map(|(_, id)| *id).collect::<Vec<_>>()
        );
    }
}
