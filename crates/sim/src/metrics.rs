//! Result metrics of a protocol run.

use serde::{Deserialize, Serialize};

/// Distribution of the server-side deviation (distance between the position
/// the server would report and the true position), sampled once per sensor
/// fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviationStats {
    /// Mean deviation, metres.
    pub mean: f64,
    /// Maximum deviation, metres.
    pub max: f64,
    /// 95th-percentile deviation, metres.
    pub p95: f64,
    /// Number of samples.
    pub samples: usize,
    /// Number of samples whose deviation exceeded the requested accuracy
    /// `u_s` plus the sensor uncertainty (the guarantee the protocol makes).
    pub bound_violations: usize,
}

impl DeviationStats {
    /// Computes the statistics from raw deviation samples.
    ///
    /// `allowance` is the deviation the protocol is allowed (requested
    /// accuracy plus sensor uncertainty); larger samples count as violations.
    pub fn from_samples(mut samples: Vec<f64>, allowance: f64) -> Self {
        if samples.is_empty() {
            return DeviationStats {
                mean: 0.0,
                max: 0.0,
                p95: 0.0,
                samples: 0,
                bound_violations: 0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let bound_violations = samples.iter().filter(|&&d| d > allowance).count();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite deviations"));
        let max = *samples.last().expect("non-empty");
        let p95 = samples[((n as f64 * 0.95) as usize).min(n - 1)];
        DeviationStats { mean, max, p95, samples: n, bound_violations }
    }
}

/// Everything measured in one protocol run over one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Protocol name.
    pub protocol: String,
    /// Requested accuracy `u_s`, metres.
    pub requested_accuracy: f64,
    /// Number of update messages sent.
    pub updates: u64,
    /// Total update payload, bytes.
    pub payload_bytes: u64,
    /// Trace duration, seconds.
    pub duration_s: f64,
    /// Updates per hour — the paper's headline metric (Figs. 7–10).
    pub updates_per_hour: f64,
    /// Server-side deviation statistics.
    pub deviation: DeviationStats,
}

impl RunMetrics {
    /// Updates per hour for a given update count and duration.
    pub fn rate_per_hour(updates: u64, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            0.0
        } else {
            updates as f64 * 3600.0 / duration_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_stats_from_empty_sample_set() {
        let s = DeviationStats::from_samples(Vec::new(), 50.0);
        assert_eq!(s.samples, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn deviation_stats_basic_properties() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = DeviationStats::from_samples(samples, 90.0);
        assert_eq!(s.samples, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert!(s.p95 >= 95.0 && s.p95 <= 96.0);
        assert_eq!(s.bound_violations, 10);
    }

    #[test]
    fn rate_per_hour_handles_degenerate_durations() {
        assert_eq!(RunMetrics::rate_per_hour(10, 0.0), 0.0);
        assert!((RunMetrics::rate_per_hour(10, 1800.0) - 20.0).abs() < 1e-9);
    }
}
