//! A lossy-link channel model for the wide-area wireless uplink.
//!
//! The paper's cost model is the GSM/GPRS uplink, and a real mobile uplink
//! does more than delay messages: it *loses* them, *duplicates* them (link-
//! layer retransmissions whose ack got lost), *jitters* their delivery and
//! thereby *reorders* them. [`DegradedChannel`] layers those impairments on
//! the accounted [`MessageChannel`]: each encoded frame's fate is drawn from
//! a seeded RNG, surviving copies travel through the inner channel with
//! per-frame extra delay, and every impairment is tallied per cause in
//! [`LinkStats`].
//!
//! ## Deterministic, nested fates
//!
//! Every send draws exactly **four** uniforms (drop, duplicate, reorder,
//! jitter) regardless of the configuration, so two channels with the same
//! seed see identical draw sequences even when their impairment rates
//! differ. Fate decisions are threshold tests (`draw < rate`), which makes
//! sweeps monotone by construction: the frames dropped at loss rate `p₁` are
//! a subset of those dropped at `p₂ > p₁`. The loss-rate sweep in
//! [`crate::lossy`] leans on exactly this property.

use crate::channel::{ChannelStats, MessageChannel, WirePayload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extra delay a duplicated copy suffers on top of the original's: a stand-in
/// for the link-layer retransmission timer that produced the duplicate.
const DUPLICATE_LAG_S: f64 = 2.0;

/// Impairment configuration of a degraded link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Base one-way latency, seconds.
    pub latency_s: f64,
    /// Uniform per-frame extra delay in `[0, jitter_s)`, seconds.
    pub jitter_s: f64,
    /// Probability a frame is lost outright.
    pub loss: f64,
    /// Probability a frame is delivered twice (spurious retransmission).
    pub duplicate: f64,
    /// Probability a frame is held back long enough to be overtaken by its
    /// successors (an extra `2 · (latency + jitter)` delay).
    pub reorder: f64,
    /// RNG seed deciding every frame's fate.
    pub seed: u64,
}

impl LinkConfig {
    /// A perfect link: zero latency, no impairments (the paper's idealised
    /// setting).
    pub fn ideal() -> Self {
        LinkConfig {
            latency_s: 0.0,
            jitter_s: 0.0,
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            seed: 0,
        }
    }

    /// A GPRS-like default: 1.5 s latency, 1 s jitter, occasional duplicates
    /// and reorderings, no loss (set [`LinkConfig::loss`] per sweep point).
    pub fn gprs(seed: u64) -> Self {
        LinkConfig {
            latency_s: 1.5,
            jitter_s: 1.0,
            loss: 0.0,
            duplicate: 0.02,
            reorder: 0.02,
            seed,
        }
    }

    fn validate(&self) {
        assert!(self.latency_s >= 0.0, "latency must be non-negative");
        assert!(self.jitter_s >= 0.0, "jitter must be non-negative");
        for (name, p) in
            [("loss", self.loss), ("duplicate", self.duplicate), ("reorder", self.reorder)]
        {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability, got {p}");
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::gprs(0xD15C0)
    }
}

/// Per-cause impairment statistics of a degraded link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Frames handed to the channel.
    pub frames_sent: u64,
    /// Frames lost outright (never delivered).
    pub frames_dropped: u64,
    /// Frames transmitted twice (one extra copy each).
    pub frames_duplicated: u64,
    /// Frames held back by the reorder impairment.
    pub frames_reordered: u64,
    /// Frame copies delivered to the receiver (duplicates count twice).
    pub frames_delivered: u64,
    /// Delivered copies that arrived after a frame sent later than them.
    pub delivered_out_of_order: u64,
    /// Payload bytes transmitted — every copy put on the air is charged,
    /// including copies that are then lost and the extra duplicate copies:
    /// the radio spends the energy and the operator bills the bytes whether
    /// or not the server benefits.
    pub payload_bytes: u64,
}

/// A frame copy travelling through the inner channel, tagged with its send
/// order so out-of-order deliveries are observable.
#[derive(Debug, Clone)]
struct Tagged {
    tag: u64,
    bytes: Vec<u8>,
}

impl WirePayload for Tagged {
    fn wire_len(&self) -> usize {
        self.bytes.len()
    }
}

/// A source→server link that drops, duplicates, jitters and reorders encoded
/// frames under a seeded RNG, layered on the accounted [`MessageChannel`].
#[derive(Debug, Clone)]
pub struct DegradedChannel {
    config: LinkConfig,
    rng: StdRng,
    inner: MessageChannel<Tagged>,
    next_tag: u64,
    max_delivered_tag: Option<u64>,
    stats: LinkStats,
}

impl DegradedChannel {
    /// Creates a link with the given impairment configuration.
    pub fn new(config: LinkConfig) -> Self {
        config.validate();
        DegradedChannel {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            inner: MessageChannel::new(config.latency_s),
            next_tag: 0,
            max_delivered_tag: None,
            stats: LinkStats::default(),
        }
    }

    /// The impairment configuration in force.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Sends one encoded frame at time `sent_at`; the RNG decides its fate.
    pub fn send(&mut self, sent_at: f64, frame_bytes: Vec<u8>) {
        // Exactly four draws per frame, whatever the configuration, so equal
        // seeds give aligned fates across impairment sweeps (module docs).
        let drop_draw: f64 = self.rng.gen();
        let duplicate_draw: f64 = self.rng.gen();
        let reorder_draw: f64 = self.rng.gen();
        let jitter_draw: f64 = self.rng.gen();

        self.stats.frames_sent += 1;
        self.stats.payload_bytes += frame_bytes.len() as u64;
        if drop_draw < self.config.loss {
            self.stats.frames_dropped += 1;
            return;
        }
        let mut extra = jitter_draw * self.config.jitter_s;
        if reorder_draw < self.config.reorder {
            self.stats.frames_reordered += 1;
            extra += 2.0 * (self.config.latency_s + self.config.jitter_s);
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        if duplicate_draw < self.config.duplicate {
            self.stats.frames_duplicated += 1;
            self.stats.payload_bytes += frame_bytes.len() as u64;
            self.inner.send_delayed(
                sent_at,
                extra + DUPLICATE_LAG_S,
                Tagged { tag, bytes: frame_bytes.clone() },
            );
        }
        self.inner.send_delayed(sent_at, extra, Tagged { tag, bytes: frame_bytes });
    }

    /// Sends one frame outside the impairment model: base latency only, no
    /// fate draws consumed. Models traffic on the reliable control channel
    /// (e.g. the registration exchange that precedes data transfer) — the
    /// lossy sweep uses it for the initial update so every loss rate starts
    /// from the same known state.
    pub fn send_reliable(&mut self, sent_at: f64, frame_bytes: Vec<u8>) {
        self.stats.frames_sent += 1;
        self.stats.payload_bytes += frame_bytes.len() as u64;
        let tag = self.next_tag;
        self.next_tag += 1;
        self.inner.send_delayed(sent_at, 0.0, Tagged { tag, bytes: frame_bytes });
    }

    /// Delivers every surviving frame copy whose arrival time is ≤ `now`, in
    /// arrival order.
    pub fn deliver_until(&mut self, now: f64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for message in self.inner.deliver_until(now) {
            self.stats.frames_delivered += 1;
            match self.max_delivered_tag {
                Some(max) if message.tag < max => self.stats.delivered_out_of_order += 1,
                _ => self.max_delivered_tag = Some(message.tag),
            }
            out.push(message.bytes);
        }
        out
    }

    /// Number of frame copies currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    /// Per-cause impairment statistics so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The inner channel's plain traffic accounting (copies actually put in
    /// flight; excludes dropped frames, includes duplicate copies).
    pub fn transmitted(&self) -> ChannelStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(n: u8) -> Vec<u8> {
        vec![n; 20]
    }

    #[test]
    fn ideal_link_delivers_everything_in_order() {
        let mut c = DegradedChannel::new(LinkConfig::ideal());
        for i in 0..10u8 {
            c.send(i as f64, frame_bytes(i));
        }
        let delivered = c.deliver_until(100.0);
        assert_eq!(delivered.len(), 10);
        assert!(delivered.iter().enumerate().all(|(i, b)| b[0] == i as u8));
        let s = c.stats();
        assert_eq!(s.frames_sent, 10);
        assert_eq!(s.frames_dropped + s.frames_duplicated + s.frames_reordered, 0);
        assert_eq!(s.delivered_out_of_order, 0);
        assert_eq!(s.payload_bytes, 200);
    }

    #[test]
    fn full_loss_drops_everything_but_still_charges_the_bytes() {
        let mut c = DegradedChannel::new(LinkConfig { loss: 1.0, ..LinkConfig::ideal() });
        for i in 0..8u8 {
            c.send(i as f64, frame_bytes(i));
        }
        assert!(c.deliver_until(1_000.0).is_empty());
        let s = c.stats();
        assert_eq!(s.frames_dropped, 8);
        assert_eq!(s.frames_delivered, 0);
        assert_eq!(s.payload_bytes, 160, "lost frames still cost airtime");
    }

    #[test]
    fn duplicates_deliver_twice_and_cost_twice() {
        let mut c = DegradedChannel::new(LinkConfig { duplicate: 1.0, ..LinkConfig::ideal() });
        c.send(0.0, frame_bytes(7));
        let delivered = c.deliver_until(10.0);
        assert_eq!(delivered.len(), 2);
        assert!(delivered.iter().all(|b| b[0] == 7));
        let s = c.stats();
        assert_eq!(s.frames_duplicated, 1);
        assert_eq!(s.frames_delivered, 2);
        assert_eq!(s.payload_bytes, 40);
        // The duplicate of one frame is not an out-of-order delivery.
        assert_eq!(s.delivered_out_of_order, 0);
    }

    #[test]
    fn reordered_frames_are_overtaken_and_detected() {
        // Deterministic construction: frame 0 is reordered (held 2 s extra),
        // then the rate is zeroed so frame 1 is clean and overtakes it.
        let mut c = DegradedChannel::new(LinkConfig {
            latency_s: 1.0,
            reorder: 1.0,
            ..LinkConfig::ideal()
        });
        c.send(0.0, frame_bytes(0));
        c.config.reorder = 0.0;
        c.send(0.1, frame_bytes(1));
        let delivered = c.deliver_until(100.0);
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0][0], 1, "the clean frame arrives first");
        assert_eq!(delivered[1][0], 0);
        let s = c.stats();
        assert_eq!(s.frames_reordered, 1);
        assert_eq!(s.delivered_out_of_order, 1);
    }

    #[test]
    fn loss_fates_are_nested_across_rates() {
        // Same seed, increasing loss: the surviving set shrinks monotonically
        // and every survivor at the higher rate also survived the lower one.
        let survivors = |loss: f64| -> Vec<u8> {
            let mut c = DegradedChannel::new(LinkConfig { loss, seed: 42, ..LinkConfig::ideal() });
            for i in 0..100u8 {
                c.send(i as f64, frame_bytes(i));
            }
            c.deliver_until(10_000.0).iter().map(|b| b[0]).collect()
        };
        let mut previous = survivors(0.0);
        assert_eq!(previous.len(), 100);
        for loss in [0.1, 0.3, 0.5, 0.8] {
            let current = survivors(loss);
            assert!(current.len() <= previous.len(), "loss {loss} delivered more than less loss");
            assert!(
                current.iter().all(|f| previous.contains(f)),
                "survivors at loss {loss} must be a subset of the previous set"
            );
            previous = current;
        }
    }

    #[test]
    fn reliable_sends_bypass_impairments_and_rng() {
        let mut lossy =
            DegradedChannel::new(LinkConfig { loss: 1.0, seed: 9, ..LinkConfig::ideal() });
        lossy.send_reliable(0.0, frame_bytes(1));
        assert_eq!(lossy.deliver_until(10.0).len(), 1, "reliable frames cannot be lost");
        // The reliable send consumed no draws: the next lossy frame's fate
        // matches a channel that never sent the reliable frame.
        let mut reference =
            DegradedChannel::new(LinkConfig { loss: 0.5, seed: 9, ..LinkConfig::ideal() });
        let mut with_reliable =
            DegradedChannel::new(LinkConfig { loss: 0.5, seed: 9, ..LinkConfig::ideal() });
        with_reliable.send_reliable(0.0, frame_bytes(0));
        for i in 0..50u8 {
            reference.send(i as f64, frame_bytes(i));
            with_reliable.send(i as f64, frame_bytes(i));
        }
        let r: Vec<u8> = reference.deliver_until(1_000.0).iter().map(|b| b[0]).collect();
        let mut w: Vec<u8> = with_reliable.deliver_until(1_000.0).iter().map(|b| b[0]).collect();
        assert_eq!(w.remove(0), 0, "the reliable frame is delivered first");
        assert_eq!(r, w, "identical fates for the lossy frames");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probabilities_are_rejected() {
        let _ = DegradedChannel::new(LinkConfig { loss: 1.5, ..LinkConfig::ideal() });
    }
}
