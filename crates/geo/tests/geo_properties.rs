//! Property-based tests for the geometry substrate.

use mbdr_geo::{
    angle_between, normalize_angle, Aabb, GeoPoint, LocalProjection, Point, Polyline, Segment, Vec2,
};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -50_000.0..50_000.0f64
}

fn arb_point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_vec() -> impl Strategy<Value = Vec2> {
    (-1_000.0..1_000.0f64, -1_000.0..1_000.0f64).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #[test]
    fn distance_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.distance(&b);
        let ba = b.distance(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(ab >= 0.0);
        // Triangle inequality with a small tolerance for rounding.
        prop_assert!(a.distance(&c) <= ab + b.distance(&c) + 1e-6);
    }

    #[test]
    fn heading_roundtrip_through_unit_vector(angle in 0.0..std::f64::consts::TAU) {
        let v = Vec2::from_heading(angle);
        prop_assert!((v.norm() - 1.0).abs() < 1e-9);
        prop_assert!(angle_between(v.heading(), angle) < 1e-6);
    }

    #[test]
    fn normalize_angle_is_idempotent_and_in_range(a in -100.0..100.0f64) {
        let n = normalize_angle(a);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&n));
        prop_assert!((normalize_angle(n) - n).abs() < 1e-12);
    }

    #[test]
    fn angle_between_is_symmetric_and_bounded(a in -20.0..20.0f64, b in -20.0..20.0f64) {
        let d = angle_between(a, b);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&d));
        prop_assert!((d - angle_between(b, a)).abs() < 1e-9);
    }

    #[test]
    fn segment_projection_is_closest_among_samples(
        a in arb_point(), b in arb_point(), q in arb_point()
    ) {
        let seg = Segment::new(a, b);
        let proj = seg.project(&q);
        // The reported distance must not exceed the distance to any sampled
        // point of the segment.
        for i in 0..=20 {
            let t = i as f64 / 20.0;
            let sample = seg.point_at(t);
            prop_assert!(proj.distance <= q.distance(&sample) + 1e-6);
        }
        // The projected point actually lies on the segment's bounding box.
        let bb = Aabb::new(a, b).inflated(1e-6);
        prop_assert!(bb.contains(&proj.point));
    }

    #[test]
    fn polyline_arc_length_walk_is_consistent(
        pts in proptest::collection::vec(arb_point(), 2..8),
        frac in 0.0..1.0f64
    ) {
        let poly = Polyline::new(pts);
        let total = poly.length();
        let s = frac * total;
        let p = poly.point_at_arc_length(s);
        // The point must lie on the polyline (distance ~ 0).
        prop_assert!(poly.distance_to(&p) < 1e-6);
        // Walking the full length lands on the final vertex.
        prop_assert!(poly.point_at_arc_length(total).distance(&poly.last()) < 1e-6);
    }

    #[test]
    fn polyline_projection_within_vertex_distance(
        pts in proptest::collection::vec(arb_point(), 2..8),
        q in arb_point()
    ) {
        let poly = Polyline::new(pts.clone());
        let proj = poly.project(&q);
        // Projection distance is never worse than the distance to any vertex.
        for v in &pts {
            prop_assert!(proj.distance <= q.distance(v) + 1e-6);
        }
        prop_assert!(proj.arc_length >= -1e-9);
        prop_assert!(proj.arc_length <= poly.length() + 1e-6);
    }

    #[test]
    fn projection_roundtrip_is_sub_millimetre(
        dlat in -0.3..0.3f64, dlon in -0.3..0.3f64
    ) {
        let proj = LocalProjection::stuttgart();
        let geo = GeoPoint::new(48.745 + dlat, 9.105 + dlon);
        let local = proj.to_local(&geo);
        let back = proj.to_geo(&local);
        prop_assert!(geo.haversine_distance(&back) < 1e-3);
    }

    #[test]
    fn local_distances_track_geodesic_distances(
        dlat in -0.2..0.2f64, dlon in -0.2..0.2f64
    ) {
        let proj = LocalProjection::stuttgart();
        let a = GeoPoint::new(48.745, 9.105);
        let b = GeoPoint::new(48.745 + dlat, 9.105 + dlon);
        let hav = a.haversine_distance(&b);
        let loc = proj.to_local(&a).distance(&proj.to_local(&b));
        // Within 1 % over a ~±22 km area (GPS noise is orders of magnitude larger).
        prop_assert!((hav - loc).abs() <= hav.max(1.0) * 0.01 + 0.01);
    }

    #[test]
    fn aabb_union_contains_both(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let b1 = Aabb::new(a, b);
        let b2 = Aabb::new(c, d);
        let u = b1.union(&b2);
        prop_assert!(u.contains_box(&b1));
        prop_assert!(u.contains_box(&b2));
    }

    #[test]
    fn aabb_distance_zero_iff_contained(p in arb_point(), a in arb_point(), b in arb_point()) {
        let bb = Aabb::new(a, b);
        let d = bb.distance_to_point(&p);
        if bb.contains(&p) {
            prop_assert!(d.abs() < 1e-9);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn vec_rotation_preserves_norm(v in arb_vec(), angle in -10.0..10.0f64) {
        let r = v.rotated(angle);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-6);
    }
}
